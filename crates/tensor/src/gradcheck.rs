//! Finite-difference gradient checking.
//!
//! Used throughout the test suite to validate every differentiable
//! operator: the analytic gradient from [`Tape::backward`] is compared
//! against a central-difference estimate of the same scalar function.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Compare analytic and numeric gradients of `f` at `inputs`.
///
/// `f` must rebuild the same computation for any tape and input leaf set
/// (it is called `2 * numel + 1` times). Returns the maximum absolute
/// difference observed, or an error string naming the offending input and
/// element.
///
/// # Errors
///
/// Returns `Err` when any element's analytic/numeric gradient difference
/// exceeds `tol`.
pub fn check_gradients<F>(f: F, inputs: &[Tensor], eps: f32, tol: f32) -> Result<f32, String>
where
    F: Fn(&Tape, &[Var]) -> Var,
{
    // Analytic pass.
    let tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let loss = f(&tape, &vars);
    let grads = tape.backward(loss);

    let eval = |perturbed: &[Tensor]| -> f32 {
        let tape = Tape::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| tape.leaf(t.clone())).collect();
        let loss = f(&tape, &vars);
        tape.value(loss).item()
    };

    let mut worst = 0.0f32;
    for (i, input) in inputs.iter().enumerate() {
        let analytic = grads
            .try_get(vars[i])
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(input.shape()));
        for k in 0..input.numel() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[i].data_mut()[k] += eps;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[i].data_mut()[k] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let diff = (numeric - analytic.data()[k]).abs();
            worst = worst.max(diff);
            if diff > tol {
                return Err(format!(
                    "input {i} element {k}: analytic {} vs numeric {numeric} (diff {diff})",
                    analytic.data()[k]
                ));
            }
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    #[test]
    fn mlp_composite_gradients() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x = Tensor::randn(&[3, 4], 0.5, &mut rng);
        let w1 = Tensor::randn(&[4, 5], 0.5, &mut rng);
        let b1 = Tensor::randn(&[1, 5], 0.2, &mut rng);
        let w2 = Tensor::randn(&[5, 2], 0.5, &mut rng);
        check_gradients(
            |tape, v| {
                let h = tape.add_row(tape.matmul(v[0], v[1]), v[2]);
                let h = tape.tanh(h);
                let y = tape.matmul(h, v[3]);
                let p = tape.sigmoid(y);
                tape.bce_loss(p, &[1.0, 0.0, 0.0, 1.0, 1.0, 0.0])
            },
            &[x, w1, b1, w2],
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn segment_ops_gradients() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let x = Tensor::randn(&[6, 3], 1.0, &mut rng);
        check_gradients(
            |tape, v| {
                let s = tape.segment_sum(v[0], &[0, 0, 1, 1, 2, 2], 3);
                let m = tape.segment_max(v[0], &[0, 1, 1, 2, 2, 2], 3, -10.0);
                let both = tape.add(s, m);
                tape.mean(tape.square(both))
            },
            &[x],
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn unscale_scalelog_gradients() {
        let x = Tensor::from_vec(vec![-0.5, 0.0, 0.7, 1.2]);
        check_gradients(
            |tape, v| {
                let u = tape.unscale(v[0], 4.0, 1.0);
                let u = tape.scale(u, 1e-4); // keep magnitudes tame
                let s = tape.scale_log(u, 0.0, 1.0, 1e-6);
                tape.mean(tape.square(s))
            },
            &[x],
            1e-3,
            0.05,
        )
        .unwrap();
    }

    #[test]
    fn gather_concat_slice_gradients() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 2], 1.0, &mut rng);
        check_gradients(
            |tape, v| {
                let g = tape.gather_rows(v[0], &[0, 2, 3]);
                let c = tape.concat_cols(g, v[1]);
                let s = tape.slice_cols(c, 1, 4);
                tape.mean(tape.square(s))
            },
            &[a, b],
            EPS,
            TOL,
        )
        .unwrap();
    }

    #[test]
    fn max_elem_and_scale_gradients() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.3]);
        let b = Tensor::from_vec(vec![0.5, 3.0, 0.1]);
        check_gradients(
            |tape, v| {
                let m = tape.max_elem(v[0], v[1]);
                let m = tape.scale(m, 2.0);
                let m = tape.add_scalar(m, 1.0);
                tape.sum(tape.square(m))
            },
            &[a, b],
            EPS,
            TOL,
        )
        .unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random small MLP-style computations must pass gradient check.
        /// (Smooth activations only — central differences straddling a
        /// ReLU kink produce false positives; the kink semantics are
        /// covered by the dedicated ReLU tests.)
        #[test]
        fn prop_random_dense_graph(seed in 0u64..5_000) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let x = Tensor::randn(&[2, 3], 0.8, &mut rng);
            let w = Tensor::randn(&[3, 3], 0.8, &mut rng);
            check_gradients(
                |tape, v| {
                    let y = tape.matmul(v[0], v[1]);
                    let y = tape.tanh(y);
                    let z = tape.sigmoid(y);
                    tape.mean(tape.square(z))
                },
                &[x, w],
                EPS,
                TOL,
            ).unwrap();
        }

        /// Segment sums over random segment assignments check out.
        #[test]
        fn prop_segment_sum(seed in 0u64..5_000, segs in proptest::collection::vec(0usize..4, 5)) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let x = Tensor::randn(&[5, 2], 1.0, &mut rng);
            check_gradients(
                |tape, v| {
                    let s = tape.segment_sum(v[0], &segs, 4);
                    tape.mean(tape.square(s))
                },
                &[x],
                EPS,
                TOL,
            ).unwrap();
        }
    }
}
