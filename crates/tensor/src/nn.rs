//! Neural-network building blocks over the tape.
//!
//! Parameters live in a central [`Params`] store so they persist across
//! forward passes (the [`Tape`] is single-use). Each pass, [`Params::bind`]
//! registers every parameter as a tape leaf; modules hold [`ParamId`]s and
//! look their leaf [`Var`]s up through the returned [`Bound`] handle.
//!
//! ```
//! use sleuth_tensor::nn::{Linear, Params};
//! use sleuth_tensor::{Tape, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut params = Params::new();
//! let layer = Linear::new(&mut params, 3, 2, &mut rng);
//!
//! let tape = Tape::new();
//! let bound = params.bind(&tape);
//! let x = tape.leaf(Tensor::from_rows(vec![vec![1.0, 0.5, -1.0]]));
//! let y = layer.forward(&tape, &bound, x);
//! assert_eq!(tape.shape(y), vec![1, 2]);
//! ```

use rand::Rng;

use crate::tape::{Bound, Tape, Var};
use crate::tensor::Tensor;

/// Identifier of a parameter within a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Central store of trainable tensors.
#[derive(Debug, Default, Clone)]
pub struct Params {
    tensors: Vec<Tensor>,
}

impl Params {
    /// Create an empty parameter store.
    pub fn new() -> Self {
        Params::default()
    }

    /// Allocate a new parameter initialised to `t`.
    pub fn alloc(&mut self, t: Tensor) -> ParamId {
        self.tensors.push(t);
        ParamId(self.tensors.len() - 1)
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::numel).sum()
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter (used by optimisers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Iterate over `(id, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.tensors.iter().enumerate().map(|(i, t)| (ParamId(i), t))
    }

    /// Register every parameter as a leaf on `tape`.
    pub fn bind(&self, tape: &Tape) -> Bound {
        Bound {
            vars: self.tensors.iter().map(|t| tape.leaf(t.clone())).collect(),
        }
    }

    /// Serialise all parameters to a flat list (for checkpointing).
    pub fn to_flat(&self) -> Vec<Vec<f32>> {
        self.tensors.iter().map(|t| t.data().to_vec()).collect()
    }

    /// Load parameters from a flat list produced by [`Params::to_flat`].
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description if counts or lengths mismatch.
    pub fn load_flat(&mut self, flat: &[Vec<f32>]) -> Result<(), String> {
        if flat.len() != self.tensors.len() {
            return Err(format!(
                "checkpoint has {} tensors, model has {}",
                flat.len(),
                self.tensors.len()
            ));
        }
        for (t, f) in self.tensors.iter_mut().zip(flat) {
            if t.numel() != f.len() {
                return Err(format!(
                    "checkpoint tensor has {} elements, model expects {}",
                    f.len(),
                    t.numel()
                ));
            }
            t.data_mut().copy_from_slice(f);
        }
        Ok(())
    }
}

/// A fully-connected layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create a layer with Glorot-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dims must be positive");
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let w = params.alloc(Tensor::uniform(&[in_dim, out_dim], limit, rng));
        let b = params.alloc(Tensor::zeros(&[1, out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Apply the layer to `[n, in_dim]` input.
    pub fn forward(&self, tape: &Tape, bound: &Bound, x: Var) -> Var {
        let y = tape.matmul(x, bound.var_for(self.w.0));
        tape.add_row(y, bound.var_for(self.b.0))
    }

    /// Tape-free forward pass for inference.
    pub fn infer(&self, params: &Params, x: &Tensor) -> Tensor {
        let mut y = x.matmul(params.get(self.w));
        let b = params.get(self.b);
        for i in 0..y.rows() {
            for j in 0..y.cols() {
                *y.at_mut(i, j) += b.data()[j];
            }
        }
        y
    }
}

/// Activation functions available to [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Rectified linear unit (default).
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    fn apply(self, tape: &Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
        }
    }
}

/// A multi-layer perceptron with a fixed activation between layers and a
/// linear output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Create an MLP with the given layer sizes, e.g. `[in, hidden, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        params: &mut Params,
        sizes: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(sizes.len() >= 2, "MLP needs at least [in, out] sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(params, w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Apply the MLP to `[n, in_dim]` input.
    pub fn forward(&self, tape: &Tape, bound: &Bound, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, bound, h);
            if i != last {
                h = self.activation.apply(tape, h);
            }
        }
        h
    }

    /// Tape-free forward pass for inference.
    pub fn infer(&self, params: &Params, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.infer(params, &h);
            if i != last {
                h = match self.activation {
                    Activation::Relu => h.map(|v| v.max(0.0)),
                    Activation::Tanh => h.map(f32::tanh),
                    Activation::Sigmoid => h.map(|v| 1.0 / (1.0 + (-v).exp())),
                };
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn params_roundtrip_checkpoint() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut params = Params::new();
        let _l = Linear::new(&mut params, 4, 2, &mut rng);
        let flat = params.to_flat();
        let mut params2 = Params::new();
        let _l2 = Linear::new(&mut params2, 4, 2, &mut rng);
        params2.load_flat(&flat).unwrap();
        for (a, b) in params.iter().zip(params2.iter()) {
            assert_eq!(a.1.data(), b.1.data());
        }
    }

    #[test]
    fn load_flat_rejects_mismatch() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut params = Params::new();
        let _l = Linear::new(&mut params, 4, 2, &mut rng);
        assert!(params.load_flat(&[vec![0.0]]).is_err());
        assert!(params.load_flat(&[vec![0.0; 8], vec![0.0; 3]]).is_err());
    }

    #[test]
    fn linear_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut params = Params::new();
        let l = Linear::new(&mut params, 3, 5, &mut rng);
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let x = tape.leaf(Tensor::zeros(&[7, 3]));
        let y = l.forward(&tape, &bound, x);
        assert_eq!(tape.shape(y), vec![7, 5]);
        assert_eq!(params.num_scalars(), 3 * 5 + 5);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, &[2, 8, 1], Activation::Tanh, &mut rng);
        let xs = Tensor::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let ys = [0.0, 1.0, 1.0, 0.0];
        let mut adam = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let tape = Tape::new();
            let bound = params.bind(&tape);
            let x = tape.leaf(xs.clone());
            let logits = mlp.forward(&tape, &bound, x);
            let probs = tape.sigmoid(logits);
            let loss = tape.bce_loss(probs, &ys);
            final_loss = tape.value(loss).item();
            let grads = tape.backward(loss);
            adam.step(&mut params, &bound, &grads);
        }
        assert!(final_loss < 0.1, "XOR did not converge: loss {final_loss}");
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn mlp_rejects_single_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut params = Params::new();
        let _ = Mlp::new(&mut params, &[4], Activation::Relu, &mut rng);
    }
}
