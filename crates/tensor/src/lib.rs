//! A small reverse-mode automatic differentiation engine.
//!
//! The Sleuth paper implements its models with PyTorch Geometric on GPU
//! clusters; the Rust ecosystem has no equivalent, so this crate provides
//! the minimal substrate the paper's models need, built from scratch:
//!
//! * dense f32 [`Tensor`]s (rank ≤ 2),
//! * a define-by-run [`Tape`] recording operations and computing exact
//!   gradients by reverse traversal,
//! * the graph-learning primitives the Trace GNN requires —
//!   [`Tape::gather_rows`], [`Tape::segment_sum`], [`Tape::segment_max`]
//!   — which implement message passing over ragged child/sibling sets,
//! * neural-network building blocks ([`nn::Linear`], [`nn::Mlp`]) and
//!   optimisers ([`optim::Sgd`], [`optim::Adam`]),
//! * a finite-difference gradient checker ([`gradcheck`]) used by the
//!   test suite to validate every operator.
//!
//! # Example
//!
//! ```
//! use sleuth_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]));
//! let w = tape.leaf(Tensor::from_rows(vec![vec![0.5], vec![-0.5]]));
//! let y = tape.matmul(x, w);
//! let loss = tape.sum(y);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(w).data(), &[4.0, 6.0]);
//! ```

pub mod gradcheck;
pub mod nn;
pub mod optim;
pub mod tape;
pub mod tensor;

pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;
