//! First-order optimisers over a [`Params`] store.

use crate::nn::Params;
use crate::tape::{Bound, Gradients};
use crate::tensor::Tensor;

/// Common interface of gradient-descent optimisers.
pub trait Optimizer {
    /// Apply one update step from the gradients of a backward pass.
    ///
    /// Parameters that received no gradient (they did not participate in
    /// the loss) are left untouched.
    fn step(&mut self, params: &mut Params, bound: &Bound, grads: &Gradients);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// SGD with learning rate `lr` and no momentum.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, bound: &Bound, grads: &Gradients) {
        let n = params.len();
        self.velocity.resize(n, None);
        for i in 0..n {
            let Some(g) = grads.try_get(bound.vars()[i]) else {
                continue;
            };
            let p = params.get_mut(crate::nn::ParamId(i));
            if self.momentum > 0.0 {
                let v = self.velocity[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
                for (vk, &gk) in v.data_mut().iter_mut().zip(g.data()) {
                    *vk = self.momentum * *vk + gk;
                }
                p.axpy(-self.lr, &v.clone());
            } else {
                p.axpy(-self.lr, g);
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Override the learning rate (e.g. for fine-tuning schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, bound: &Bound, grads: &Gradients) {
        let n = params.len();
        self.m.resize(n, None);
        self.v.resize(n, None);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..n {
            let Some(g) = grads.try_get(bound.vars()[i]) else {
                continue;
            };
            let m = self.m[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
            let v = self.v[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
            for ((mk, vk), &gk) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mk = self.beta1 * *mk + (1.0 - self.beta1) * gk;
                *vk = self.beta2 * *vk + (1.0 - self.beta2) * gk * gk;
            }
            let p = params.get_mut(crate::nn::ParamId(i));
            let (mdat, vdat) = (self.m[i].as_ref().unwrap(), self.v[i].as_ref().unwrap());
            for ((pk, &mk), &vk) in p.data_mut().iter_mut().zip(mdat.data()).zip(vdat.data()) {
                let mhat = mk / bc1;
                let vhat = vk / bc2;
                *pk -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::Tensor;

    /// Minimise (x - 3)^2 from x = 0.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut params = Params::new();
        let x = params.alloc(Tensor::scalar(0.0));
        for _ in 0..steps {
            let tape = Tape::new();
            let bound = params.bind(&tape);
            let xv = bound.vars()[0];
            let loss = tape.mse_loss(xv, &[3.0]);
            let grads = tape.backward(loss);
            opt.step(&mut params, &bound, &grads);
        }
        params.get(x).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_quadratic(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = run_quadratic(&mut opt, 200);
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let x = run_quadratic(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn untouched_params_are_preserved() {
        let mut params = Params::new();
        let _used = params.alloc(Tensor::scalar(0.0));
        let unused = params.alloc(Tensor::scalar(42.0));
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let loss = tape.mse_loss(bound.vars()[0], &[1.0]);
        let grads = tape.backward(loss);
        let mut opt = Adam::new(0.1);
        opt.step(&mut params, &bound, &grads);
        assert_eq!(params.get(unused).item(), 42.0);
    }

    #[test]
    fn adam_lr_accessors() {
        let mut a = Adam::new(0.01);
        assert_eq!(a.lr(), 0.01);
        a.set_lr(0.001);
        assert_eq!(a.lr(), 0.001);
    }
}
