//! Define-by-run computation tape with reverse-mode differentiation.

use std::cell::RefCell;

use crate::tensor::Tensor;

/// Handle to a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Operations the tape knows how to differentiate.
#[derive(Debug, Clone)]
enum Op {
    /// An input or parameter; no parents.
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[n, c] + [1, c]` row-broadcast addition (bias add).
    AddRow(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Matmul(Var, Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    /// `y = 10^(clamp(sigma * x + mu, -CAP, CAP))` — duration un-scaling.
    Unscale(Var, f32, f32),
    /// `y = (log10(max(x, eps)) - mu) / sigma` — duration re-scaling
    /// (only `sigma` and `eps` are needed for the backward pass).
    ScaleLog(Var, f32, f32),
    Square(Var),
    Sum(Var),
    Mean(Var),
    ConcatCols(Var, Var),
    SliceCols(Var, usize, usize),
    GatherRows(Var, Vec<usize>),
    SegmentSum(Var, Vec<usize>),
    /// Per-segment max with `init` as the floor value; the winning source
    /// row per output cell is recorded in `aux` at forward time
    /// (`usize::MAX` when the floor won).
    SegmentMax(Var, usize),
    MaxElem(Var, Var),
    /// Mean binary cross-entropy of probabilities vs constant targets.
    BceLoss(Var, Vec<f32>),
    /// Mean squared error vs constant targets.
    MseLoss(Var, Vec<f32>),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    /// Per-op auxiliary indices (e.g. argmax rows for `SegmentMax`).
    aux: Vec<usize>,
}

/// A recording of a computation, supporting exact reverse-mode gradients.
///
/// The tape is single-use per forward pass: record leaves and operations,
/// call [`Tape::backward`] on a scalar, and read gradients from the
/// returned [`Gradients`]. Parameters persist *outside* the tape (see
/// [`crate::nn`]) and are re-registered each pass.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

/// Exponent clamp for [`Tape::unscale`], preventing f32 overflow.
const UNSCALE_EXP_CAP: f32 = 8.0;

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape has no recorded nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        self.push_aux(value, op, Vec::new())
    }

    fn push_aux(&self, value: Tensor, op: Op, aux: Vec<usize>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op, aux });
        Var(nodes.len() - 1)
    }

    /// Register a leaf (input or parameter) on the tape.
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Clone of the value held at `v`.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Shape of the value at `v`.
    pub fn shape(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.0].value.shape().to_vec()
    }

    fn binary_same_shape(&self, a: Var, b: Var, name: &str) -> (Tensor, Tensor) {
        let nodes = self.nodes.borrow();
        let (ta, tb) = (&nodes[a.0].value, &nodes[b.0].value);
        assert_eq!(ta.shape(), tb.shape(), "{name}: shape mismatch");
        (ta.clone(), tb.clone())
    }

    /// Elementwise addition.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let (ta, tb) = self.binary_same_shape(a, b, "add");
        self.push(ta.zip(&tb, |x, y| x + y), Op::Add(a, b))
    }

    /// Elementwise subtraction `a - b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let (ta, tb) = self.binary_same_shape(a, b, "sub");
        self.push(ta.zip(&tb, |x, y| x - y), Op::Sub(a, b))
    }

    /// Elementwise multiplication.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let (ta, tb) = self.binary_same_shape(a, b, "mul");
        self.push(ta.zip(&tb, |x, y| x * y), Op::Mul(a, b))
    }

    /// Row-broadcast addition: `[n, c] + [1, c]`.
    pub fn add_row(&self, a: Var, bias: Var) -> Var {
        let nodes = self.nodes.borrow();
        let ta = &nodes[a.0].value;
        let tb = &nodes[bias.0].value;
        assert_eq!(tb.rows(), 1, "add_row bias must have one row");
        assert_eq!(ta.cols(), tb.cols(), "add_row col mismatch");
        let c = ta.cols();
        let mut out = ta.clone();
        for i in 0..out.rows() {
            for j in 0..c {
                *out.at_mut(i, j) += tb.data()[j];
            }
        }
        drop(nodes);
        self.push(out, Op::AddRow(a, bias))
    }

    /// Multiply by a constant scalar.
    pub fn scale(&self, a: Var, k: f32) -> Var {
        let t = self.value(a).map(|x| x * k);
        self.push(t, Op::Scale(a, k))
    }

    /// Add a constant scalar.
    pub fn add_scalar(&self, a: Var, k: f32) -> Var {
        let t = self.value(a).map(|x| x + k);
        self.push(t, Op::AddScalar(a))
    }

    /// Matrix multiplication of rank-2 values.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let nodes = self.nodes.borrow();
        let out = nodes[a.0].value.matmul(&nodes[b.0].value);
        drop(nodes);
        self.push(out, Op::Matmul(a, b))
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let t = self.value(a).map(|x| x.max(0.0));
        self.push(t, Op::Relu(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let t = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(t, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let t = self.value(a).map(f32::tanh);
        self.push(t, Op::Tanh(a))
    }

    /// Natural exponential.
    pub fn exp(&self, a: Var) -> Var {
        let t = self.value(a).map(f32::exp);
        self.push(t, Op::Exp(a))
    }

    /// Duration un-scaling `y = 10^(sigma·x + mu)` with the exponent
    /// clamped to ±8 to avoid f32 overflow (gradient is zero where
    /// clamped).
    pub fn unscale(&self, a: Var, mu: f32, sigma: f32) -> Var {
        let t = self.value(a).map(|x| {
            let e = (sigma * x + mu).clamp(-UNSCALE_EXP_CAP, UNSCALE_EXP_CAP);
            10f32.powf(e)
        });
        self.push(t, Op::Unscale(a, mu, sigma))
    }

    /// Duration re-scaling `y = (log10(max(x, eps)) − mu) / sigma`.
    pub fn scale_log(&self, a: Var, mu: f32, sigma: f32, eps: f32) -> Var {
        let t = self
            .value(a)
            .map(|x| (x.max(eps).log10() - mu) / sigma);
        self.push(t, Op::ScaleLog(a, sigma, eps))
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        let t = self.value(a).map(|x| x * x);
        self.push(t, Op::Square(a))
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&self, a: Var) -> Var {
        let s = self.value(a).sum();
        self.push(Tensor::scalar(s), Op::Sum(a))
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self, a: Var) -> Var {
        let t = self.value(a);
        let m = t.sum() / t.numel() as f32;
        self.push(Tensor::scalar(m), Op::Mean(a))
    }

    /// Column-wise concatenation of two rank-2 values with equal rows.
    pub fn concat_cols(&self, a: Var, b: Var) -> Var {
        let nodes = self.nodes.borrow();
        let (ta, tb) = (&nodes[a.0].value, &nodes[b.0].value);
        assert_eq!(ta.rows(), tb.rows(), "concat_cols row mismatch");
        let (n, ca, cb) = (ta.rows(), ta.cols(), tb.cols());
        let mut data = Vec::with_capacity(n * (ca + cb));
        for i in 0..n {
            data.extend_from_slice(ta.row(i));
            data.extend_from_slice(tb.row(i));
        }
        drop(nodes);
        self.push(Tensor::new(vec![n, ca + cb], data), Op::ConcatCols(a, b))
    }

    /// Columns `[start, end)` of a rank-2 value.
    pub fn slice_cols(&self, a: Var, start: usize, end: usize) -> Var {
        let t = self.value(a);
        assert!(start < end && end <= t.cols(), "slice_cols out of range");
        let n = t.rows();
        let mut data = Vec::with_capacity(n * (end - start));
        for i in 0..n {
            data.extend_from_slice(&t.row(i)[start..end]);
        }
        self.push(
            Tensor::new(vec![n, end - start], data),
            Op::SliceCols(a, start, end),
        )
    }

    /// Gather rows by index, possibly with repetition:
    /// `out[i] = a[idx[i]]`.
    pub fn gather_rows(&self, a: Var, idx: &[usize]) -> Var {
        let t = self.value(a);
        let c = t.cols();
        let mut data = Vec::with_capacity(idx.len() * c);
        for &i in idx {
            assert!(i < t.rows(), "gather_rows index {i} out of range");
            data.extend_from_slice(t.row(i));
        }
        self.push(
            Tensor::new(vec![idx.len(), c], data),
            Op::GatherRows(a, idx.to_vec()),
        )
    }

    /// Segment sum: `out[s] = Σ_{i: seg[i]==s} a[i]`, output
    /// `[num_segments, cols]`. Empty segments produce zero rows.
    pub fn segment_sum(&self, a: Var, seg: &[usize], num_segments: usize) -> Var {
        let t = self.value(a);
        assert_eq!(t.rows(), seg.len(), "segment_sum length mismatch");
        let c = t.cols();
        let mut out = Tensor::zeros(&[num_segments, c]);
        for (i, &s) in seg.iter().enumerate() {
            assert!(s < num_segments, "segment id {s} out of range");
            for j in 0..c {
                *out.at_mut(s, j) += t.row(i)[j];
            }
        }
        self.push(out, Op::SegmentSum(a, seg.to_vec()))
    }

    /// Segment max with floor: `out[s] = max(init, max_{i: seg[i]==s} a[i])`.
    /// Empty segments produce `init`. Gradient flows only to the winning
    /// input cell (none when the floor wins).
    pub fn segment_max(&self, a: Var, seg: &[usize], num_segments: usize, init: f32) -> Var {
        let t = self.value(a);
        assert_eq!(t.rows(), seg.len(), "segment_max length mismatch");
        let c = t.cols();
        let mut out = Tensor::full(&[num_segments, c], init);
        let mut arg = vec![usize::MAX; num_segments * c];
        for (i, &s) in seg.iter().enumerate() {
            assert!(s < num_segments, "segment id {s} out of range");
            for j in 0..c {
                let v = t.row(i)[j];
                if v > out.at(s, j) {
                    *out.at_mut(s, j) = v;
                    arg[s * c + j] = i;
                }
            }
        }
        self.push_aux(out, Op::SegmentMax(a, num_segments), arg)
    }

    /// Elementwise maximum of two same-shape values. On ties the gradient
    /// goes to `a`.
    pub fn max_elem(&self, a: Var, b: Var) -> Var {
        let (ta, tb) = self.binary_same_shape(a, b, "max_elem");
        self.push(ta.zip(&tb, f32::max), Op::MaxElem(a, b))
    }

    /// Mean binary cross-entropy of probabilities `a` against constant
    /// targets (clamped to `[1e-6, 1-1e-6]` for stability).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from `a`'s element count.
    pub fn bce_loss(&self, a: Var, targets: &[f32]) -> Var {
        let t = self.value(a);
        assert_eq!(t.numel(), targets.len(), "bce_loss target length");
        let n = targets.len() as f32;
        let mut loss = 0.0f32;
        for (&p, &y) in t.data().iter().zip(targets) {
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            loss -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
        }
        self.push(Tensor::scalar(loss / n), Op::BceLoss(a, targets.to_vec()))
    }

    /// Mean squared error of `a` against constant targets.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from `a`'s element count.
    pub fn mse_loss(&self, a: Var, targets: &[f32]) -> Var {
        let t = self.value(a);
        assert_eq!(t.numel(), targets.len(), "mse_loss target length");
        let n = targets.len() as f32;
        let loss: f32 = t
            .data()
            .iter()
            .zip(targets)
            .map(|(&p, &y)| (p - y) * (p - y))
            .sum();
        self.push(Tensor::scalar(loss / n), Op::MseLoss(a, targets.to_vec()))
    }

    /// Run reverse-mode differentiation from the scalar `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn backward(&self, loss: Var) -> Gradients {
        let nodes = self.nodes.borrow();
        assert_eq!(nodes[loss.0].value.numel(), 1, "backward requires scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &nodes[i];
            match &node.op {
                Op::Leaf => {
                    grads[i] = Some(g);
                    continue;
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, &g);
                    accumulate(&mut grads, b.0, &g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.0, &g);
                    let neg = g.map(|x| -x);
                    accumulate(&mut grads, b.0, &neg);
                }
                Op::Mul(a, b) => {
                    let ga = g.zip(&nodes[b.0].value, |x, y| x * y);
                    let gb = g.zip(&nodes[a.0].value, |x, y| x * y);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::AddRow(a, bias) => {
                    accumulate(&mut grads, a.0, &g);
                    let c = g.cols();
                    let mut gb = Tensor::zeros(&[1, c]);
                    for r in 0..g.rows() {
                        for j in 0..c {
                            *gb.at_mut(0, j) += g.at(r, j);
                        }
                    }
                    accumulate(&mut grads, bias.0, &gb);
                }
                Op::Scale(a, k) => {
                    let ga = g.map(|x| x * k);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::AddScalar(a) => {
                    accumulate(&mut grads, a.0, &g);
                }
                Op::Matmul(a, b) => {
                    let ga = g.matmul(&nodes[b.0].value.transpose());
                    let gb = nodes[a.0].value.transpose().matmul(&g);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::Relu(a) => {
                    let ga = g.zip(&nodes[a.0].value, |gy, x| if x > 0.0 { gy } else { 0.0 });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Sigmoid(a) => {
                    let ga = g.zip(&node.value, |gy, y| gy * y * (1.0 - y));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Tanh(a) => {
                    let ga = g.zip(&node.value, |gy, y| gy * (1.0 - y * y));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Exp(a) => {
                    let ga = g.zip(&node.value, |gy, y| gy * y);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Unscale(a, mu, sigma) => {
                    const LN10: f32 = std::f32::consts::LN_10;
                    let ga = g
                        .zip(&nodes[a.0].value, |gy, x| {
                            let e = sigma * x + mu;
                            if e.abs() >= UNSCALE_EXP_CAP {
                                0.0
                            } else {
                                gy * LN10 * sigma * 10f32.powf(e)
                            }
                        });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::ScaleLog(a, sigma, eps) => {
                    const LN10: f32 = std::f32::consts::LN_10;
                    let ga = g.zip(&nodes[a.0].value, |gy, x| {
                        if x <= *eps {
                            0.0
                        } else {
                            gy / (sigma * LN10 * x)
                        }
                    });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Square(a) => {
                    let ga = g.zip(&nodes[a.0].value, |gy, x| gy * 2.0 * x);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Sum(a) => {
                    let gy = g.item();
                    let src = &nodes[a.0].value;
                    let ga = Tensor::full(src.shape(), gy);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Mean(a) => {
                    let src = &nodes[a.0].value;
                    let gy = g.item() / src.numel() as f32;
                    let ga = Tensor::full(src.shape(), gy);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::ConcatCols(a, b) => {
                    let (ca, cb) = (nodes[a.0].value.cols(), nodes[b.0].value.cols());
                    let n = g.rows();
                    let mut ga = Tensor::zeros(&[n, ca]);
                    let mut gb = Tensor::zeros(&[n, cb]);
                    for i in 0..n {
                        for j in 0..ca {
                            *ga.at_mut(i, j) = g.at(i, j);
                        }
                        for j in 0..cb {
                            *gb.at_mut(i, j) = g.at(i, ca + j);
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::SliceCols(a, start, _end) => {
                    let src = &nodes[a.0].value;
                    let mut ga = Tensor::zeros(src.shape());
                    for i in 0..g.rows() {
                        for j in 0..g.cols() {
                            *ga.at_mut(i, start + j) = g.at(i, j);
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::GatherRows(a, idx) => {
                    let src = &nodes[a.0].value;
                    let mut ga = Tensor::zeros(src.shape());
                    let c = src.cols();
                    for (out_r, &src_r) in idx.iter().enumerate() {
                        for j in 0..c {
                            *ga.at_mut(src_r, j) += g.at(out_r, j);
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::SegmentSum(a, seg) => {
                    let src = &nodes[a.0].value;
                    let mut ga = Tensor::zeros(src.shape());
                    let c = src.cols();
                    for (i, &s) in seg.iter().enumerate() {
                        for j in 0..c {
                            *ga.at_mut(i, j) = g.at(s, j);
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::SegmentMax(a, num_segments) => {
                    let src = &nodes[a.0].value;
                    let c = src.cols();
                    let mut ga = Tensor::zeros(src.shape());
                    for s in 0..*num_segments {
                        for j in 0..c {
                            let winner = node.aux[s * c + j];
                            if winner != usize::MAX {
                                *ga.at_mut(winner, j) += g.at(s, j);
                            }
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::MaxElem(a, b) => {
                    let (ta, tb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let mut ga = Tensor::zeros(ta.shape());
                    let mut gb = Tensor::zeros(tb.shape());
                    for k in 0..g.numel() {
                        if ta.data()[k] >= tb.data()[k] {
                            ga.data_mut()[k] = g.data()[k];
                        } else {
                            gb.data_mut()[k] = g.data()[k];
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::BceLoss(a, targets) => {
                    let src = &nodes[a.0].value;
                    let gy = g.item() / targets.len() as f32;
                    let mut ga = Tensor::zeros(src.shape());
                    for (k, (&p, &y)) in src.data().iter().zip(targets).enumerate() {
                        let p = p.clamp(1e-6, 1.0 - 1e-6);
                        ga.data_mut()[k] = gy * (p - y) / (p * (1.0 - p));
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::MseLoss(a, targets) => {
                    let src = &nodes[a.0].value;
                    let gy = g.item() / targets.len() as f32;
                    let mut ga = Tensor::zeros(src.shape());
                    for (k, (&p, &y)) in src.data().iter().zip(targets).enumerate() {
                        ga.data_mut()[k] = gy * 2.0 * (p - y);
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
            }
        }

        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: &Tensor) {
    match &mut grads[idx] {
        Some(existing) => existing.axpy(1.0, g),
        slot @ None => *slot = Some(g.clone()),
    }
}

/// Leaf [`Var`]s registered for every parameter of a
/// [`crate::nn::Params`] store, valid for one tape (see
/// [`crate::nn::Params::bind`]).
#[derive(Debug, Clone)]
pub struct Bound {
    pub(crate) vars: Vec<Var>,
}

impl Bound {
    /// The leaf var bound for the parameter at position `idx`.
    pub(crate) fn var_for(&self, idx: usize) -> Var {
        self.vars[idx]
    }

    /// Leaf vars in parameter order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }
}

/// Gradients produced by [`Tape::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`.
    ///
    /// # Panics
    ///
    /// Panics if no gradient flowed to `v` (it did not influence the
    /// loss); use [`Gradients::try_get`] for an optional lookup.
    pub fn get(&self, v: Var) -> &Tensor {
        self.try_get(v)
            .expect("no gradient recorded for this var (did it reach the loss?)")
    }

    /// Gradient of the loss with respect to `v`, if any flowed.
    pub fn try_get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn add_mul_chain_gradients() {
        // loss = sum((a + b) * a); d/da = 2a + b, d/db = a
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0, 4.0]));
        let s = tape.add(a, b);
        let p = tape.mul(s, a);
        let loss = tape.sum(p);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).data(), &[5.0, 8.0]);
        assert_eq!(g.get(b).data(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_gradients() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(vec![vec![1.0, 2.0]]));
        let b = tape.leaf(Tensor::from_rows(vec![vec![3.0], vec![5.0]]));
        let y = tape.matmul(a, b); // [1,1] = 13
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert_eq!(tape.value(y).item(), 13.0);
        assert_eq!(g.get(a).data(), &[3.0, 5.0]);
        assert_eq!(g.get(b).data(), &[1.0, 2.0]);
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![-1.0, 2.0]));
        let loss = tape.sum(tape.relu(a));
        let g = tape.backward(loss);
        assert_eq!(g.get(a).data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_value_and_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(0.0));
        let y = tape.sigmoid(a);
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert!(close(tape.value(y).item(), 0.5));
        assert!(close(g.get(a).item(), 0.25));
    }

    #[test]
    fn mean_divides_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]));
        let loss = tape.mean(a);
        let g = tape.backward(loss);
        assert!(g.get(a).data().iter().all(|&v| close(v, 0.25)));
    }

    #[test]
    fn gather_rows_accumulates_repeats() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(vec![vec![1.0], vec![2.0]]));
        let y = tape.gather_rows(a, &[0, 0, 1]);
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).data(), &[2.0, 1.0]);
        assert_eq!(tape.value(y).data(), &[1.0, 1.0, 2.0]);
    }

    #[test]
    fn segment_sum_forward_and_backward() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
        ]));
        let y = tape.segment_sum(a, &[1, 0, 1], 3);
        assert_eq!(tape.value(y).row(0), &[2.0, 20.0]);
        assert_eq!(tape.value(y).row(1), &[4.0, 40.0]);
        assert_eq!(tape.value(y).row(2), &[0.0, 0.0]); // empty segment
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert!(g.get(a).data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn segment_max_routes_gradient_to_winner() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(vec![vec![1.0], vec![5.0], vec![3.0]]));
        let y = tape.segment_max(a, &[0, 0, 1], 2, 0.0);
        assert_eq!(tape.value(y).data(), &[5.0, 3.0]);
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn segment_max_floor_wins_on_empty_and_low_segments() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(vec![vec![-2.0]]));
        let y = tape.segment_max(a, &[0], 2, 0.0);
        assert_eq!(tape.value(y).data(), &[0.0, 0.0]);
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).data(), &[0.0]);
    }

    #[test]
    fn concat_and_slice_roundtrip_gradients() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(vec![vec![1.0, 2.0]]));
        let b = tape.leaf(Tensor::from_rows(vec![vec![3.0]]));
        let c = tape.concat_cols(a, b);
        assert_eq!(tape.value(c).data(), &[1.0, 2.0, 3.0]);
        let s = tape.slice_cols(c, 1, 3); // [2.0, 3.0]
        let loss = tape.sum(s);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).data(), &[0.0, 1.0]);
        assert_eq!(g.get(b).data(), &[1.0]);
    }

    #[test]
    fn max_elem_tie_goes_to_lhs() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![2.0, 1.0]));
        let b = tape.leaf(Tensor::from_vec(vec![2.0, 5.0]));
        let y = tape.max_elem(a, b);
        assert_eq!(tape.value(y).data(), &[2.0, 5.0]);
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).data(), &[1.0, 0.0]);
        assert_eq!(g.get(b).data(), &[0.0, 1.0]);
    }

    #[test]
    fn bce_loss_gradient_sign() {
        let tape = Tape::new();
        let p = tape.leaf(Tensor::from_vec(vec![0.8, 0.3]));
        let loss = tape.bce_loss(p, &[1.0, 0.0]);
        let g = tape.backward(loss);
        // Underestimating target 1 → negative grad; overestimating 0 → positive.
        assert!(g.get(p).data()[0] < 0.0);
        assert!(g.get(p).data()[1] > 0.0);
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let tape = Tape::new();
        let p = tape.leaf(Tensor::from_vec(vec![3.0, 1.0]));
        let loss = tape.mse_loss(p, &[1.0, 1.0]);
        assert!(close(tape.value(loss).item(), 2.0));
        let g = tape.backward(loss);
        assert_eq!(g.get(p).data(), &[2.0, 0.0]);
    }

    #[test]
    fn unscale_matches_transform_and_has_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(0.0));
        let y = tape.unscale(a, 4.0, 1.0);
        assert!(close(tape.value(y).item(), 10_000.0));
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        // d/dx 10^(x+4) at 0 = ln10 * 10^4
        assert!(close(g.get(a).item(), std::f32::consts::LN_10 * 10_000.0));
    }

    #[test]
    fn unscale_clamps_extreme_exponents() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(100.0));
        let y = tape.unscale(a, 4.0, 1.0);
        assert!(tape.value(y).item().is_finite());
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).item(), 0.0);
    }

    #[test]
    fn scale_log_roundtrips_unscale() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(1.5));
        let y = tape.unscale(a, 4.0, 1.0);
        let z = tape.scale_log(y, 4.0, 1.0, 1e-6);
        assert!(close(tape.value(z).item(), 1.5));
    }

    #[test]
    fn diamond_reuse_accumulates() {
        // loss = sum(a) + sum(a) → grad 2
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0]));
        let s1 = tape.sum(a);
        let s2 = tape.sum(a);
        let loss = tape.add(s1, s2);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).data(), &[2.0]);
    }

    #[test]
    fn unused_leaf_has_no_gradient() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::scalar(1.0));
        let b = tape.leaf(Tensor::scalar(2.0));
        let loss = tape.sum(a);
        let g = tape.backward(loss);
        assert!(g.try_get(b).is_none());
    }

    #[test]
    fn add_row_broadcast_bias_gradient() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = tape.leaf(Tensor::from_rows(vec![vec![10.0, 20.0]]));
        let y = tape.add_row(x, b);
        assert_eq!(tape.value(y).data(), &[11.0, 22.0, 13.0, 24.0]);
        let loss = tape.sum(y);
        let g = tape.backward(loss);
        assert_eq!(g.get(b).data(), &[2.0, 2.0]);
    }
}
