//! Dense f32 tensors of rank ≤ 2.

use std::fmt;

use rand::Rng;

/// A dense, row-major f32 tensor. Rank is 1 (`[n]`) or 2 (`[rows, cols]`);
/// scalars are represented as `[1]`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.data.len() <= 16 {
            write!(f, "Tensor{{shape: {:?}, data: {:?}}}", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor{{shape: {:?}, data: [{}, {}, ..; {}]}}",
                self.shape,
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// Create a tensor from an explicit shape and backing data.
    ///
    /// # Panics
    ///
    /// Panics if the shape's element count does not match `data.len()`
    /// or the rank exceeds 2.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert!(shape.len() <= 2, "rank must be <= 2, got {shape:?}");
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} implies {numel} elements but data has {}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(v: f32) -> Self {
        Tensor::new(vec![1], vec![v])
    }

    /// A rank-1 tensor from a vector.
    pub fn from_vec(v: Vec<f32>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], v)
    }

    /// A rank-2 tensor from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in &rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor::new(vec![rows.len(), cols], data)
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Tensor::new(shape.to_vec(), vec![0.0; numel])
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Tensor::new(shape.to_vec(), vec![1.0; numel])
    }

    /// Tensor filled with `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor::new(shape.to_vec(), vec![v; numel])
    }

    /// Tensor with entries drawn uniformly from `[-limit, limit]`.
    pub fn uniform<R: Rng + ?Sized>(shape: &[usize], limit: f32, rng: &mut R) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen_range(-limit..=limit)).collect();
        Tensor::new(shape.to_vec(), data)
    }

    /// Tensor with approximately standard-normal entries (sum of uniforms),
    /// scaled by `std`.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel)
            .map(|_| {
                // Irwin–Hall(12) − 6 approximates N(0, 1).
                let s: f32 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum();
                (s - 6.0) * std
            })
            .collect();
        Tensor::new(shape.to_vec(), data)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of rows (rank-2) or elements (rank-1).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns; 1 for rank-1 tensors.
    pub fn cols(&self) -> usize {
        if self.shape.len() == 2 {
            self.shape[1]
        } else {
            1
        }
    }

    /// Immutable view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The single element of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar {:?}", self.shape);
        self.data[0]
    }

    /// Element at `(r, c)` of a rank-2 tensor.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element at `(r, c)`.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Row `r` of a rank-2 tensor as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert_eq!(self.shape.len(), 2);
        let c = self.shape[1];
        &self.data[r * c..(r + 1) * c]
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree or either input is rank-1.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank-2");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be rank-2");
        let (n, k) = (self.shape[0], self.shape[1]);
        let (k2, m) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * m..(i + 1) * m];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[p * m..(p + 1) * m];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor::new(vec![n, m], out)
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires rank-2");
        let (n, m) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            for j in 0..m {
                out[j * n + i] = self.data[i * m + j];
            }
        }
        Tensor::new(vec![m, n], out)
    }

    /// Elementwise map producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::new(self.shape.clone(), self.data.iter().map(|&v| f(v)).collect())
    }

    /// Elementwise binary zip with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "zip shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::new(self.shape.clone(), data)
    }

    /// In-place `self += alpha * rhs` (same shapes).
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element (0.0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.at(1, 0), 3.0);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(t.numel(), 4);
    }

    #[test]
    fn scalar_and_vec() {
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.shape(), &[3]);
        assert_eq!(v.cols(), 1);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn shape_data_mismatch_panics() {
        let _ = Tensor::new(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(vec![vec![2.0, -1.0], vec![0.5, 3.0]]);
        let i = Tensor::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let tt = a.transpose().transpose();
        assert_eq!(tt.data(), a.data());
        assert_eq!(a.transpose().shape(), &[3, 2]);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn map_zip_axpy() {
        let a = Tensor::from_vec(vec![1.0, -2.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
        let b = Tensor::from_vec(vec![10.0, 20.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 18.0]);
        let mut c = Tensor::from_vec(vec![0.0, 0.0]);
        c.axpy(2.0, &a);
        assert_eq!(c.data(), &[2.0, -4.0]);
    }

    #[test]
    fn randn_is_deterministic_per_seed_and_roughly_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let a = Tensor::randn(&[100, 10], 1.0, &mut rng);
        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let b = Tensor::randn(&[100, 10], 1.0, &mut rng2);
        assert_eq!(a.data(), b.data());
        let mean = a.sum() / a.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = Tensor::uniform(&[50, 4], 0.3, &mut rng);
        assert!(a.data().iter().all(|v| v.abs() <= 0.3));
    }

    #[test]
    fn max_abs_and_sum() {
        let a = Tensor::from_vec(vec![1.0, -5.0, 3.0]);
        assert_eq!(a.max_abs(), 5.0);
        assert_eq!(a.sum(), -1.0);
    }
}
