//! Feature-hashing semantic embedder.

use crate::preprocess::tokenize;

/// Deterministic FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic, training-free text embedder.
///
/// Each token and each character trigram of a token is feature-hashed
/// into a `dim`-bucket vector with a sign hash; the result is
/// L2-normalised. Shared tokens/trigrams between two strings produce
/// correlated vectors — the property sentence embeddings provide to the
/// Sleuth model (see the crate docs for the substitution rationale).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticEmbedder {
    dim: usize,
}

/// Weight of whole-token features relative to trigram features.
const TOKEN_WEIGHT: f32 = 1.0;
const TRIGRAM_WEIGHT: f32 = 0.4;

impl SemanticEmbedder {
    /// Create an embedder producing `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        SemanticEmbedder { dim }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed a raw string (pre-processing applied internally).
    ///
    /// The zero vector is returned for strings with no extractable
    /// tokens.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for token in tokenize(text) {
            self.add_feature(&mut v, token.as_bytes(), TOKEN_WEIGHT);
            let chars: Vec<u8> = token.bytes().collect();
            if chars.len() > 3 {
                for w in chars.windows(3) {
                    self.add_feature(&mut v, w, TRIGRAM_WEIGHT);
                }
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Embed the concatenation of several attribute strings (e.g.
    /// `service` and `name`), weighting them equally.
    pub fn embed_joined(&self, parts: &[&str]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for part in parts {
            let e = self.embed(part);
            for (a, b) in v.iter_mut().zip(&e) {
                *a += b;
            }
        }
        l2_normalize(&mut v);
        v
    }

    fn add_feature(&self, v: &mut [f32], bytes: &[u8], weight: f32) {
        let h = fnv1a(bytes, 0x5eed);
        let bucket = (h % self.dim as u64) as usize;
        let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
        v[bucket] += sign * weight;
    }
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity of two equal-length vectors (0.0 when either is
/// the zero vector).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_identical_vectors() {
        let e = SemanticEmbedder::new(64);
        assert_eq!(e.embed("GetUser"), e.embed("GetUser"));
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = SemanticEmbedder::new(64);
        let v = e.embed("payment.charge");
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_string_embeds_to_zero() {
        let e = SemanticEmbedder::new(16);
        assert!(e.embed("///").iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&e.embed(""), &e.embed("x")), 0.0);
    }

    #[test]
    fn shared_tokens_increase_similarity() {
        let e = SemanticEmbedder::new(128);
        let a = e.embed("GetUserProfile");
        let b = e.embed("GetUserSettings");
        let c = e.embed("FlushDiskCache");
        assert!(cosine(&a, &b) > cosine(&a, &c) + 0.1);
    }

    #[test]
    fn cross_application_semantics() {
        // The paper's motivating example: Redis GETs from two different
        // applications should be similar.
        let e = SemanticEmbedder::new(128);
        let a = e.embed("redis.get user_cache");
        let b = e.embed("RedisGet session_cache");
        let c = e.embed("mysql.insert order");
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn hex_ids_do_not_differentiate() {
        let e = SemanticEmbedder::new(64);
        let a = e.embed("GET /order/a1b2c3d4e5");
        let b = e.embed("GET /order/ffee991122");
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn embed_joined_combines_parts() {
        let e = SemanticEmbedder::new(64);
        let j = e.embed_joined(&["cart-service", "AddItem"]);
        assert!(cosine(&j, &e.embed("cart-service")) > 0.3);
        assert!(cosine(&j, &e.embed("AddItem")) > 0.3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Cosine of any embedding pair stays within [-1, 1].
        #[test]
        fn prop_cosine_bounded(a in "[a-zA-Z/._ -]{0,30}", b in "[a-zA-Z/._ -]{0,30}") {
            let e = SemanticEmbedder::new(32);
            let c = cosine(&e.embed(&a), &e.embed(&b));
            prop_assert!((-1.0001..=1.0001).contains(&c));
        }

        /// Embedding is deterministic across calls.
        #[test]
        fn prop_deterministic(s in "\\PC{0,40}") {
            let e = SemanticEmbedder::new(24);
            prop_assert_eq!(e.embed(&s), e.embed(&s));
        }
    }
}
