//! Semantic text embeddings for span `service` and `name` attributes.
//!
//! The Sleuth paper encodes span text with a pre-trained sentence-BERT
//! model (§3.2.2) so that semantically similar operation names (e.g. two
//! different applications' Redis `GET`s) land close together in embedding
//! space, which is what enables zero-/few-shot transfer between
//! applications (§6.5–6.6).
//!
//! Shipping a BERT is out of scope for a pure-Rust reproduction, so this
//! crate provides a **deterministic semantic-hashing embedder** with the
//! properties the downstream model actually relies on:
//!
//! 1. identical strings map to identical vectors,
//! 2. strings sharing tokens or character n-grams ("GetUser" /
//!    "GetUserProfile") map to nearby vectors (cosine-wise),
//! 3. unrelated strings map to near-orthogonal vectors,
//! 4. one vector is stored per *distinct* string via
//!    [`EmbeddingInterner`], mirroring the paper's optimisation of
//!    keeping pointers per span instead of per-span vectors.
//!
//! The paper's text pre-processing is applied first: special characters
//! removed, camel-case split, long hex digit runs replaced with a
//! placeholder ([`preprocess::tokenize`]).
//!
//! # Example
//!
//! ```
//! use sleuth_embed::{cosine, SemanticEmbedder};
//!
//! let emb = SemanticEmbedder::new(64);
//! let a = emb.embed("GetUserProfile");
//! let b = emb.embed("GetUserSettings");
//! let c = emb.embed("FlushDiskCache");
//! assert!(cosine(&a, &b) > cosine(&a, &c));
//! ```

pub mod hashing;
pub mod interner;
pub mod preprocess;

pub use hashing::{cosine, SemanticEmbedder};
pub use interner::EmbeddingInterner;
