//! Text pre-processing for span attributes (§3.2.2).
//!
//! Mirrors the paper's pipeline: remove special characters, separate
//! camel-case words, and replace long hexadecimal digit runs (request
//! ids, object ids) with a placeholder so they do not pollute semantics.

/// Placeholder token substituted for long hexadecimal runs.
pub const HEX_PLACEHOLDER: &str = "hexid";

/// Placeholder token substituted for decimal number runs.
pub const NUM_PLACEHOLDER: &str = "num";

/// Minimum length at which a hex-looking run is replaced.
const HEX_MIN_LEN: usize = 6;

/// Tokenize a raw attribute string into normalised lowercase tokens.
///
/// Steps:
/// 1. split on any non-alphanumeric character,
/// 2. split camel-case boundaries (`GetUser` → `get`, `user`),
/// 3. replace hex runs of ≥ 6 chars containing a digit with
///    [`HEX_PLACEHOLDER`] and all-digit runs with [`NUM_PLACEHOLDER`],
/// 4. lowercase everything.
///
/// ```
/// use sleuth_embed::preprocess::tokenize;
/// assert_eq!(tokenize("GET /user/3fa9c1d204"), vec!["get", "user", "hexid"]);
/// assert_eq!(tokenize("composePostService"), vec!["compose", "post", "service"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for rough in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if rough.is_empty() {
            continue;
        }
        // Hex/number detection must see the whole run, before camel/digit
        // splitting shreds "3fa9c1d2" into letter and digit fragments.
        let whole = normalize_piece(rough);
        if whole == HEX_PLACEHOLDER || whole == NUM_PLACEHOLDER {
            tokens.push(whole);
            continue;
        }
        for piece in split_camel(rough) {
            tokens.push(normalize_piece(&piece));
        }
    }
    tokens
}

/// Split a single alphanumeric run at camel-case and letter/digit
/// boundaries.
fn split_camel(word: &str) -> Vec<String> {
    let chars: Vec<char> = word.chars().collect();
    let mut pieces = Vec::new();
    let mut cur = String::new();
    for (i, &c) in chars.iter().enumerate() {
        if !cur.is_empty() {
            let prev = chars[i - 1];
            let upper_boundary = c.is_ascii_uppercase()
                && (prev.is_ascii_lowercase()
                    // Acronym end: "HTTPServer" -> "HTTP", "Server"
                    || (prev.is_ascii_uppercase()
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_lowercase())));
            let digit_boundary = c.is_ascii_digit() != prev.is_ascii_digit();
            if upper_boundary || digit_boundary {
                pieces.push(std::mem::take(&mut cur));
            }
        }
        cur.push(c);
    }
    if !cur.is_empty() {
        pieces.push(cur);
    }
    pieces
}

fn normalize_piece(piece: &str) -> String {
    let lower = piece.to_ascii_lowercase();
    if lower.chars().all(|c| c.is_ascii_digit()) {
        return NUM_PLACEHOLDER.to_string();
    }
    if lower.len() >= HEX_MIN_LEN
        && lower.chars().all(|c| c.is_ascii_hexdigit())
        && lower.chars().any(|c| c.is_ascii_digit())
    {
        return HEX_PLACEHOLDER.to_string();
    }
    lower
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_special_characters() {
        assert_eq!(tokenize("redis.get"), vec!["redis", "get"]);
        assert_eq!(tokenize("POST /orders"), vec!["post", "orders"]);
        assert_eq!(tokenize("a--b__c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn splits_camel_case() {
        assert_eq!(tokenize("GetUserProfile"), vec!["get", "user", "profile"]);
        assert_eq!(tokenize("composePost"), vec!["compose", "post"]);
    }

    #[test]
    fn acronyms_kept_whole() {
        assert_eq!(tokenize("HTTPServer"), vec!["http", "server"]);
        assert_eq!(tokenize("parseJSONBody"), vec!["parse", "json", "body"]);
    }

    #[test]
    fn hex_runs_replaced() {
        assert_eq!(tokenize("span 3fa9c1d2"), vec!["span", "hexid"]);
        // short hex-like strings survive
        assert_eq!(tokenize("cafe"), vec!["cafe"]);
        // all-letter hex words (no digit) survive: "deadbeef" has no digit? it does not -> stays
        assert_eq!(tokenize("defaced"), vec!["defaced"]);
    }

    #[test]
    fn digit_runs_replaced() {
        assert_eq!(tokenize("v2"), vec!["v", "num"]);
        assert_eq!(tokenize("shard12345"), vec!["shard", "num"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("///---").is_empty());
    }

    #[test]
    fn deterministic() {
        assert_eq!(tokenize("GetUser"), tokenize("GetUser"));
    }
}
