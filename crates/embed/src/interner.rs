//! Embedding interner: one stored vector per distinct string.
//!
//! The paper notes (§3.2.2) that materialising an embedding per span
//! would cost tens of terabytes over billions of spans; because distinct
//! service/operation names are few, Sleuth stores one vector per
//! distinct string and keeps only pointers in span records. This type is
//! that optimisation.

use std::collections::HashMap;

use crate::hashing::SemanticEmbedder;

/// Index of an interned embedding.
pub type EmbeddingId = u32;

/// Deduplicating store of text embeddings.
#[derive(Debug, Clone)]
pub struct EmbeddingInterner {
    embedder: SemanticEmbedder,
    by_text: HashMap<String, EmbeddingId>,
    vectors: Vec<Vec<f32>>,
}

impl EmbeddingInterner {
    /// Create an interner over the given embedder.
    pub fn new(embedder: SemanticEmbedder) -> Self {
        EmbeddingInterner {
            embedder,
            by_text: HashMap::new(),
            vectors: Vec::new(),
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.embedder.dim()
    }

    /// Intern `text`, computing its embedding only on first sight.
    pub fn intern(&mut self, text: &str) -> EmbeddingId {
        if let Some(&id) = self.by_text.get(text) {
            return id;
        }
        let id = self.vectors.len() as EmbeddingId;
        self.vectors.push(self.embedder.embed(text));
        self.by_text.insert(text.to_string(), id);
        id
    }

    /// The vector for a previously interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn vector(&self, id: EmbeddingId) -> &[f32] {
        &self.vectors[id as usize]
    }

    /// Convenience: intern and immediately fetch the vector.
    pub fn embed(&mut self, text: &str) -> &[f32] {
        let id = self.intern(text);
        self.vector(id)
    }

    /// Number of distinct strings seen.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_on_repeat() {
        let mut i = EmbeddingInterner::new(SemanticEmbedder::new(16));
        let a = i.intern("cart");
        let b = i.intern("cart");
        let c = i.intern("orders");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn vectors_match_direct_embedding() {
        let e = SemanticEmbedder::new(32);
        let mut i = EmbeddingInterner::new(e.clone());
        let id = i.intern("GetCart");
        assert_eq!(i.vector(id), e.embed("GetCart").as_slice());
    }

    #[test]
    fn embed_returns_stable_slice() {
        let mut i = EmbeddingInterner::new(SemanticEmbedder::new(8));
        let v1 = i.embed("x").to_vec();
        let _ = i.embed("y");
        let v2 = i.embed("x").to_vec();
        assert_eq!(v1, v2);
        assert_eq!(i.dim(), 8);
    }

    #[test]
    fn empty_interner() {
        let i = EmbeddingInterner::new(SemanticEmbedder::new(8));
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
