//! Shared harness for the experiment benches.
//!
//! Every table and figure of the paper has a `harness = false` bench
//! target that reruns the experiment, prints the paper-style table, and
//! writes CSV + JSON artifacts under `target/experiments/`. Run the
//! whole suite with `cargo bench --workspace`; set `SLEUTH_FULL=1` for
//! paper-scale corpora.

use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use sleuth_eval::experiments::EvalScale;
use sleuth_eval::Table;

/// Directory experiment artifacts are written to
/// (`<workspace>/target/experiments` regardless of the bench binary's
/// working directory).
pub fn artifact_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    target.join("experiments")
}

/// Run one experiment bench: execute, print, persist.
pub fn run_experiment<R: Serialize>(name: &str, f: impl FnOnce(&EvalScale) -> (Table, R)) {
    let scale = EvalScale::from_env();
    let start = Instant::now();
    let (table, result) = f(&scale);
    let elapsed = start.elapsed();

    println!("{}", table.render());
    println!("[{name}] completed in {elapsed:.2?}\n");

    let dir = artifact_dir();
    if let Err(e) = table.write_csv(&dir.join(format!("{name}.csv"))) {
        eprintln!("[{name}] could not write CSV: {e}");
    }
    match serde_json::to_string_pretty(&result) {
        Ok(json) => {
            if let Err(e) = std::fs::write(dir.join(format!("{name}.json")), json) {
                eprintln!("[{name}] could not write JSON: {e}");
            }
        }
        Err(e) => eprintln!("[{name}] could not serialise result: {e}"),
    }
}
