//! Criterion microbenchmarks for the online serving runtime: shard
//! routing, bounded-queue transfer, and end-to-end ingest throughput
//! of span batches through a sharded runtime with a fitted pipeline.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::TrainConfig;
use sleuth_serve::{shard_of, BoundedQueue, ServeConfig, ServeRuntime};
use sleuth_synth::presets;
use sleuth_synth::workload::CorpusBuilder;
use sleuth_trace::Span;

fn fitted_pipeline() -> Arc<SleuthPipeline> {
    let app = presets::synthetic(12, 1);
    let train = CorpusBuilder::new(&app).seed(5).normal_traces(100).plain_traces();
    let config = PipelineConfig {
        train: TrainConfig { epochs: 8, batch_traces: 32, lr: 1e-2, seed: 0 },
        ..PipelineConfig::default()
    };
    Arc::new(SleuthPipeline::fit(&train, &config))
}

fn chaos_spans(n_traces: usize) -> Vec<Span> {
    let app = presets::synthetic(12, 1);
    CorpusBuilder::new(&app)
        .seed(5)
        .mixed_traces(n_traces, 8)
        .traces
        .into_iter()
        .flat_map(|t| t.trace.spans().to_vec())
        .collect()
}

fn bench_routing_and_queue(c: &mut Criterion) {
    let spans = chaos_spans(40);
    c.bench_function("shard_route_span_batch", |b| {
        b.iter(|| {
            spans
                .iter()
                .map(|s| shard_of(black_box(s.trace_id), 8))
                .sum::<usize>()
        })
    });

    c.bench_function("bounded_queue_push_pop_1k", |b| {
        b.iter(|| {
            let q: BoundedQueue<u64> = BoundedQueue::new(1024);
            for i in 0..1000u64 {
                q.try_push(i).expect("capacity");
            }
            let mut sum = 0u64;
            while let Some(v) = q.try_pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_serve_ingest(c: &mut Criterion) {
    let pipeline = fitted_pipeline();
    let spans = chaos_spans(100);

    // Full cycle per iteration: start a 4-shard runtime, stream the
    // corpus as 400-span batches against a logical clock, drain.
    c.bench_function("serve_ingest_4shard_100_traces", |b| {
        b.iter(|| {
            let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
                num_shards: 4,
                idle_timeout_us: 1_000_000,
                ..ServeConfig::default()
            })
            .expect("valid serve config");
            let mut clock = 0u64;
            for batch in spans.chunks(400) {
                runtime.submit_batch(batch.to_vec(), clock);
                clock += 1_000;
            }
            runtime.tick(clock + 2_000_000);
            let report = runtime.shutdown();
            black_box(report.metrics.traces_completed)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_routing_and_queue, bench_serve_ingest
);
criterion_main!(benches);
