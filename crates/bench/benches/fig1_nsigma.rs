//! Figure 1: n-sigma rule accuracy vs microservice scale.

fn main() {
    bench::run_experiment("fig1_nsigma", |scale| {
        let r = sleuth_eval::experiments::fig1_nsigma(scale);
        (r.table(), r)
    });
}
