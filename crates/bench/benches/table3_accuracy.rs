//! Table 3: F1/ACC of all RCA algorithms on all benchmarks.

fn main() {
    bench::run_experiment("table3_accuracy", |scale| {
        let r = sleuth_eval::experiments::table3_accuracy(scale);
        (r.table(), r)
    });
}
