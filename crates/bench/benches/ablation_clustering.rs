//! Ablation: clustering algorithm and its accuracy/inference trade-off.

fn main() {
    bench::run_experiment("ablation_clustering", |scale| {
        let r = sleuth_eval::experiments::ablation_clustering(scale);
        (r.table(), r)
    });
}
