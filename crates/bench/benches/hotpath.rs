//! Hot-path microbenchmarks for the interned ingest/distance kernels.
//!
//! Prints one machine-readable line per benchmark so `scripts/bench.sh`
//! can assemble `BENCH_hotpath.json`:
//!
//! ```text
//! HOTPATH_BENCH bench=ingest_otlp_parse spans=1234 median_us=567 samples=7
//! HOTPATH_BENCH bench=distance_sorted_merge pairs=19900 median_us=890 samples=7
//! HOTPATH_BENCH bench=distance_hashed pairs=19900 median_us=4567 samples=7
//! ```
//!
//! `ingest_otlp_parse` drives the zero-copy OTLP JSON scanner plus
//! trace assembly (the collector path); the two `distance_*` benches
//! run the identical weighted-Jaccard merge over the flat sorted-id
//! layout and over the legacy hashed `BTreeMap` layout, on the same
//! encoded corpus.

use std::time::Instant;

use sleuth_cluster::distance::{trace_distance, trace_distance_hashed};
use sleuth_cluster::TraceSetEncoder;
use sleuth_synth::presets;
use sleuth_synth::workload::CorpusBuilder;
use sleuth_trace::formats::{from_otel_json, to_otel_json};
use sleuth_trace::{Assembler, Trace};

const SAMPLES: usize = 7;

/// Median wall-clock of `SAMPLES` runs of `f`, in microseconds.
fn median_us(mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_micros()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let app = presets::synthetic(12, 1);
    let traces: Vec<Trace> = CorpusBuilder::new(&app)
        .seed(11)
        .mixed_traces(200, 8)
        .traces
        .into_iter()
        .map(|t| t.trace)
        .collect();

    // --- Ingest: OTLP JSON -> spans -> assembled traces -------------
    let per_trace_json: Vec<String> = traces
        .iter()
        .map(|t| to_otel_json(t.spans()))
        .collect();
    let total_spans: usize = traces.iter().map(|t| t.len()).sum();
    let mut assembler = Assembler::new();
    let ingest_us = median_us(|| {
        for json in &per_trace_json {
            let spans = from_otel_json(json).expect("bench JSON is valid");
            let trace = assembler.assemble(spans).expect("bench spans assemble");
            std::hint::black_box(&trace);
        }
    });
    println!("HOTPATH_BENCH bench=ingest_otlp_parse spans={total_spans} median_us={ingest_us} samples={SAMPLES}");

    // --- Distance: sorted-merge vs hashed reference ------------------
    let encoder = TraceSetEncoder::new(3);
    let sets: Vec<_> = traces.iter().map(|t| encoder.encode(t)).collect();
    let hashed: Vec<_> = traces.iter().map(|t| encoder.encode_hashed(t)).collect();
    let n = sets.len();
    let pairs = n * (n - 1) / 2;

    let merge_us = median_us(|| {
        let mut acc = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                acc += trace_distance(&sets[i], &sets[j]);
            }
        }
        std::hint::black_box(acc);
    });
    println!("HOTPATH_BENCH bench=distance_sorted_merge pairs={pairs} median_us={merge_us} samples={SAMPLES}");

    let hashed_us = median_us(|| {
        let mut acc = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                acc += trace_distance_hashed(&hashed[i], &hashed[j]);
            }
        }
        std::hint::black_box(acc);
    });
    println!("HOTPATH_BENCH bench=distance_hashed pairs={pairs} median_us={hashed_us} samples={SAMPLES}");
}
