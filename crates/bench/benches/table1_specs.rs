//! Table 1: benchmark specifications.

fn main() {
    bench::run_experiment("table1_specs", |_scale| {
        let r = sleuth_eval::experiments::table1_specs();
        (r.table(), r)
    });
}
