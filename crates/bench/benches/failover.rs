//! Failover benchmark: heartbeat detection latency and verdict
//! throughput while a shard is failing over.
//!
//! Prints one machine-readable line per metric so `scripts/bench.sh`
//! can assemble `BENCH_failover.json`:
//!
//! ```text
//! FAILOVER_BENCH bench=detection samples=7 p50_us=31000 p99_us=42000
//! ```
//!
//! Topology per sample: shard 0 is a real [`sleuth_wire::serve_shard`]
//! server (the survivor); shard 1 is a minimal in-bench peer that
//! completes the handshake, acks data frames and heartbeat probes —
//! then goes *mute* on command while keeping its socket open. That is
//! the worst detection case: no socket error ever fires, only the
//! router's heartbeat miss counter can declare the peer dead. The
//! bench measures mute → `dead_peers()` (detection) and mute → all
//! verdicts drained after failover re-routes the dead shard's traces
//! to the survivor (total failover), plus verdicts/sec through that
//! window.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::TrainConfig;
use sleuth_serve::{NoFaults, ServeConfig};
use sleuth_synth::presets;
use sleuth_synth::workload::CorpusBuilder;
use sleuth_trace::Span;
use sleuth_wire::{
    serve_shard, Endpoint, Frame, FrameReader, FrameWriter, NoWireFaults, RouterClient,
    RouterConfig, ShardServerConfig, WireError, WireListener, WireMetrics, DEFAULT_MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

const SAMPLES: usize = 7;
const TRACES: usize = 32;
const ANOMALIES: usize = 6;

fn fitted_pipeline() -> Arc<SleuthPipeline> {
    let app = presets::synthetic(12, 1);
    let train = CorpusBuilder::new(&app)
        .seed(5)
        .normal_traces(100)
        .plain_traces();
    let config = PipelineConfig {
        train: TrainConfig {
            epochs: 8,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        },
        ..PipelineConfig::default()
    };
    Arc::new(SleuthPipeline::fit(&train, &config))
}

fn batches() -> Vec<Vec<Span>> {
    let app = presets::synthetic(12, 1);
    CorpusBuilder::new(&app)
        .seed(5)
        .mixed_traces(TRACES, ANOMALIES)
        .traces
        .into_iter()
        .map(|t| t.trace.spans().to_vec())
        .collect()
}

fn uds(tag: &str) -> Endpoint {
    Endpoint::Unix(
        std::env::temp_dir().join(format!("sleuth-failover-{}-{tag}.sock", std::process::id())),
    )
}

/// A protocol-complete peer that acks everything until `mute` flips,
/// then keeps the socket open but never responds again — invisible to
/// everything except heartbeat misses.
fn mute_shard(listener: WireListener, mute: Arc<AtomicBool>) {
    let metrics = Arc::new(WireMetrics::default());
    let Ok(stream) = listener.accept() else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::new(read_half, DEFAULT_MAX_FRAME_LEN, Arc::clone(&metrics));
    let mut writer = FrameWriter::new(
        stream,
        PROTOCOL_VERSION,
        1,
        Arc::new(NoWireFaults),
        Arc::clone(&metrics),
    );
    loop {
        let frame = match reader.read_frame() {
            Ok(frame) => frame,
            Err(WireError::Timeout) => continue,
            Err(e) if !e.is_stream_fatal() => continue,
            Err(_) => return,
        };
        if mute.load(Ordering::Relaxed) {
            continue; // keep draining so the sender never blocks
        }
        let reply = match frame {
            Frame::Hello { .. } => Some(Frame::HelloAck {
                version: PROTOCOL_VERSION,
                resumed: false,
            }),
            Frame::Data { seq, .. } => Some(Frame::Ack { upto: seq }),
            Frame::Heartbeat { nonce } => Some(Frame::HeartbeatAck { nonce }),
            Frame::Goodbye { .. } => return,
            _ => None,
        };
        if let Some(reply) = reply {
            if writer.send(&reply).is_err() {
                return;
            }
        }
    }
}

struct Sample {
    detection_us: u64,
    total_us: u64,
    verdicts: usize,
}

/// One failover run: route a mixed workload across a real shard and
/// the mute-able peer, flip the peer mute, and time detection plus
/// the full drain after the dead shard's traces fail over.
fn failover_run(pipeline: &Arc<SleuthPipeline>, work: &[Vec<Span>]) -> Sample {
    let survivor_ep = uds("s0");
    let mute_ep = uds("s1");
    let survivor_listener = WireListener::bind(&survivor_ep).expect("bind survivor");
    let mute_listener = WireListener::bind(&mute_ep).expect("bind mute peer");

    let serve = ServeConfig {
        num_shards: 1,
        idle_timeout_us: 1_000_000,
        ..ServeConfig::default()
    };
    let server_config = ShardServerConfig::new(0, serve);
    let server_pipeline = Arc::clone(pipeline);
    let survivor = std::thread::spawn(move || {
        serve_shard(
            &survivor_listener,
            server_pipeline,
            server_config,
            Arc::new(NoFaults),
            Arc::new(NoWireFaults),
            Arc::new(WireMetrics::default()),
        )
    });
    let mute = Arc::new(AtomicBool::new(false));
    let mute_flag = Arc::clone(&mute);
    let muted = std::thread::spawn(move || mute_shard(mute_listener, mute_flag));

    let mut config = RouterConfig::new(vec![survivor_ep, mute_ep]);
    config.reconnect_attempts = 50;
    config.heartbeat.interval = Duration::from_millis(10);
    config.heartbeat.miss_threshold = 2;
    let mut router = RouterClient::connect(config).expect("connect fleet");
    assert!(router.dead_peers().is_empty(), "fleet never came up");

    let mut clock = 0u64;
    for batch in work {
        clock += 1_000;
        router.submit_batch(batch.clone(), clock);
    }
    // A few healthy heartbeat rounds so detection starts from a clean
    // miss counter.
    for _ in 0..5 {
        router.tick(clock);
        std::thread::sleep(Duration::from_millis(5));
    }

    let start = Instant::now();
    mute.store(true, Ordering::Relaxed);
    while !router.dead_peers().contains(&1) {
        router.tick(clock);
        std::thread::sleep(Duration::from_millis(1));
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "mute peer never declared dead"
        );
    }
    let detection_us = start.elapsed().as_micros() as u64;

    // Failover has re-staged the dead shard's traces on the survivor;
    // drain every verdict.
    router.tick(clock + 10_000_000);
    let report = router.shutdown();
    let total_us = start.elapsed().as_micros() as u64;
    assert_eq!(report.dead_peers, vec![1]);
    assert!(report.wire.shard_failovers >= 1, "no failover recorded");
    assert_eq!(report.wire.spans_unroutable, 0, "spans lost in failover");
    assert!(
        report.verdicts.iter().all(|v| !v.degraded),
        "failover degraded a verdict"
    );

    survivor
        .join()
        .expect("survivor thread")
        .expect("clean survivor exit");
    muted.join().expect("mute peer thread");
    Sample {
        detection_us,
        total_us,
        verdicts: report.verdicts.len(),
    }
}

/// Percentile with the usual upper-index convention on a sorted copy.
fn pct(samples: &[u64], p: usize) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    sorted[(n * p / 100).min(n - 1)]
}

fn main() {
    let pipeline = fitted_pipeline();
    let work = batches();

    let warm = failover_run(&pipeline, &work); // warm-up + sanity
    assert!(warm.verdicts > 0, "warm-up produced no verdicts");

    let samples: Vec<Sample> = (0..SAMPLES).map(|_| failover_run(&pipeline, &work)).collect();
    let detection: Vec<u64> = samples.iter().map(|s| s.detection_us).collect();
    let total: Vec<u64> = samples.iter().map(|s| s.total_us).collect();
    let rates: Vec<u64> = samples
        .iter()
        .map(|s| (s.verdicts as f64 / (s.total_us.max(1) as f64 / 1e6)) as u64)
        .collect();

    println!(
        "FAILOVER_BENCH bench=detection samples={SAMPLES} p50_us={} p99_us={}",
        pct(&detection, 50),
        pct(&detection, 99)
    );
    println!(
        "FAILOVER_BENCH bench=failover_total samples={SAMPLES} p50_us={} p99_us={}",
        pct(&total, 50),
        pct(&total, 99)
    );
    println!(
        "FAILOVER_BENCH bench=verdict_throughput samples={SAMPLES} traces={TRACES} verdicts={} p50_per_sec={} min_per_sec={}",
        samples[0].verdicts,
        pct(&rates, 50),
        rates.iter().min().copied().unwrap_or(0)
    );
}
