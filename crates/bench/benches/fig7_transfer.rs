//! Figure 7: transfer learning across applications.

fn main() {
    bench::run_experiment("fig7_transfer", |scale| {
        let r = sleuth_eval::experiments::fig7_transfer(scale);
        (r.table(), r)
    });
}
