//! Figure 5: training/inference time scaling, Sleuth vs Sage.

fn main() {
    bench::run_experiment("fig5_scaling", |scale| {
        let r = sleuth_eval::experiments::fig5_scaling(scale);
        (r.table(), r)
    });
}
