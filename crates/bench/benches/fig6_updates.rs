//! Figure 6: live accuracy under service updates A–D.

fn main() {
    bench::run_experiment("fig6_updates", |scale| {
        let r = sleuth_eval::experiments::fig6_updates(scale);
        (r.table(), r)
    });
}
