//! Ablation: Eq. 1 weighted Jaccard vs tree edit distance (§3.3.1).

fn main() {
    bench::run_experiment("ablation_distance", |scale| {
        let r = sleuth_eval::experiments::ablation_distance(scale);
        (r.table(), r)
    });
}
