//! Figure 3: span-duration CDF (log-scale skew).

fn main() {
    bench::run_experiment("fig3_duration_cdf", |scale| {
        let r = sleuth_eval::experiments::fig3_duration_cdf(scale);
        (r.table(), r)
    });
}
