//! Counterfactual RCA localisation benchmark: adaptive subtree
//! pruning + reusable encodings vs the legacy full-re-prediction
//! search, on the thousand-service soak scenario.
//!
//! Prints machine-readable lines for `scripts/bench.sh` to assemble
//! `BENCH_rca.json`:
//!
//! ```text
//! RCA_BENCH mode=pruned traces=142 calls=169 calls_per_trace=1.19 p50_us=2134 p99_us=4224 pruned_span_fraction=0.94
//! RCA_BENCH mode=unpruned traces=142 calls=882 calls_per_trace=6.21 p50_us=7339 p99_us=14467 pruned_span_fraction=0.94
//! RCA_BENCH summary call_ratio=0.19 speedup=3.4 identical_sets=1
//! ```
//!
//! Both modes run the *same* candidate ranking and accept logic; the
//! pruned mode reuses one cached trace encoding per localisation and
//! answers repeated counterfactual queries as deltas over the live
//! candidate mask. `identical_sets=1` certifies that every verdict
//! matched span-for-span — the speedup is free.

use std::time::Instant;

use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_core::CounterfactualRca;
use sleuth_gnn::TrainConfig;
use sleuth_synth::scenario::{Scenario, ScenarioKind, ScenarioParams};
use sleuth_trace::Trace;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct ModeStats {
    calls: u64,
    latencies_us: Vec<u128>,
    pruned_fraction_sum: f64,
    verdicts: Vec<Vec<String>>,
}

fn run_mode(rca: &CounterfactualRca, traces: &[&Trace]) -> ModeStats {
    let mut stats = ModeStats {
        calls: 0,
        latencies_us: Vec::with_capacity(traces.len()),
        pruned_fraction_sum: 0.0,
        verdicts: Vec::with_capacity(traces.len()),
    };
    for trace in traces {
        let started = Instant::now();
        let report = rca.localize_report(trace);
        stats.latencies_us.push(started.elapsed().as_micros());
        stats.calls += report.predict_calls;
        stats.pruned_fraction_sum += report.pruned_span_fraction;
        stats.verdicts.push(report.services);
    }
    stats.latencies_us.sort_unstable();
    stats
}

fn main() {
    // The generator forces the ~1000-service topology regardless of
    // the traffic knobs; a short window keeps the schedule bounded.
    let params = ScenarioParams {
        num_rpcs: 1100,
        app_seed: 1,
        duration_us: 300_000_000,
        base_rate_per_sec: 0.5,
    };
    let scenario = Scenario::generate(ScenarioKind::ThousandServices, &params, 42);

    let train = scenario.training_corpus(48);
    let config = PipelineConfig {
        train: TrainConfig { epochs: 4, batch_traces: 32, lr: 1e-2, seed: 0 },
        ..PipelineConfig::default()
    };
    let mut pipeline = SleuthPipeline::fit(&train, &config);
    pipeline.detector_mut().slo_multiplier = 3.0;

    let schedule = scenario.schedule();
    let traces: Vec<&Trace> = schedule.traces.iter().map(|st| &st.sim.trace).collect();
    eprintln!(
        "rca bench: {} services, {} scheduled traces",
        scenario.app.num_services(),
        traces.len()
    );

    let base = pipeline.rca();
    let mut pruned_rca = base.with_profile(base.profile().clone());
    pruned_rca.prune = true;
    let mut legacy_rca = base.with_profile(base.profile().clone());
    legacy_rca.prune = false;

    let pruned = run_mode(&pruned_rca, &traces);
    let unpruned = run_mode(&legacy_rca, &traces);

    let identical = pruned.verdicts == unpruned.verdicts;
    let n = traces.len() as f64;
    for (mode, s) in [("pruned", &pruned), ("unpruned", &unpruned)] {
        println!(
            "RCA_BENCH mode={mode} traces={} calls={} calls_per_trace={:.3} \
             p50_us={} p99_us={} pruned_span_fraction={:.4}",
            traces.len(),
            s.calls,
            s.calls as f64 / n,
            percentile(&s.latencies_us, 0.50),
            percentile(&s.latencies_us, 0.99),
            s.pruned_fraction_sum / n,
        );
    }
    let p50_pruned = percentile(&pruned.latencies_us, 0.50).max(1) as f64;
    let p50_unpruned = percentile(&unpruned.latencies_us, 0.50) as f64;
    println!(
        "RCA_BENCH summary call_ratio={:.4} speedup={:.2} identical_sets={}",
        pruned.calls as f64 / (unpruned.calls as f64).max(1.0),
        p50_unpruned / p50_pruned,
        u8::from(identical),
    );
    assert!(identical, "pruned and unpruned verdicts diverged");
}
