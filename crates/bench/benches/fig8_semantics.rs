//! Figure 8: sensitivity to span semantic information.

fn main() {
    bench::run_experiment("fig8_semantics", |scale| {
        let r = sleuth_eval::experiments::fig8_semantics(scale);
        (r.table(), r)
    });
}
