//! Criterion microbenchmarks for the performance-critical components:
//! trace assembly, exclusive-duration computation, the Eq. 1 distance,
//! HDBSCAN, semantic embedding, and per-trace GNN inference (the
//! paper's "<1 s for a thousand-span trace" claim, §3.1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth_cluster::{hdbscan, DistanceMatrix, HdbscanParams, TraceSetEncoder};
use sleuth_embed::SemanticEmbedder;
use sleuth_gnn::{Featurizer, ModelConfig, SleuthModel};
use sleuth_synth::chaos::FaultPlan;
use sleuth_synth::presets;
use sleuth_synth::Simulator;
use sleuth_trace::{exclusive, Trace};

fn sample_traces(n_rpcs: usize, count: usize) -> Vec<Trace> {
    let app = presets::synthetic(n_rpcs, 1);
    let sim = Simulator::new(&app);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    (0..count)
        .map(|i| sim.simulate(0, &FaultPlan::healthy(), i as u64, &mut rng).trace)
        .collect()
}

fn bench_trace_pipeline(c: &mut Criterion) {
    let traces = sample_traces(64, 8);
    let spans: Vec<_> = traces[0].spans().to_vec();

    c.bench_function("trace_assemble_127_spans", |b| {
        b.iter_batched(
            || spans.clone(),
            |s| Trace::assemble(s).unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("exclusive_durations_127_spans", |b| {
        b.iter(|| exclusive::exclusive_durations(&traces[0]))
    });

    let encoder = TraceSetEncoder::new(3);
    c.bench_function("traceset_encode_127_spans", |b| {
        b.iter(|| encoder.encode(&traces[0]))
    });

    let sets: Vec<_> = traces.iter().map(|t| encoder.encode(t)).collect();
    c.bench_function("jaccard_distance_pair", |b| {
        b.iter(|| sleuth_cluster::distance::trace_distance(&sets[0], &sets[1]))
    });
}

fn bench_clustering(c: &mut Criterion) {
    let traces = sample_traces(16, 60);
    let encoder = TraceSetEncoder::new(3);
    let sets: Vec<_> = traces.iter().map(|t| encoder.encode(t)).collect();
    c.bench_function("distance_matrix_60_traces", |b| {
        b.iter(|| DistanceMatrix::builder().build_from(&sets))
    });
    let dm = DistanceMatrix::builder().build_from(&sets);
    c.bench_function("hdbscan_60_traces", |b| {
        b.iter(|| {
            hdbscan(
                &dm,
                &HdbscanParams {
                    min_cluster_size: 5,
                    min_samples: 3,
                    cluster_selection_epsilon: 0.0,
                    allow_single_cluster: true,
                },
            )
        })
    });
}

fn bench_embedding(c: &mut Criterion) {
    let embedder = SemanticEmbedder::new(64);
    c.bench_function("semantic_embed_operation_name", |b| {
        b.iter(|| embedder.embed("payment RecordTransaction /api/v2/charge"))
    });
}

fn bench_gnn_inference(c: &mut Criterion) {
    let model = SleuthModel::new(&ModelConfig::default(), 1);
    let mut featurizer = Featurizer::new(8);
    for n_rpcs in [64usize, 256] {
        let traces = sample_traces(n_rpcs, 1);
        let enc = featurizer.encode(&traces[0]);
        c.bench_function(&format!("gnn_generative_inference_{}_spans", enc.len()), |b| {
            b.iter(|| model.predict(&enc))
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_trace_pipeline, bench_clustering, bench_embedding, bench_gnn_inference
);
criterion_main!(benches);
