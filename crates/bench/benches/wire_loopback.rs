//! Wire-protocol benchmark: frame codec throughput and end-to-end
//! loopback serving through the multi-process stack.
//!
//! Prints one machine-readable line per benchmark so
//! `scripts/bench.sh` can assemble `BENCH_wire.json`:
//!
//! ```text
//! WIRE_BENCH bench=frame_encode frames=512 spans=16384 median_us=1234
//! ```
//!
//! The loopback benches run real [`sleuth_wire::serve_shard`] servers
//! on background threads behind Unix-domain sockets and drive them
//! with a [`sleuth_wire::RouterClient`] — the full frame, session,
//! and ack machinery, minus process-spawn and scheduler noise (the
//! `examples/multi_process_serving.rs` topology covers true
//! multi-process operation).

use std::sync::Arc;
use std::time::Instant;

use sleuth_core::pipeline::{PipelineConfig, SleuthPipeline};
use sleuth_gnn::TrainConfig;
use sleuth_serve::{NoFaults, ServeConfig};
use sleuth_synth::presets;
use sleuth_synth::workload::CorpusBuilder;
use sleuth_trace::Span;
use sleuth_wire::{
    decode_frame_bytes, encode_frame, serve_shard, Endpoint, Frame, Msg, NoWireFaults,
    RouterClient, RouterConfig, ShardServerConfig, WireListener, WireMetrics,
    DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};

const SAMPLES: usize = 5;

/// Median wall-clock of `SAMPLES` runs of `f`, in microseconds.
fn median_us(mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_micros()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn report(bench: &str, frames: usize, spans: usize, median_us: u128) {
    println!(
        "WIRE_BENCH bench={bench} frames={frames} spans={spans} median_us={median_us} samples={SAMPLES}"
    );
}

fn fitted_pipeline() -> Arc<SleuthPipeline> {
    let app = presets::synthetic(12, 1);
    let train = CorpusBuilder::new(&app)
        .seed(5)
        .normal_traces(100)
        .plain_traces();
    let config = PipelineConfig {
        train: TrainConfig {
            epochs: 8,
            batch_traces: 32,
            lr: 1e-2,
            seed: 0,
        },
        ..PipelineConfig::default()
    };
    Arc::new(SleuthPipeline::fit(&train, &config))
}

/// Per-trace span batches for a mixed workload.
fn batches(n_traces: usize) -> Vec<Vec<Span>> {
    let app = presets::synthetic(12, 1);
    CorpusBuilder::new(&app)
        .seed(5)
        .mixed_traces(n_traces, 8)
        .traces
        .into_iter()
        .map(|t| t.trace.spans().to_vec())
        .collect()
}

fn uds(tag: &str) -> Endpoint {
    Endpoint::Unix(
        std::env::temp_dir().join(format!("sleuth-bench-{}-{tag}.sock", std::process::id())),
    )
}

/// One loopback run: spawn `shards` servers, route every batch, shut
/// down. Returns total spans moved.
fn loopback_run(pipeline: &Arc<SleuthPipeline>, work: &[Vec<Span>], shards: usize) -> usize {
    let mut endpoints = Vec::new();
    let mut handles = Vec::new();
    for shard_id in 0..shards {
        let endpoint = uds(&format!("s{shard_id}"));
        let listener = WireListener::bind(&endpoint).expect("bind bench endpoint");
        let serve = ServeConfig {
            num_shards: 1,
            idle_timeout_us: 1_000_000,
            ..ServeConfig::default()
        };
        let config = ShardServerConfig::new(shard_id, serve);
        let pipeline = Arc::clone(pipeline);
        handles.push(std::thread::spawn(move || {
            serve_shard(
                &listener,
                pipeline,
                config,
                Arc::new(NoFaults),
                Arc::new(NoWireFaults),
                Arc::new(WireMetrics::default()),
            )
        }));
        endpoints.push(endpoint);
    }
    let mut router = RouterClient::connect(RouterConfig::new(endpoints)).expect("connect");
    let mut clock = 0u64;
    let mut spans = 0usize;
    for batch in work {
        clock += 1_000;
        spans += batch.len();
        router.submit_batch(batch.clone(), clock);
    }
    router.tick(clock + 10_000_000);
    let report = router.shutdown();
    assert_eq!(
        report.metrics.spans_submitted, spans as u64,
        "loopback lost spans"
    );
    for handle in handles {
        handle
            .join()
            .expect("shard thread")
            .expect("clean shard exit");
    }
    spans
}

fn main() {
    // ---- Pure codec: encode/decode span-batch frames ----------------
    let work = batches(64);
    let spans: usize = work.iter().map(Vec::len).sum();
    let frames: Vec<Frame> = work
        .iter()
        .enumerate()
        .map(|(i, batch)| Frame::Data {
            seq: i as u64 + 1,
            msg: Msg::SpanBatch {
                now_us: 1_000 * i as u64,
                spans: batch.clone(),
            },
        })
        .collect();

    let mut encoded: Vec<Vec<u8>> = Vec::new();
    report(
        "frame_encode",
        frames.len(),
        spans,
        median_us(|| {
            encoded = frames
                .iter()
                .map(|f| encode_frame(f, PROTOCOL_VERSION))
                .collect();
        }),
    );
    let bytes: usize = encoded.iter().map(Vec::len).sum();
    println!("WIRE_BENCH bench=frame_bytes frames={} spans={spans} median_us=0 samples=1 payload_bytes={bytes}", frames.len());

    report(
        "frame_decode",
        encoded.len(),
        spans,
        median_us(|| {
            for buf in &encoded {
                let frame =
                    decode_frame_bytes(buf, DEFAULT_MAX_FRAME_LEN).expect("self-encoded frame");
                std::hint::black_box(frame);
            }
        }),
    );

    // ---- Loopback end-to-end: router -> shard server(s) -------------
    let pipeline = fitted_pipeline();
    for shards in [1usize, 2] {
        let moved = loopback_run(&pipeline, &work, shards); // warm-up + sanity
        assert_eq!(moved, spans);
        report(
            &format!("loopback_{shards}shard"),
            work.len(),
            spans,
            median_us(|| {
                loopback_run(&pipeline, &work, shards);
            }),
        );
    }
}
