//! Parallel scaling benchmark for the data-parallel runtime.
//!
//! Unlike the criterion-based microbenches, this binary prints one
//! machine-readable line per benchmark so `scripts/bench.sh` can run
//! it twice (`SLEUTH_THREADS=1` and `SLEUTH_THREADS=<nproc>`) and
//! assemble `BENCH_parallel.json` with per-bench medians and speedups:
//!
//! ```text
//! PARALLEL_BENCH bench=distance_matrix threads=4 median_us=1234 samples=5
//! ```
//!
//! Every timed path goes through the global [`sleuth_par`] pool, so
//! the `SLEUTH_THREADS` override is the only knob between runs; the
//! serve benchmark additionally sets `rca_workers` to the same count.

use std::sync::Arc;
use std::time::Instant;

use sleuth_cluster::{core_distances, DistanceMatrix};
use sleuth_core::pipeline::{AnalyzeOptions, PipelineConfig, SleuthPipeline};
use sleuth_gnn::TrainConfig;
use sleuth_serve::{ServeConfig, ServeRuntime};
use sleuth_synth::presets;
use sleuth_synth::workload::CorpusBuilder;
use sleuth_trace::Trace;

const SAMPLES: usize = 5;

/// Median wall-clock of `SAMPLES` runs of `f`, in microseconds.
fn median_us(mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_micros()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn report(bench: &str, median_us: u128) {
    let threads = sleuth_par::ThreadPool::global().num_threads();
    println!("PARALLEL_BENCH bench={bench} threads={threads} median_us={median_us} samples={SAMPLES}");
}

fn chaos_traces(n: usize) -> Vec<Trace> {
    let app = presets::synthetic(12, 1);
    CorpusBuilder::new(&app)
        .seed(5)
        .mixed_traces(n, 8)
        .traces
        .into_iter()
        .map(|t| t.trace)
        .collect()
}

fn main() {
    let app = presets::synthetic(12, 1);
    let train = CorpusBuilder::new(&app).seed(5).normal_traces(100).plain_traces();
    let config = PipelineConfig {
        train: TrainConfig { epochs: 8, batch_traces: 32, lr: 1e-2, seed: 0 },
        ..PipelineConfig::default()
    };
    let pipeline = Arc::new(SleuthPipeline::fit(&train, &config));
    let traces = chaos_traces(96);

    // Pairwise distance matrix over the encoded corpus (par_triangle).
    let sets: Vec<_> = traces.iter().map(|t| pipeline.encoder().encode(t)).collect();
    let mut dist = DistanceMatrix::builder().build_from(&sets);
    report("distance_matrix", median_us(|| {
        dist = DistanceMatrix::builder().build_from(&sets);
    }));

    // HDBSCAN core distances over that matrix (par_map).
    report("core_distances", median_us(|| {
        std::hint::black_box(core_distances(&dist, 8));
    }));

    // Full clustered batch analysis: encode + distance + localise.
    report("analyze_clustered", median_us(|| {
        std::hint::black_box(pipeline.analyze(&traces, AnalyzeOptions::default()));
    }));

    // End-to-end serve ingest with as many RCA workers as threads.
    let spans: Vec<_> = traces.iter().flat_map(|t| t.spans().to_vec()).collect();
    let workers = sleuth_par::ThreadPool::global().num_threads();
    report("serve_ingest", median_us(|| {
        let runtime = ServeRuntime::start(Arc::clone(&pipeline), ServeConfig {
            num_shards: 4,
            rca_workers: workers,
            idle_timeout_us: 1_000_000,
            ..ServeConfig::default()
        })
        .expect("valid serve config");
        let mut clock = 0u64;
        for batch in spans.chunks(400) {
            runtime.submit_batch(batch.to_vec(), clock);
            clock += 1_000;
        }
        runtime.tick(clock + 2_000_000);
        std::hint::black_box(runtime.shutdown());
    }));
}
