//! Ablation: GNN decoder vs linear SEM (§3.4's non-linearity claim).

fn main() {
    bench::run_experiment("ablation_decoder", |scale| {
        let r = sleuth_eval::experiments::ablation_decoder(scale);
        (r.table(), r)
    });
}
