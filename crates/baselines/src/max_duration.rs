//! The "max exclusive duration" rule (§6.1.2).

use std::collections::HashMap;

use sleuth_trace::{exclusive, Trace};

use crate::common::{exclusive_error_services, RootCauseLocator};

/// Max-duration baseline: for a slow trace, the service aggregating the
/// largest total exclusive duration is the root cause; for an error
/// trace, the services holding exclusive errors are.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxDuration;

impl MaxDuration {
    /// Create the (stateless) locator.
    pub fn new() -> Self {
        MaxDuration
    }
}

impl RootCauseLocator for MaxDuration {
    fn name(&self) -> &str {
        "max-duration"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        if trace.is_error() {
            let errs = exclusive_error_services(trace);
            if !errs.is_empty() {
                return errs;
            }
        }
        let ex = exclusive::exclusive_durations(trace);
        let mut by_service: HashMap<&str, u64> = HashMap::new();
        for (i, s) in trace.iter() {
            *by_service.entry(s.service.as_str()).or_default() += ex[i];
        }
        by_service
            .into_iter()
            .max_by_key(|&(name, total)| (total, std::cmp::Reverse(name.to_string())))
            .map(|(name, _)| vec![name.to_string()])
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind, StatusCode};

    fn trace_with_slow_db() -> Trace {
        Trace::assemble(vec![
            Span::builder(1, 1, "front", "GET /").time(0, 10_000).build(),
            Span::builder(1, 2, "cart", "Get")
                .parent(1)
                .kind(SpanKind::Client)
                .time(500, 9_500)
                .build(),
            Span::builder(1, 3, "db", "query")
                .parent(2)
                .kind(SpanKind::Client)
                .time(600, 9_400)
                .build(),
        ])
        .unwrap()
    }

    #[test]
    fn slow_trace_blames_biggest_exclusive() {
        // db span is a leaf with 8800µs exclusive; front 1000; cart 200.
        let got = MaxDuration::new().localize(&trace_with_slow_db());
        assert_eq!(got, vec!["db".to_string()]);
    }

    #[test]
    fn error_trace_blames_exclusive_error() {
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "front", "GET /")
                .time(0, 1_000)
                .status(StatusCode::Error)
                .build(),
            Span::builder(1, 2, "auth", "Check")
                .parent(1)
                .kind(SpanKind::Client)
                .time(100, 300)
                .status(StatusCode::Error)
                .build(),
        ])
        .unwrap();
        // Both errored; auth's is exclusive (leaf), front's propagated.
        assert_eq!(MaxDuration::new().localize(&t), vec!["auth".to_string()]);
    }

    #[test]
    fn error_trace_without_exclusive_falls_back_to_duration() {
        // Root errored but no child errored either — root itself holds
        // the exclusive error, so DFS finds it.
        let t = Trace::assemble(vec![Span::builder(1, 1, "front", "GET /")
            .time(0, 1_000)
            .status(StatusCode::Error)
            .build()])
        .unwrap();
        assert_eq!(MaxDuration::new().localize(&t), vec!["front".to_string()]);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MaxDuration::new().name(), "max-duration");
    }
}
