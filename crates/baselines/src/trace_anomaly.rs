//! TraceAnomaly (Liu et al., ISSRE '20) reimplementation.
//!
//! A variational autoencoder learns the distribution of a trace's
//! service-latency vector; anomalous spans are flagged with the
//! three-sigma rule and the root cause is the deepest anomalous span on
//! the longest anomalous path.

use std::collections::HashMap;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth_tensor::nn::{Activation, Mlp, Params};
use sleuth_tensor::optim::{Adam, Optimizer};
use sleuth_tensor::{Tape, Tensor};
use sleuth_trace::{transform, Trace};

use crate::common::{exclusive_error_services, OpKey, OpProfile, RootCauseLocator};

/// Sentinel for operations absent from a trace (≈ 1 µs in scaled space).
const ABSENT: f32 = -4.0;

/// The TraceAnomaly baseline.
#[derive(Debug, Clone)]
pub struct TraceAnomaly {
    vocab: HashMap<OpKey, usize>,
    profile: OpProfile,
    params: Params,
    encoder: Mlp,
    decoder: Mlp,
    z_dim: usize,
    /// p95 reconstruction error over the training set (detection
    /// threshold).
    threshold: f32,
}

impl TraceAnomaly {
    /// Fit the VAE on a training corpus.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn fit(traces: &[Trace], epochs: usize, seed: u64) -> Self {
        assert!(!traces.is_empty(), "training corpus must be non-empty");
        let profile = OpProfile::fit(traces);
        let mut keys: Vec<OpKey> = profile.iter().map(|(k, _)| *k).collect();
        keys.sort();
        let vocab: HashMap<OpKey, usize> =
            keys.into_iter().enumerate().map(|(i, k)| (k, i)).collect();
        let v = vocab.len().max(1);
        let z_dim = 8usize.min(v.max(2));
        let hidden = 32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut params = Params::new();
        let encoder = Mlp::new(&mut params, &[v, hidden, 2 * z_dim], Activation::Tanh, &mut rng);
        let decoder = Mlp::new(&mut params, &[z_dim, hidden, v], Activation::Tanh, &mut rng);
        let mut model = TraceAnomaly {
            vocab,
            profile,
            params,
            encoder,
            decoder,
            z_dim,
            threshold: f32::MAX,
        };

        let vectors: Vec<Vec<f32>> = traces.iter().map(|t| model.vectorize(t)).collect();
        let x = Tensor::from_rows(vectors.clone());
        let mut adam = Adam::new(5e-3);
        for _ in 0..epochs {
            let tape = Tape::new();
            let bound = model.params.bind(&tape);
            let xin = tape.leaf(x.clone());
            let enc = model.encoder.forward(&tape, &bound, xin);
            let mu = tape.slice_cols(enc, 0, model.z_dim);
            let logvar = tape.slice_cols(enc, model.z_dim, 2 * model.z_dim);
            let eps = tape.leaf(Tensor::randn(&[x.rows(), model.z_dim], 1.0, &mut rng));
            let std = tape.exp(tape.scale(logvar, 0.5));
            let z = tape.add(mu, tape.mul(std, eps));
            let recon = model.decoder.forward(&tape, &bound, z);
            let mse = tape.mse_loss(recon, x.data());
            // KL(q||N(0,I)) = -0.5 Σ (1 + logvar - mu² - e^logvar)
            let kl_inner = tape.sub(
                tape.add_scalar(logvar, 1.0),
                tape.add(tape.square(mu), tape.exp(logvar)),
            );
            let kl = tape.scale(tape.mean(kl_inner), -0.5);
            let beta = 0.05f32;
            let loss = tape.add(mse, tape.scale(kl, beta));
            let grads = tape.backward(loss);
            adam.step(&mut model.params, &bound, &grads);
        }

        let mut scores: Vec<f32> = vectors.iter().map(|v| model.score_vec(v)).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        model.threshold = scores[(scores.len() * 95 / 100).min(scores.len() - 1)];
        model
    }

    /// Encode a trace as its service-latency vector.
    fn vectorize(&self, trace: &Trace) -> Vec<f32> {
        let mut v = vec![ABSENT; self.vocab.len().max(1)];
        let mut counts = vec![0u32; v.len()];
        for (_, s) in trace.iter() {
            if let Some(&idx) = self.vocab.get(&OpKey::of(s)) {
                let d = transform::scale_duration(s.duration_us());
                if counts[idx] == 0 {
                    v[idx] = d;
                } else {
                    v[idx] += d;
                }
                counts[idx] += 1;
            }
        }
        for (val, &c) in v.iter_mut().zip(&counts) {
            if c > 1 {
                *val /= c as f32;
            }
        }
        v
    }

    fn score_vec(&self, v: &[f32]) -> f32 {
        let x = Tensor::new(vec![1, v.len()], v.to_vec());
        let enc = self.encoder.infer(&self.params, &x);
        let mu = Tensor::new(
            vec![1, self.z_dim],
            enc.data()[..self.z_dim].to_vec(),
        );
        let recon = self.decoder.infer(&self.params, &mu);
        recon
            .data()
            .iter()
            .zip(v)
            .map(|(&r, &t)| (r - t) * (r - t))
            .sum::<f32>()
            / v.len() as f32
    }

    /// Reconstruction-error anomaly score of a trace.
    pub fn anomaly_score(&self, trace: &Trace) -> f32 {
        self.score_vec(&self.vectorize(trace))
    }

    /// Whether the trace's score exceeds the training p95 threshold.
    pub fn is_anomalous(&self, trace: &Trace) -> bool {
        self.anomaly_score(trace) > self.threshold
    }
}

impl RootCauseLocator for TraceAnomaly {
    fn name(&self) -> &str {
        "trace-anomaly"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        // Three-sigma anomalous spans.
        let mut anomalous: Vec<usize> = Vec::new();
        for (i, s) in trace.iter() {
            if let Some(st) = self.profile.get(&OpKey::of(s)) {
                if s.duration_us() as f64 > st.mean_us + 3.0 * st.std_us {
                    anomalous.push(i);
                }
            }
        }
        // Deepest anomalous span on the longest anomalous path.
        if let Some(&deepest) = anomalous.iter().max_by_key(|&&i| trace.depth(i)) {
            return vec![trace.span(deepest).service.to_string()];
        }
        if trace.is_error() {
            return exclusive_error_services(trace);
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind};

    fn mk(id: u64, front: u64, cart: u64, db: u64) -> Trace {
        Trace::assemble(vec![
            Span::builder(id, 1, "front", "GET /").time(0, front).build(),
            Span::builder(id, 2, "cart", "Get")
                .parent(1)
                .kind(SpanKind::Client)
                .time(10, 10 + cart)
                .build(),
            Span::builder(id, 3, "db", "query")
                .parent(2)
                .kind(SpanKind::Client)
                .time(20, 20 + db)
                .build(),
        ])
        .unwrap()
    }

    fn train_corpus() -> Vec<Trace> {
        (0..80)
            .map(|i| mk(i, 10_000 + 50 * (i % 9), 5_000 + 30 * (i % 7), 1_000 + 20 * (i % 5)))
            .collect()
    }

    #[test]
    fn three_sigma_blames_deepest_anomalous_span() {
        let algo = TraceAnomaly::fit(&train_corpus(), 10, 1);
        // db wildly slow — also inflates cart and front, but db is
        // deepest.
        let anomaly = mk(999, 120_000, 110_000, 100_000);
        assert_eq!(algo.localize(&anomaly), vec!["db".to_string()]);
    }

    #[test]
    fn healthy_trace_scores_below_anomaly() {
        let algo = TraceAnomaly::fit(&train_corpus(), 40, 2);
        let healthy = mk(999, 10_100, 5_050, 1_010);
        let anomaly = mk(998, 500_000, 480_000, 470_000);
        assert!(algo.anomaly_score(&healthy) < algo.anomaly_score(&anomaly));
    }

    #[test]
    fn healthy_trace_localizes_nothing() {
        let algo = TraceAnomaly::fit(&train_corpus(), 10, 3);
        assert!(algo.localize(&mk(999, 10_050, 5_020, 1_005)).is_empty());
    }

    #[test]
    fn deterministic_fit() {
        let a = TraceAnomaly::fit(&train_corpus(), 5, 7);
        let b = TraceAnomaly::fit(&train_corpus(), 5, 7);
        let t = mk(999, 20_000, 15_000, 12_000);
        assert_eq!(a.anomaly_score(&t), b.anomaly_score(&t));
    }
}
