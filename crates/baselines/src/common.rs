//! Shared interfaces and per-operation statistics.

use std::cmp::Ordering;
use std::collections::HashMap;

use sleuth_trace::{exclusive, SpanKind, Symbol, Trace};

/// The interface every RCA algorithm exposes: given one anomalous
/// trace, name the root-cause services.
pub trait RootCauseLocator {
    /// Short algorithm name for reports.
    fn name(&self) -> &str;

    /// Predict the set of root-cause services of an anomalous trace.
    fn localize(&self, trace: &Trace) -> Vec<String>;
}

/// Identity of one logical operation, keyed by interned symbols.
///
/// `Copy`: hashing and equality compare two `u32`s, so per-span
/// profile lookups in the scoring hot loops never touch string data.
/// Ordering is still lexicographic over the resolved names (plus
/// kind) so deterministic model-training iteration orders survive the
/// symbol migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpKey {
    /// Service symbol (global interner).
    pub service: Symbol,
    /// Operation-name symbol (global interner).
    pub name: Symbol,
    /// Span kind.
    pub kind: SpanKind,
}

impl OpKey {
    /// Key of a span.
    pub fn of(span: &sleuth_trace::Span) -> Self {
        OpKey {
            service: span.service_sym(),
            name: span.name_sym(),
            kind: span.kind,
        }
    }

    /// Key from already-interned symbols.
    pub fn new(service: Symbol, name: Symbol, kind: SpanKind) -> Self {
        OpKey {
            service,
            name,
            kind,
        }
    }

    /// Resolve the key from strings, if both have been interned.
    pub fn resolve(service: &str, name: &str, kind: SpanKind) -> Option<Self> {
        Some(OpKey {
            service: Symbol::lookup(service)?,
            name: Symbol::lookup(name)?,
            kind,
        })
    }

    /// Key from strings, interning them as needed.
    #[deprecated(note = "intern the symbols once (`Symbol::intern`) and use `OpKey::new`, or \
                         `OpKey::resolve` when absence should mean no-match")]
    pub fn of_strings(service: &str, name: &str, kind: SpanKind) -> Self {
        OpKey {
            service: Symbol::intern(service),
            name: Symbol::intern(name),
            kind,
        }
    }

    /// Service name text.
    pub fn service_str(&self) -> &'static str {
        self.service.as_str()
    }

    /// Operation name text.
    pub fn name_str(&self) -> &'static str {
        self.name.as_str()
    }
}

impl PartialOrd for OpKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OpKey {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.service_str(), self.name_str(), self.kind).cmp(&(
            other.service_str(),
            other.name_str(),
            other.kind,
        ))
    }
}

/// Latency/error statistics of one operation over a training corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStats {
    /// Samples seen.
    pub count: usize,
    /// Mean duration, µs.
    pub mean_us: f64,
    /// Standard deviation of duration, µs.
    pub std_us: f64,
    /// Median duration, µs.
    pub median_us: u64,
    /// 95th percentile duration, µs.
    pub p95_us: u64,
    /// Mean *exclusive* duration, µs.
    pub mean_exclusive_us: f64,
    /// Median exclusive duration, µs.
    pub median_exclusive_us: u64,
}

/// Per-operation statistics learned from a (mostly healthy) corpus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpProfile {
    stats: HashMap<OpKey, OpStats>,
    /// p95 of end-to-end duration per root operation (the SLO proxy).
    root_p95: HashMap<OpKey, u64>,
    /// Median end-to-end duration per root operation.
    root_p50: HashMap<OpKey, u64>,
}

impl OpProfile {
    /// Fit the profile from training traces.
    pub fn fit(traces: &[Trace]) -> Self {
        let mut durs: HashMap<OpKey, Vec<u64>> = HashMap::new();
        let mut ex_durs: HashMap<OpKey, Vec<u64>> = HashMap::new();
        let mut roots: HashMap<OpKey, Vec<u64>> = HashMap::new();
        for t in traces {
            let ex = exclusive::exclusive_durations(t);
            for (i, s) in t.iter() {
                let key = OpKey::of(s);
                durs.entry(key).or_default().push(s.duration_us());
                ex_durs.entry(key).or_default().push(ex[i]);
            }
            let root = t.span(t.root());
            roots
                .entry(OpKey::of(root))
                .or_default()
                .push(t.total_duration_us());
        }
        let mut stats = HashMap::new();
        for (key, mut ds) in durs {
            ds.sort_unstable();
            let n = ds.len();
            let mean = ds.iter().map(|&d| d as f64).sum::<f64>() / n as f64;
            let var =
                ds.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
            let mut exd = ex_durs.remove(&key).unwrap_or_default();
            exd.sort_unstable();
            let mean_ex = if exd.is_empty() {
                0.0
            } else {
                exd.iter().map(|&d| d as f64).sum::<f64>() / exd.len() as f64
            };
            stats.insert(
                key,
                OpStats {
                    count: n,
                    mean_us: mean,
                    std_us: var.sqrt(),
                    median_us: ds[n / 2],
                    p95_us: ds[(n * 95 / 100).min(n - 1)],
                    mean_exclusive_us: mean_ex,
                    median_exclusive_us: exd.get(exd.len() / 2).copied().unwrap_or(0),
                },
            );
        }
        let mut root_p95 = HashMap::new();
        let mut root_p50 = HashMap::new();
        for (k, mut v) in roots {
            v.sort_unstable();
            root_p95.insert(k, v[(v.len() * 95 / 100).min(v.len() - 1)]);
            root_p50.insert(k, v[v.len() / 2]);
        }
        OpProfile {
            stats,
            root_p95,
            root_p50,
        }
    }

    /// Assemble a profile from externally computed statistics — the
    /// constructor used by incremental baseline refresh, where the
    /// per-operation stats come from streaming sketches over served
    /// traffic rather than a batch [`OpProfile::fit`].
    pub fn from_parts(
        stats: HashMap<OpKey, OpStats>,
        root_p95: HashMap<OpKey, u64>,
        root_p50: HashMap<OpKey, u64>,
    ) -> Self {
        OpProfile {
            stats,
            root_p95,
            root_p50,
        }
    }

    /// Stats for an operation, if seen in training.
    pub fn get(&self, key: &OpKey) -> Option<&OpStats> {
        self.stats.get(key)
    }

    /// The p95 end-to-end latency for traces rooted at `key` (SLO
    /// proxy); `u64::MAX` when unseen.
    pub fn root_slo_us(&self, key: &OpKey) -> u64 {
        self.root_p95.get(key).copied().unwrap_or(u64::MAX)
    }

    /// A contamination-robust SLO: the p95 capped at three times the
    /// median. When the profile is fit on unlabelled production traffic
    /// (which contains anomalies — the unsupervised setting), the raw
    /// p95 drifts into the anomalous range; the median barely moves.
    pub fn robust_root_slo_us(&self, key: &OpKey) -> u64 {
        match (self.root_p95.get(key), self.root_p50.get(key)) {
            (Some(&p95), Some(&p50)) => p95.min(p50.saturating_mul(3)),
            _ => u64::MAX,
        }
    }

    /// Number of operations profiled.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterate over all `(key, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&OpKey, &OpStats)> {
        self.stats.iter()
    }

    /// Iterate over all profiled root operations as
    /// `(key, p50_us, p95_us)` of end-to-end duration.
    pub fn roots(&self) -> impl Iterator<Item = (&OpKey, u64, u64)> {
        self.root_p95.iter().map(|(k, &p95)| {
            let p50 = self.root_p50.get(k).copied().unwrap_or(p95);
            (k, p50, p95)
        })
    }
}

/// Services of spans carrying *exclusive* errors — the DFS rule both
/// simple baselines use for error traces.
pub fn exclusive_error_services(trace: &Trace) -> Vec<String> {
    let ex_err = exclusive::exclusive_errors(trace);
    let mut out: Vec<String> = Vec::new();
    for (i, s) in trace.iter() {
        if ex_err[i] && !out.iter().any(|o| *o == s.service) {
            out.push(s.service.to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, StatusCode};

    fn simple_trace(id: u64, child_dur: u64, err: bool) -> Trace {
        Trace::assemble(vec![
            Span::builder(id, 1, "front", "GET /").time(0, 1000 + child_dur).build(),
            Span::builder(id, 2, "db", "query")
                .parent(1)
                .kind(SpanKind::Client)
                .time(500, 500 + child_dur)
                .status(if err { StatusCode::Error } else { StatusCode::Ok })
                .build(),
        ])
        .unwrap()
    }

    #[test]
    fn profile_fit_basic() {
        let traces: Vec<Trace> = (0..20).map(|i| simple_trace(i, 100 + i, false)).collect();
        let prof = OpProfile::fit(&traces);
        assert_eq!(prof.len(), 2);
        let key = OpKey::resolve("db", "query", SpanKind::Client).unwrap();
        let st = prof.get(&key).unwrap();
        assert_eq!(st.count, 20);
        assert!(st.mean_us > 100.0 && st.mean_us < 125.0);
        assert!(st.median_exclusive_us >= 100);
    }

    #[test]
    fn root_slo_from_p95() {
        let traces: Vec<Trace> = (0..100).map(|i| simple_trace(i, i, false)).collect();
        let prof = OpProfile::fit(&traces);
        let root_key = OpKey::resolve("front", "GET /", SpanKind::Server).unwrap();
        let slo = prof.root_slo_us(&root_key);
        assert!((1090..=1100).contains(&slo), "slo {slo}");
        let ghost = OpKey::new(
            sleuth_trace::Symbol::intern("x"),
            sleuth_trace::Symbol::intern("y"),
            SpanKind::Server,
        );
        assert_eq!(prof.root_slo_us(&ghost), u64::MAX);
    }

    #[test]
    fn exclusive_error_dfs() {
        let t = simple_trace(1, 100, true);
        assert_eq!(exclusive_error_services(&t), vec!["db".to_string()]);
        let t2 = simple_trace(1, 100, false);
        assert!(exclusive_error_services(&t2).is_empty());
    }
}
