//! Baseline RCA algorithms the paper compares against (§6.1.2).
//!
//! All six comparators are reimplemented from their papers' method
//! descriptions (the originals are closed-source or unmaintained):
//!
//! * [`MaxDuration`] — the SRE rule of thumb: the instance with the
//!   largest aggregate exclusive duration is the root cause of a slow
//!   trace; exclusive-error spans (found by DFS) are the root cause of
//!   an error trace.
//! * [`Threshold`] — per-operation percentile thresholds flag slow
//!   spans; their services are root causes. Errors as in `MaxDuration`.
//! * [`TraceAnomaly`] (Liu et al., ISSRE '20) — a variational
//!   autoencoder over the trace's service-latency vector detects
//!   anomalies; anomalous spans are flagged with the 3-sigma rule and
//!   the root cause is read off the longest anomalous path.
//! * [`RealtimeRca`] (Cai et al., IEEE Access '19) — spans outside the
//!   95% confidence interval of their historical latency are anomalous;
//!   a linear model attributes the end-to-end latency variance and the
//!   top contributor is the root cause.
//! * [`Sage`] (Gan et al., ASPLOS '21) — counterfactual RCA over a
//!   causal Bayesian network with **one generative model per
//!   operation**. This reimplementation keeps the properties the
//!   paper's experiments measure — parameter count and training time
//!   grow with application size, the models are keyed to the RPC
//!   topology (so topology changes orphan them), and no cross-
//!   application transfer is possible — while approximating each
//!   per-node GVAE with a small per-operation regressor trained by
//!   gradient descent.
//! * [`DeepTraLog`] (Zhang et al., ICSE '22) — a gated-GNN embedding
//!   trained with a Deep-SVDD objective; used in the paper as an
//!   alternative *clustering distance* (§6.2). The SVDD objective pulls
//!   embeddings toward a common centre, which is exactly the failure
//!   mode the paper reports (distinct root causes cluster together).
//!
//! Every algorithm implements [`RootCauseLocator`], the interface the
//! evaluation harness drives.

pub mod common;
pub mod deeptralog;
pub mod linear_sem;
pub mod max_duration;
pub mod realtime;
pub mod sage;
pub mod threshold;
pub mod trace_anomaly;

pub use common::{OpKey, OpProfile, RootCauseLocator};
pub use deeptralog::DeepTraLog;
pub use linear_sem::LinearSem;
pub use max_duration::MaxDuration;
pub use realtime::RealtimeRca;
pub use sage::Sage;
pub use threshold::Threshold;
pub use trace_anomaly::TraceAnomaly;
