//! Sage (Gan et al., ASPLOS '21) reimplementation.
//!
//! Sage builds a causal Bayesian network from the RPC dependency graph
//! and trains a **separate generative model per node** (a graphical
//! VAE); root causes are found with counterfactual queries that restore
//! candidate services to their normal state and re-generate the trace.
//!
//! This reimplementation approximates each per-node GVAE with a small
//! per-operation MLP regressor. The properties Sleuth's evaluation
//! measures are preserved exactly:
//!
//! * one model per operation → parameter count and training time grow
//!   linearly with application size (Fig. 5),
//! * models are keyed to the topology → service updates orphan them and
//!   accuracy collapses until retraining (Fig. 6),
//! * nothing transfers across applications (Fig. 7),
//! * inference is counterfactual, so accuracy is competitive at small
//!   scale (Table 3).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth_tensor::nn::{Activation, Mlp, Params};
use sleuth_tensor::optim::{Adam, Optimizer};
use sleuth_tensor::{Tape, Tensor};
use sleuth_trace::{exclusive, transform, Trace};

use crate::common::{OpKey, OpProfile, RootCauseLocator};

const FEATS: usize = 5;

/// Training samples gathered per parent operation: child feature rows,
/// duration targets, error targets.
type OpSamples = (Vec<Vec<f32>>, Vec<f32>, Vec<f32>);

/// One per-operation generative model.
#[derive(Debug, Clone)]
struct NodeModel {
    params: Params,
    mlp: Mlp,
}

/// The Sage baseline.
#[derive(Debug, Clone)]
pub struct Sage {
    profile: OpProfile,
    models: HashMap<OpKey, NodeModel>,
    /// Wall-clock spent in the last [`Sage::fit`].
    pub fit_wall: Duration,
    /// Maximum root-cause candidates restored before giving up.
    pub max_candidates: usize,
}

fn scale(d: f64) -> f32 {
    transform::scale_duration_f32(d as f32)
}

fn unscale(s: f32) -> f64 {
    10f64.powf((s as f64 + 4.0).clamp(-8.0, 8.0))
}

impl Sage {
    /// Fit per-operation models from a training corpus.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn fit(traces: &[Trace], epochs: usize, seed: u64) -> Self {
        assert!(!traces.is_empty(), "training corpus must be non-empty");
        let start = Instant::now();
        let profile = OpProfile::fit(traces);

        // Gather training samples per parent operation.
        let mut samples: HashMap<OpKey, OpSamples> = HashMap::new();
        for t in traces {
            let ex_d = exclusive::exclusive_durations(t);
            let ex_e = exclusive::exclusive_errors(t);
            for (i, s) in t.iter() {
                if t.children(i).is_empty() {
                    continue;
                }
                let feats = features(
                    scale(ex_d[i] as f64),
                    if ex_e[i] { 1.0 } else { 0.0 },
                    t.children(i)
                        .iter()
                        .map(|&c| {
                            (
                                t.span(c).duration_us() as f64,
                                if t.span(c).is_error() { 1.0 } else { 0.0 },
                            )
                        })
                        .collect::<Vec<_>>()
                        .as_slice(),
                );
                let entry = samples.entry(OpKey::of(s)).or_default();
                entry.0.push(feats);
                entry.1.push(scale(s.duration_us() as f64));
                entry.2.push(if s.is_error() { 1.0 } else { 0.0 });
            }
        }

        // Train one model per operation (keys sorted so the shared RNG
        // is consumed in a deterministic order).
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut models = HashMap::new();
        let mut ordered: Vec<(OpKey, OpSamples)> = samples.into_iter().collect();
        ordered.sort_by_key(|(k, _)| *k);
        for (key, (xs, d_targets, e_targets)) in ordered {
            let mut params = Params::new();
            let mlp = Mlp::new(&mut params, &[FEATS, 32, 32, 2], Activation::Tanh, &mut rng);
            let x = Tensor::from_rows(xs);
            let mut adam = Adam::new(1e-2);
            for _ in 0..epochs {
                let tape = Tape::new();
                let bound = params.bind(&tape);
                let xin = tape.leaf(x.clone());
                let out = mlp.forward(&tape, &bound, xin);
                let dhat = tape.slice_cols(out, 0, 1);
                let elogit = tape.slice_cols(out, 1, 2);
                let eprob = tape.sigmoid(elogit);
                let mse = tape.mse_loss(dhat, &d_targets);
                let bce = tape.bce_loss(eprob, &e_targets);
                let loss = tape.add(mse, bce);
                let grads = tape.backward(loss);
                adam.step(&mut params, &bound, &grads);
            }
            models.insert(key, NodeModel { params, mlp });
        }

        Sage {
            profile,
            models,
            fit_wall: start.elapsed(),
            max_candidates: 3,
        }
    }

    /// Number of per-operation models (grows with application size).
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Total trainable scalars across all node models.
    pub fn num_parameters(&self) -> usize {
        self.models
            .values()
            .map(|m| m.params.num_scalars())
            .sum()
    }

    /// Generative bottom-up prediction of the trace's root duration (µs)
    /// and error probability, with optional per-span exclusive-feature
    /// overrides `(span index → (scaled d*, e*))`.
    pub fn predict(
        &self,
        trace: &Trace,
        overrides: &HashMap<usize, (f32, f32)>,
    ) -> (f64, f32) {
        let ex_d = exclusive::exclusive_durations(trace);
        let ex_e = exclusive::exclusive_errors(trace);
        let n = trace.len();
        let mut d_hat = vec![0f32; n];
        let mut e_hat = vec![0f32; n];
        for i in (0..n).rev() {
            let (ds, es) = overrides.get(&i).copied().unwrap_or((
                scale(ex_d[i] as f64),
                if ex_e[i] { 1.0 } else { 0.0 },
            ));
            let kids = trace.children(i);
            if kids.is_empty() {
                d_hat[i] = ds;
                e_hat[i] = es;
                continue;
            }
            let child_states: Vec<(f64, f32)> = kids
                .iter()
                .map(|&c| (unscale(d_hat[c]), e_hat[c]))
                .collect();
            let key = OpKey::of(trace.span(i));
            if let Some(model) = self.models.get(&key) {
                let feats = features(ds, es, &child_states);
                let x = Tensor::new(vec![1, FEATS], feats);
                let out = model.mlp.infer(&model.params, &x);
                d_hat[i] = out.data()[0];
                e_hat[i] = 1.0 / (1.0 + (-out.data()[1]).exp());
            } else {
                // Topology changed: no model for this node. Fall back to
                // a crude structural guess (this is what degrades Sage
                // under service updates).
                let max_child = child_states
                    .iter()
                    .map(|c| c.0)
                    .fold(0.0f64, f64::max);
                d_hat[i] = scale(unscale(ds) + max_child);
                let max_child_err = child_states.iter().map(|c| c.1).fold(0.0f32, f32::max);
                e_hat[i] = es.max(max_child_err);
            }
        }
        (unscale(d_hat[trace.root()]), e_hat[trace.root()])
    }

    fn is_normal(&self, trace: &Trace, pred_d_us: f64, pred_e: f32) -> bool {
        let slo = self.profile.root_slo_us(&OpKey::of(trace.span(trace.root())));
        pred_e < 0.5 && (slo == u64::MAX || pred_d_us <= slo as f64)
    }
}

/// Features of a parent span given its (possibly counterfactual)
/// exclusive state and child states `(duration µs, error prob)`.
fn features(d_star_scaled: f32, e_star: f32, children: &[(f64, f32)]) -> Vec<f32> {
    let sum: f64 = children.iter().map(|c| c.0).sum();
    let max = children.iter().map(|c| c.0).fold(0.0f64, f64::max);
    let err_frac = if children.is_empty() {
        0.0
    } else {
        children.iter().map(|c| c.1).sum::<f32>() / children.len() as f32
    };
    vec![d_star_scaled, e_star, scale(sum), scale(max), err_frac]
}

impl RootCauseLocator for Sage {
    fn name(&self) -> &str {
        "sage"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        let ex_d = exclusive::exclusive_durations(trace);
        let ex_e = exclusive::exclusive_errors(trace);

        // Rank candidate services by exclusive errors and excess
        // exclusive duration vs their normal median.
        let mut score: HashMap<&str, f64> = HashMap::new();
        for (i, s) in trace.iter() {
            let key = OpKey::of(s);
            let median = self
                .profile
                .get(&key)
                .map(|st| st.median_exclusive_us as f64)
                .unwrap_or(0.0);
            let excess = (ex_d[i] as f64 - median).max(0.0);
            let err_bonus = if ex_e[i] { 1e9 } else { 0.0 };
            *score.entry(s.service.as_str()).or_default() += excess + err_bonus;
        }
        let mut candidates: Vec<(&str, f64)> = score.into_iter().collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(b.0)));

        // Iteratively restore candidates until the counterfactual trace
        // is predicted normal.
        let mut overrides: HashMap<usize, (f32, f32)> = HashMap::new();
        let mut restored: Vec<String> = Vec::new();
        for (svc, _) in candidates.into_iter().take(self.max_candidates) {
            for (i, s) in trace.iter() {
                if s.service == svc {
                    let key = OpKey::of(s);
                    let med = self
                        .profile
                        .get(&key)
                        .map(|st| st.median_exclusive_us)
                        .unwrap_or(0);
                    overrides.insert(i, (scale(med as f64), 0.0));
                }
            }
            restored.push(svc.to_string());
            let (d, e) = self.predict(trace, &overrides);
            if self.is_normal(trace, d, e) {
                return restored;
            }
        }
        restored.truncate(1);
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_synth::chaos::ChaosEngine;
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;

    fn corpus_and_app() -> (Vec<Trace>, sleuth_synth::App) {
        let app = presets::synthetic(16, 1);
        let traces = CorpusBuilder::new(&app)
            .seed(3)
            .normal_traces(150)
            .plain_traces();
        (traces, app)
    }

    #[test]
    fn model_count_scales_with_app() {
        let (small_traces, _) = corpus_and_app();
        let small = Sage::fit(&small_traces, 5, 1);
        let app = presets::synthetic(64, 1);
        let big_traces = CorpusBuilder::new(&app)
            .seed(3)
            .normal_traces(150)
            .plain_traces();
        let big = Sage::fit(&big_traces, 5, 1);
        assert!(big.num_models() > small.num_models());
        assert!(big.num_parameters() > small.num_parameters());
    }

    #[test]
    fn healthy_traces_predicted_normal() {
        let (traces, _) = corpus_and_app();
        let sage = Sage::fit(&traces, 30, 1);
        let mut ok = 0;
        for t in traces.iter().take(40) {
            let (d, e) = sage.predict(t, &HashMap::new());
            if sage.is_normal(t, d, e) {
                ok += 1;
            }
        }
        assert!(ok >= 30, "only {ok}/40 healthy traces predicted normal");
    }

    #[test]
    fn localizes_injected_fault_service() {
        let (traces, app) = corpus_and_app();
        let sage = Sage::fit(&traces, 30, 1);
        let chaos = ChaosEngine::default();
        let builder = CorpusBuilder::new(&app).seed(5).chaos(chaos);
        let queries = builder.anomaly_queries(10, 15);
        let mut hits = 0;
        let mut total = 0;
        for q in &queries {
            for st in &q.traces {
                total += 1;
                let pred = sage.localize(&st.trace);
                if pred.iter().any(|p| st.ground_truth.services.contains(p)) {
                    hits += 1;
                }
            }
        }
        assert!(
            hits * 2 > total,
            "sage found the injected service in only {hits}/{total} traces"
        );
    }

    #[test]
    fn prediction_deterministic() {
        let (traces, _) = corpus_and_app();
        let a = Sage::fit(&traces, 5, 9);
        let b = Sage::fit(&traces, 5, 9);
        let (da, ea) = a.predict(&traces[0], &HashMap::new());
        let (db, eb) = b.predict(&traces[0], &HashMap::new());
        assert_eq!(da, db);
        assert_eq!(ea, eb);
    }

    #[test]
    fn unseen_topology_uses_fallback() {
        let (traces, _) = corpus_and_app();
        let sage = Sage::fit(&traces, 5, 1);
        // A trace from a different application: no models match.
        let foreign = sleuth_trace::Trace::assemble(vec![
            sleuth_trace::Span::builder(1, 1, "alien", "Z").time(0, 50_000).build(),
            sleuth_trace::Span::builder(1, 2, "alien-db", "q")
                .parent(1)
                .time(10, 40_000)
                .build(),
        ])
        .unwrap();
        let (d, _e) = sage.predict(&foreign, &HashMap::new());
        assert!(d.is_finite());
        // Localization still returns something (the fallback path).
        let _ = sage.localize(&foreign);
    }
}
