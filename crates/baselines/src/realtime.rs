//! Realtime RCA (Cai et al., IEEE Access '19) reimplementation.
//!
//! Spans are compared with their historical normal latency; a span
//! outside the 95% confidence interval is anomalous. Each operation's
//! contribution to the end-to-end latency variance is estimated with a
//! linear regression learned offline, and the most significant
//! anomalous span is the origin of the anomaly.

use std::collections::HashMap;

use sleuth_trace::Trace;

use crate::common::{exclusive_error_services, OpKey, OpProfile, RootCauseLocator};

/// The Realtime RCA baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RealtimeRca {
    profile: OpProfile,
    /// Per-operation slope of end-to-end latency vs span latency
    /// (cov(d_op, total) / var(d_op)).
    weights: HashMap<OpKey, f64>,
}

impl RealtimeRca {
    /// Fit historical statistics and regression weights.
    pub fn fit(traces: &[Trace]) -> Self {
        let profile = OpProfile::fit(traces);
        // Gather per-op samples of (span duration, trace total).
        let mut samples: HashMap<OpKey, Vec<(f64, f64)>> = HashMap::new();
        for t in traces {
            let total = t.total_duration_us() as f64;
            for (_, s) in t.iter() {
                samples
                    .entry(OpKey::of(s))
                    .or_default()
                    .push((s.duration_us() as f64, total));
            }
        }
        let weights = samples
            .into_iter()
            .map(|(key, pts)| {
                let n = pts.len() as f64;
                let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
                let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
                let cov = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
                let var = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum::<f64>() / n;
                let w = if var > 0.0 { (cov / var).max(0.0) } else { 0.0 };
                (key, w)
            })
            .collect();
        RealtimeRca { profile, weights }
    }
}

impl RootCauseLocator for RealtimeRca {
    fn name(&self) -> &str {
        "realtime-rca"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        if trace.is_error() {
            let errs = exclusive_error_services(trace);
            if !errs.is_empty() {
                return errs;
            }
        }
        // Anomalous spans: outside the 95% CI of historical latency.
        let mut best: Option<(f64, &str)> = None;
        for (i, s) in trace.iter() {
            // Skip the root: its latency is the effect being explained.
            if i == trace.root() {
                continue;
            }
            let key = OpKey::of(s);
            let Some(st) = self.profile.get(&key) else {
                continue;
            };
            let d = s.duration_us() as f64;
            if (d - st.mean_us).abs() <= 1.96 * st.std_us {
                continue;
            }
            let w = self.weights.get(&key).copied().unwrap_or(0.0);
            let contribution = w * (d - st.mean_us);
            if best.map(|(c, _)| contribution > c).unwrap_or(true) {
                best = Some((contribution, s.service.as_str()));
            }
        }
        best.map(|(_, svc)| vec![svc.to_string()]).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind, StatusCode};

    fn mk(id: u64, cart: u64, db: u64) -> Trace {
        Trace::assemble(vec![
            Span::builder(id, 1, "front", "GET /").time(0, 1_000 + cart + db).build(),
            Span::builder(id, 2, "cart", "Get")
                .parent(1)
                .kind(SpanKind::Client)
                .time(10, 10 + cart)
                .build(),
            Span::builder(id, 3, "db", "query")
                .parent(1)
                .kind(SpanKind::Client)
                .time(20 + cart, 20 + cart + db)
                .build(),
        ])
        .unwrap()
    }

    fn corpus() -> Vec<Trace> {
        (0..100)
            .map(|i| mk(i, 2_000 + 41 * (i % 13), 500 + 17 * (i % 11)))
            .collect()
    }

    #[test]
    fn blames_top_contributing_anomalous_span() {
        let algo = RealtimeRca::fit(&corpus());
        let anomaly = mk(999, 2_100, 90_000);
        assert_eq!(algo.localize(&anomaly), vec!["db".to_string()]);
    }

    #[test]
    fn healthy_trace_yields_nothing() {
        let algo = RealtimeRca::fit(&corpus());
        assert!(algo.localize(&mk(999, 2_200, 550)).is_empty());
    }

    #[test]
    fn error_traces_use_exclusive_errors() {
        let algo = RealtimeRca::fit(&corpus());
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "front", "GET /")
                .time(0, 3_000)
                .status(StatusCode::Error)
                .build(),
            Span::builder(1, 2, "pay", "Charge")
                .parent(1)
                .kind(SpanKind::Client)
                .time(10, 200)
                .status(StatusCode::Error)
                .build(),
        ])
        .unwrap();
        assert_eq!(algo.localize(&t), vec!["pay".to_string()]);
    }

    #[test]
    fn larger_deviation_with_equal_weight_wins() {
        let algo = RealtimeRca::fit(&corpus());
        // Both anomalous; cart deviates by much more.
        let anomaly = mk(999, 200_000, 5_000);
        assert_eq!(algo.localize(&anomaly), vec!["cart".to_string()]);
    }
}
