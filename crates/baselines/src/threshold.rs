//! Percentile-threshold baseline (§6.1.2).

use sleuth_trace::Trace;

use crate::common::{exclusive_error_services, OpKey, OpProfile, RootCauseLocator};

/// Threshold baseline: spans whose duration exceeds their operation's
/// historical percentile threshold are "high-latency spans"; their
/// services are the root causes of a slow trace. Error traces use the
/// exclusive-error DFS.
#[derive(Debug, Clone, PartialEq)]
pub struct Threshold {
    profile: OpProfile,
    /// Threshold multiplier applied to the p95 (1.0 = plain p95).
    pub multiplier: f64,
}

impl Threshold {
    /// Fit thresholds from a training corpus.
    pub fn fit(traces: &[Trace]) -> Self {
        Threshold {
            profile: OpProfile::fit(traces),
            multiplier: 1.0,
        }
    }

    /// Fit with an explicit multiplier over the p95 threshold.
    pub fn fit_with_multiplier(traces: &[Trace], multiplier: f64) -> Self {
        Threshold {
            profile: OpProfile::fit(traces),
            multiplier,
        }
    }
}

impl RootCauseLocator for Threshold {
    fn name(&self) -> &str {
        "threshold"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        if trace.is_error() {
            let errs = exclusive_error_services(trace);
            if !errs.is_empty() {
                return errs;
            }
        }
        let mut out: Vec<String> = Vec::new();
        for (_, s) in trace.iter() {
            let Some(st) = self.profile.get(&OpKey::of(s)) else {
                continue;
            };
            if s.duration_us() as f64 > st.p95_us as f64 * self.multiplier
                && !out.iter().any(|o| *o == s.service)
            {
                out.push(s.service.to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind};

    fn mk(id: u64, front_d: u64, db_d: u64) -> Trace {
        Trace::assemble(vec![
            Span::builder(id, 1, "front", "GET /").time(0, front_d).build(),
            Span::builder(id, 2, "db", "query")
                .parent(1)
                .kind(SpanKind::Client)
                .time(10, 10 + db_d)
                .build(),
        ])
        .unwrap()
    }

    #[test]
    fn flags_spans_over_p95() {
        let train: Vec<Trace> = (0..100).map(|i| mk(i, 1_000 + i, 100 + i % 7)).collect();
        let algo = Threshold::fit(&train);
        // db slow, front normal.
        let anomaly = mk(999, 1_050, 50_000);
        let got = algo.localize(&anomaly);
        assert_eq!(got, vec!["db".to_string()]);
    }

    #[test]
    fn healthy_trace_yields_nothing() {
        let train: Vec<Trace> = (0..100).map(|i| mk(i, 1_000 + i, 100)).collect();
        let algo = Threshold::fit(&train);
        assert!(algo.localize(&mk(999, 1_010, 100)).is_empty());
    }

    #[test]
    fn unseen_operations_are_ignored() {
        let train: Vec<Trace> = (0..10).map(|i| mk(i, 1_000, 100)).collect();
        let algo = Threshold::fit(&train);
        let novel = Trace::assemble(vec![Span::builder(1, 1, "ghost", "op")
            .time(0, 1_000_000)
            .build()])
        .unwrap();
        assert!(algo.localize(&novel).is_empty());
    }

    #[test]
    fn multiplier_raises_bar() {
        let train: Vec<Trace> = (0..100).map(|i| mk(i, 1_000, 100 + i % 7)).collect();
        let strict = Threshold::fit(&train);
        let lax = Threshold::fit_with_multiplier(&train, 100.0);
        let anomaly = mk(999, 1_000, 1_000);
        assert_eq!(strict.localize(&anomaly), vec!["db".to_string()]);
        assert!(lax.localize(&anomaly).is_empty());
    }
}
