//! Linear structural equation model (SEM) ablation.
//!
//! §3.4 argues that the causal impact of a child RPC on its parent is
//! inherently non-linear (a child only enters the critical path when it
//! outlasts its siblings; timeouts cap its impact), so "it is impossible
//! to accurately model the causal relationship with a linear model, such
//! as linear structural equation modeling". This module implements that
//! linear SEM so the claim can be measured: per-operation ridge
//! regressions `d_parent = w·[1, d*, Σ children, max child]` fitted in
//! closed form, used for the same counterfactual RCA loop.

use std::collections::HashMap;

use sleuth_trace::{exclusive, transform, Trace};

use crate::common::{OpKey, OpProfile, RootCauseLocator};

const FEATS: usize = 4;

/// One operation's linear mechanism.
#[derive(Debug, Clone, PartialEq)]
struct LinearNode {
    /// Regression weights over `[1, d*, Σ child, max child]` (scaled).
    w: [f32; FEATS],
}

/// The linear-SEM baseline.
#[derive(Debug, Clone)]
pub struct LinearSem {
    profile: OpProfile,
    nodes: HashMap<OpKey, LinearNode>,
    /// Ridge regularisation strength.
    pub lambda: f64,
    /// Maximum root-cause candidates restored.
    pub max_candidates: usize,
}

fn scale(d: f64) -> f32 {
    transform::scale_duration_f32(d as f32)
}

fn unscale(s: f32) -> f64 {
    10f64.powf((s as f64 + 4.0).clamp(-8.0, 8.0))
}

fn features(d_star_scaled: f32, children_us: &[f64]) -> [f32; FEATS] {
    let sum: f64 = children_us.iter().sum();
    let max = children_us.iter().copied().fold(0.0f64, f64::max);
    [1.0, d_star_scaled, scale(sum), scale(max)]
}

/// Solve `(XᵀX + λI) w = Xᵀy` by Gaussian elimination (4×4).
// Gaussian elimination indexes two rows of `a` at once; the index loop
// is clearer than a split_at_mut dance.
#[allow(clippy::needless_range_loop)]
fn ridge_solve(xs: &[[f32; FEATS]], ys: &[f32], lambda: f64) -> [f32; FEATS] {
    let mut a = [[0f64; FEATS + 1]; FEATS];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..FEATS {
            for j in 0..FEATS {
                a[i][j] += x[i] as f64 * x[j] as f64;
            }
            a[i][FEATS] += x[i] as f64 * y as f64;
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += lambda;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..FEATS {
        let pivot = (col..FEATS)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        a.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue;
        }
        for row in 0..FEATS {
            if row == col {
                continue;
            }
            let factor = a[row][col] / diag;
            for k in col..=FEATS {
                a[row][k] -= factor * a[col][k];
            }
        }
    }
    let mut w = [0f32; FEATS];
    for i in 0..FEATS {
        let diag = a[i][i];
        w[i] = if diag.abs() < 1e-12 {
            0.0
        } else {
            (a[i][FEATS] / diag) as f32
        };
    }
    w
}

impl LinearSem {
    /// Fit per-operation linear mechanisms from a training corpus.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn fit(traces: &[Trace]) -> Self {
        assert!(!traces.is_empty(), "training corpus must be non-empty");
        let profile = OpProfile::fit(traces);
        let mut samples: HashMap<OpKey, (Vec<[f32; FEATS]>, Vec<f32>)> = HashMap::new();
        for t in traces {
            let ex_d = exclusive::exclusive_durations(t);
            for (i, s) in t.iter() {
                if t.children(i).is_empty() {
                    continue;
                }
                let children: Vec<f64> = t
                    .children(i)
                    .iter()
                    .map(|&c| t.span(c).duration_us() as f64)
                    .collect();
                let entry = samples.entry(OpKey::of(s)).or_default();
                entry.0.push(features(scale(ex_d[i] as f64), &children));
                entry.1.push(scale(s.duration_us() as f64));
            }
        }
        let lambda = 1e-3;
        let nodes = samples
            .into_iter()
            .map(|(key, (xs, ys))| {
                (
                    key,
                    LinearNode {
                        w: ridge_solve(&xs, &ys, lambda),
                    },
                )
            })
            .collect();
        LinearSem {
            profile,
            nodes,
            lambda,
            max_candidates: 3,
        }
    }

    /// Bottom-up prediction of the root duration (µs) under exclusive-
    /// duration overrides (scaled), mirroring the GNN's generative pass.
    pub fn predict(&self, trace: &Trace, overrides: &HashMap<usize, f32>) -> f64 {
        let ex_d = exclusive::exclusive_durations(trace);
        let n = trace.len();
        let mut d_hat = vec![0f32; n];
        for i in (0..n).rev() {
            let ds = overrides
                .get(&i)
                .copied()
                .unwrap_or_else(|| scale(ex_d[i] as f64));
            let kids = trace.children(i);
            if kids.is_empty() {
                d_hat[i] = ds;
                continue;
            }
            let children: Vec<f64> = kids.iter().map(|&c| unscale(d_hat[c])).collect();
            let x = features(ds, &children);
            if let Some(node) = self.nodes.get(&OpKey::of(trace.span(i))) {
                d_hat[i] = x
                    .iter()
                    .zip(&node.w)
                    .map(|(xi, wi)| xi * wi)
                    .sum::<f32>();
            } else {
                let max = children.iter().copied().fold(0.0f64, f64::max);
                d_hat[i] = scale(unscale(ds) + max);
            }
        }
        unscale(d_hat[trace.root()])
    }

    /// Mean squared error of scaled root-duration predictions over a
    /// corpus (for the non-linearity ablation).
    pub fn reconstruction_mse(&self, traces: &[Trace]) -> f64 {
        let mut total = 0.0;
        for t in traces {
            let pred = self.predict(t, &HashMap::new());
            let err = scale(pred) as f64 - scale(t.total_duration_us() as f64) as f64;
            total += err * err;
        }
        total / traces.len() as f64
    }
}

impl RootCauseLocator for LinearSem {
    fn name(&self) -> &str {
        "linear-sem"
    }

    fn localize(&self, trace: &Trace) -> Vec<String> {
        let ex_d = exclusive::exclusive_durations(trace);
        // Rank services by excess exclusive duration.
        let mut score: HashMap<&str, f64> = HashMap::new();
        for (i, s) in trace.iter() {
            let med = self
                .profile
                .get(&OpKey::of(s))
                .map(|st| st.median_exclusive_us as f64)
                .unwrap_or(0.0);
            *score.entry(s.service.as_str()).or_default() +=
                (ex_d[i] as f64 - med).max(0.0);
        }
        let mut ranked: Vec<(&str, f64)> = score.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(b.0)));

        // Counterfactual restoration with the linear mechanisms.
        let slo = self
            .profile
            .robust_root_slo_us(&OpKey::of(trace.span(trace.root()))) as f64;
        let mut overrides: HashMap<usize, f32> = HashMap::new();
        let mut restored = Vec::new();
        for (svc, _) in ranked.into_iter().take(self.max_candidates) {
            for (i, s) in trace.iter() {
                if s.service == svc {
                    let med = self
                        .profile
                        .get(&OpKey::of(s))
                        .map(|st| st.median_exclusive_us)
                        .unwrap_or(0);
                    overrides.insert(i, scale(med.min(ex_d[i]) as f64));
                }
            }
            restored.push(svc.to_string());
            if self.predict(trace, &overrides) <= slo {
                return restored;
            }
        }
        restored.truncate(1);
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;

    fn corpus() -> Vec<Trace> {
        let app = presets::synthetic(16, 1);
        CorpusBuilder::new(&app).seed(12).normal_traces(150).plain_traces()
    }

    #[test]
    fn ridge_solves_known_system() {
        // y = 2·x1 + 3·x3 exactly.
        let xs: Vec<[f32; 4]> = (0..40)
            .map(|i| {
                let a = (i % 7) as f32;
                let b = (i % 5) as f32;
                [1.0, a, b, a + b]
            })
            .collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x[1] + 3.0 * x[3]).collect();
        let w = ridge_solve(&xs, &ys, 1e-6);
        let pred: f32 = xs[7].iter().zip(&w).map(|(x, wi)| x * wi).sum();
        assert!((pred - ys[7]).abs() < 1e-2, "pred {pred} vs {}", ys[7]);
    }

    #[test]
    fn fits_and_predicts_reasonably_on_healthy_traces() {
        let traces = corpus();
        let sem = LinearSem::fit(&traces);
        let mse = sem.reconstruction_mse(&traces);
        assert!(mse.is_finite());
        // Linear SEM should be rough but not absurd on healthy data.
        assert!(mse < 2.0, "mse {mse}");
    }

    #[test]
    fn localize_returns_candidates() {
        let app = presets::synthetic(16, 1);
        let builder = CorpusBuilder::new(&app).seed(13);
        let traces = builder.normal_traces(150).plain_traces();
        let sem = LinearSem::fit(&traces);
        let queries = builder.anomaly_queries(3, 10);
        for q in &queries {
            for st in &q.traces {
                let pred = sem.localize(&st.trace);
                assert!(pred.len() <= sem.max_candidates);
            }
        }
    }

    #[test]
    fn deterministic() {
        let traces = corpus();
        let a = LinearSem::fit(&traces);
        let b = LinearSem::fit(&traces);
        assert_eq!(
            a.predict(&traces[0], &HashMap::new()),
            b.predict(&traces[0], &HashMap::new())
        );
    }
}
