//! DeepTraLog (Zhang et al., ICSE '22) reimplementation.
//!
//! DeepTraLog learns a graph embedding of each trace with a gated GNN
//! and encloses normal embeddings in a minimum hypersphere (Deep SVDD).
//! Sleuth's evaluation (§6.2) uses the embedding-space Euclidean
//! distance as an alternative *clustering* metric and shows that it
//! groups traces with different root causes together — a direct
//! consequence of the SVDD objective pulling all embeddings toward one
//! centre, which this reimplementation reproduces.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth_gnn::Featurizer;
use sleuth_tensor::nn::{Activation, Mlp, Params};
use sleuth_tensor::optim::{Adam, Optimizer};
use sleuth_tensor::{Tape, Tensor};
use sleuth_trace::Trace;

/// The DeepTraLog embedding model.
#[derive(Debug, Clone)]
pub struct DeepTraLog {
    featurizer: Featurizer,
    params: Params,
    node_mlp: Mlp,
    center: Vec<f32>,
    embed_dim: usize,
}

impl DeepTraLog {
    /// Fit the embedding on a (mostly normal) corpus.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn fit(traces: &[Trace], epochs: usize, seed: u64) -> Self {
        assert!(!traces.is_empty(), "training corpus must be non-empty");
        let sem_dim = 8;
        let embed_dim = 8;
        let mut featurizer = Featurizer::new(sem_dim);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut params = Params::new();
        let node_mlp = Mlp::new(
            &mut params,
            &[2 + sem_dim, 16, embed_dim],
            Activation::Tanh,
            &mut rng,
        );

        let feature_rows: Vec<Tensor> = traces
            .iter()
            .map(|t| {
                let enc = featurizer.encode(t);
                let mut rows = Vec::with_capacity(enc.len());
                for i in 0..enc.len() {
                    let mut r = vec![enc.d_scaled[i], enc.e[i]];
                    r.extend_from_slice(&enc.sem[i]);
                    rows.push(r);
                }
                Tensor::from_rows(rows)
            })
            .collect();

        let mut model = DeepTraLog {
            featurizer,
            params,
            node_mlp,
            center: vec![0.0; embed_dim],
            embed_dim,
        };

        // Deep SVDD: centre = mean initial embedding, then minimise the
        // mean squared distance to it.
        let initial: Vec<Vec<f32>> = feature_rows
            .iter()
            .map(|x| model.embed_features(x))
            .collect();
        let mut center = vec![0.0f32; embed_dim];
        for e in &initial {
            for (c, v) in center.iter_mut().zip(e) {
                *c += v;
            }
        }
        for c in center.iter_mut() {
            *c /= initial.len() as f32;
        }
        model.center = center.clone();

        let mut adam = Adam::new(5e-3);
        for _ in 0..epochs {
            let tape = Tape::new();
            let bound = model.params.bind(&tape);
            // Graph embedding = mean over node embeddings; pack all
            // traces and average each with a segment mean.
            let mut all_rows = Vec::new();
            let mut seg = Vec::new();
            for (g, x) in feature_rows.iter().enumerate() {
                for r in 0..x.rows() {
                    all_rows.push(x.row(r).to_vec());
                    seg.push(g);
                }
            }
            let x = tape.leaf(Tensor::from_rows(all_rows));
            let h = model.node_mlp.forward(&tape, &bound, x);
            let sums = tape.segment_sum(h, &seg, feature_rows.len());
            let mut recip = Vec::with_capacity(feature_rows.len() * embed_dim);
            for t in &feature_rows {
                for _ in 0..embed_dim {
                    recip.push(1.0 / t.rows() as f32);
                }
            }
            let recip = tape.leaf(Tensor::new(vec![feature_rows.len(), embed_dim], recip));
            let means = tape.mul(sums, recip);
            // SVDD objective: squared distance to the fixed centre.
            let targets: Vec<f32> = center
                .iter()
                .cycle()
                .take(feature_rows.len() * embed_dim)
                .copied()
                .collect();
            let loss = tape.mse_loss(means, &targets);
            let grads = tape.backward(loss);
            adam.step(&mut model.params, &bound, &grads);
        }
        model
    }

    fn embed_features(&self, x: &Tensor) -> Vec<f32> {
        let h = self.node_mlp.infer(&self.params, x);
        let mut mean = vec![0.0f32; self.embed_dim];
        for r in 0..h.rows() {
            for (m, &v) in mean.iter_mut().zip(h.row(r)) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= h.rows() as f32;
        }
        mean
    }

    /// Embed a trace into the SVDD latent space.
    pub fn embed(&mut self, trace: &Trace) -> Vec<f32> {
        let enc = self.featurizer.encode(trace);
        let mut rows = Vec::with_capacity(enc.len());
        for i in 0..enc.len() {
            let mut r = vec![enc.d_scaled[i], enc.e[i]];
            r.extend_from_slice(&enc.sem[i]);
            rows.push(r);
        }
        self.embed_features(&Tensor::from_rows(rows))
    }

    /// Distance to the hypersphere centre (anomaly score).
    pub fn svdd_score(&mut self, trace: &Trace) -> f32 {
        let e = self.embed(trace);
        e.iter()
            .zip(&self.center)
            .map(|(a, c)| (a - c) * (a - c))
            .sum::<f32>()
            .sqrt()
    }

    /// Euclidean distance between two traces' embeddings — the
    /// clustering metric §6.2 compares against.
    pub fn distance(&mut self, a: &Trace, b: &Trace) -> f64 {
        let ea = self.embed(a);
        let eb = self.embed(b);
        ea.iter()
            .zip(&eb)
            .map(|(x, y)| ((x - y) * (x - y)) as f64)
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;

    fn corpus() -> Vec<Trace> {
        let app = presets::synthetic(16, 1);
        CorpusBuilder::new(&app).seed(4).normal_traces(60).plain_traces()
    }

    #[test]
    fn training_shrinks_distances_to_center() {
        let traces = corpus();
        let mut before = DeepTraLog::fit(&traces, 0, 2);
        let mut after = DeepTraLog::fit(&traces, 60, 2);
        let mean_before: f32 =
            traces.iter().map(|t| before.svdd_score(t)).sum::<f32>() / traces.len() as f32;
        let mean_after: f32 =
            traces.iter().map(|t| after.svdd_score(t)).sum::<f32>() / traces.len() as f32;
        assert!(
            mean_after < mean_before,
            "SVDD objective did not shrink: {mean_before} -> {mean_after}"
        );
    }

    #[test]
    fn embeddings_are_deterministic() {
        let traces = corpus();
        let mut a = DeepTraLog::fit(&traces, 5, 3);
        let mut b = DeepTraLog::fit(&traces, 5, 3);
        assert_eq!(a.embed(&traces[0]), b.embed(&traces[0]));
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let traces = corpus();
        let mut m = DeepTraLog::fit(&traces, 5, 4);
        let d_ab = m.distance(&traces[0], &traces[1]);
        let d_ba = m.distance(&traces[1], &traces[0]);
        assert!((d_ab - d_ba).abs() < 1e-9);
        assert!(m.distance(&traces[0], &traces[0]) < 1e-9);
    }

    #[test]
    fn svdd_collapse_compresses_embedding_space() {
        // The documented failure mode: after SVDD training, pairwise
        // distances shrink relative to the untrained embedding,
        // squeezing distinct behaviours together.
        let traces = corpus();
        let mut fresh = DeepTraLog::fit(&traces, 0, 5);
        let mut trained = DeepTraLog::fit(&traces, 60, 5);
        let mean_pair = |m: &mut DeepTraLog| {
            let mut tot = 0.0;
            let mut n = 0;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    tot += m.distance(&traces[i], &traces[j]);
                    n += 1;
                }
            }
            tot / n as f64
        };
        assert!(mean_pair(&mut trained) < mean_pair(&mut fresh));
    }
}
