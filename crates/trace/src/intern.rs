//! String interning: the id-first identifier layer of the hot paths.
//!
//! The paper's scale argument (§3.2.2) — billions of spans but only a
//! few thousand distinct service/operation names — means every hot
//! path that hashes, compares or clones identifier *strings* is doing
//! per-span work proportional to string length for information worth
//! 32 bits. This module provides the [`Symbol`]/[`Interner`] layer the
//! rest of the system builds on:
//!
//! * [`Symbol`] is a dense `u32` handle; comparing, hashing and
//!   copying one is a register operation,
//! * [`Interner`] is a thread-safe append-only symbol table with
//!   *stable resolve*: once a string is interned its symbol and its
//!   `&'static str` text never change or move for the life of the
//!   process,
//! * [`Interner::global`] is the process-wide table every
//!   [`Span`](crate::Span) draws its `service_sym`/`name_sym` from, so
//!   equal identifier strings yield equal symbols across threads and
//!   subsystems (property-tested under concurrent interning).
//!
//! Interned strings are allocated once and intentionally never freed
//! (the table only grows with the number of *distinct* identifiers,
//! which is bounded by the deployment's service/operation vocabulary —
//! the same argument `EmbeddingInterner` makes for one vector per
//! distinct string). This is what makes `resolve` a borrow instead of
//! a reference-counted clone.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, PoisonError, RwLock};

/// A dense interned-string handle.
///
/// Symbols are meaningful relative to the [`Interner`] that produced
/// them; the convenience constructors/accessors ([`Symbol::intern`],
/// [`Symbol::as_str`]) use the process-global table, which is where
/// every [`Span`](crate::Span) symbol comes from. Two symbols from the
/// same interner are equal iff their strings are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Intern `s` in the process-global table.
    pub fn intern(s: &str) -> Symbol {
        Interner::global().intern(s)
    }

    /// Look up `s` in the process-global table without inserting.
    pub fn lookup(s: &str) -> Option<Symbol> {
        Interner::global().get(s)
    }

    /// The text of a symbol produced by the process-global table.
    ///
    /// # Panics
    ///
    /// Panics if `self` did not come from [`Interner::global`] (e.g. a
    /// symbol from a local test interner with a larger id space).
    pub fn as_str(self) -> &'static str {
        Interner::global().resolve(self)
    }

    /// The raw dense id (index into the producing interner's table).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from a raw id. The caller asserts the id came
    /// from [`Symbol::id`] against the same interner.
    pub fn from_id(id: u32) -> Symbol {
        Symbol(id)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match Interner::global().try_resolve(*self) {
            Some(s) => f.write_str(s),
            None => write!(f, "<sym#{}>", self.0),
        }
    }
}

/// A pooled, interned string: the identifier text plus its [`Symbol`]
/// in [`Interner::global`], in one `Copy` handle.
///
/// This is the *storage* form of an interned identifier — what a
/// [`Span`](crate::Span) carries for `service`/`name`/`pod`/`node`
/// instead of an owned `String`. The global interner is the pool:
/// each distinct identifier string is allocated exactly once for the
/// life of the process, and every span referring to it holds this
/// 24-byte handle. Cloning is a register copy, equality and hashing
/// are `u32` operations on the symbol, and `as_str` is a borrow —
/// so steady-state ingest of a bounded identifier vocabulary does
/// zero per-span string allocation.
///
/// `IStr` dereferences to `str`, compares against `str`/`String`
/// directly, and displays as its text, so it drops into most code
/// that previously held a `String`.
#[derive(Clone, Copy)]
pub struct IStr {
    sym: Symbol,
    text: &'static str,
}

impl IStr {
    /// Intern `s` in the process-global pool and return its handle.
    pub fn intern(s: &str) -> IStr {
        let sym = Symbol::intern(s);
        IStr {
            sym,
            text: Interner::global().resolve(sym),
        }
    }

    /// Handle for a symbol already produced by [`Interner::global`].
    pub fn from_symbol(sym: Symbol) -> IStr {
        IStr {
            sym,
            text: Interner::global().resolve(sym),
        }
    }

    /// The pooled text. `&'static` because interned strings are never
    /// freed (see the module docs for the bounded-leak argument).
    pub fn as_str(self) -> &'static str {
        self.text
    }

    /// The interned symbol — the id the hot paths key on.
    pub fn sym(self) -> Symbol {
        self.sym
    }
}

impl Default for IStr {
    fn default() -> Self {
        IStr::intern("")
    }
}

impl std::ops::Deref for IStr {
    type Target = str;

    fn deref(&self) -> &str {
        self.text
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        self.text
    }
}

// Equality and hashing go through the symbol: the global interner is
// bijective, so equal text ⇔ equal symbol, and a u32 compare/hash
// beats walking the bytes.
impl PartialEq for IStr {
    fn eq(&self, other: &IStr) -> bool {
        self.sym == other.sym
    }
}

impl Eq for IStr {}

impl std::hash::Hash for IStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

// Ordering is lexicographic on the text (symbol ids are assigned in
// first-seen order, which would leak interning history into sorts).
impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &IStr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &IStr) -> std::cmp::Ordering {
        if self.sym == other.sym {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(other.text)
        }
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        self.text == other.as_str()
    }
}

impl PartialEq<IStr> for str {
    fn eq(&self, other: &IStr) -> bool {
        self == other.text
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == other.text
    }
}

impl PartialEq<IStr> for String {
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == other.text
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> IStr {
        IStr::intern(s)
    }
}

impl From<&String> for IStr {
    fn from(s: &String) -> IStr {
        IStr::intern(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> IStr {
        IStr::intern(&s)
    }
}

impl From<IStr> for String {
    fn from(s: IStr) -> String {
        s.text.to_string()
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.text, f)
    }
}

/// Interner state: the map borrows the same leaked allocations the
/// dense table points at, so both stay valid forever.
#[derive(Default)]
struct Inner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

/// A thread-safe, append-only string interner with stable resolve.
///
/// `intern` takes a read lock on the hit path (the overwhelmingly
/// common case once the identifier vocabulary has been seen) and a
/// write lock only for first-seen strings. Interned text is leaked
/// into the heap exactly once, which is what lets [`Interner::resolve`]
/// hand out `&'static str` without reference counting; the leak is
/// bounded by the number of distinct strings ever interned.
#[derive(Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// Create an empty interner (tests and tooling; production code
    /// shares [`Interner::global`]).
    pub fn new() -> Self {
        Interner::default()
    }

    /// The process-wide interner backing [`Span`](crate::Span) symbols.
    pub fn global() -> &'static Interner {
        static GLOBAL: OnceLock<Interner> = OnceLock::new();
        GLOBAL.get_or_init(Interner::new)
    }

    /// Intern `s`, returning its stable symbol. Idempotent: the same
    /// string always yields the same symbol, from any thread.
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(&id) = self.read().map.get(s) {
            return Symbol(id);
        }
        let mut w = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        // Double-checked: another thread may have interned `s` between
        // our read and write lock.
        if let Some(&id) = w.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(w.strings.len()).expect("interner capacity (2^32 symbols) exhausted");
        let text: &'static str = Box::leak(s.into());
        w.strings.push(text);
        w.map.insert(text, id);
        Symbol(id)
    }

    /// Look up a string without inserting it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.read().map.get(s).map(|&id| Symbol(id))
    }

    /// The text of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        self.try_resolve(sym).expect("symbol from a different interner")
    }

    /// The text of `sym`, or `None` if it is not from this interner.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&'static str> {
        self.read().strings.get(sym.0 as usize).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.read().strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("cart");
        let b = i.intern("cart");
        let c = i.intern("orders");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let texts = ["GET /", "checkout", "", "db.query", "checkout"];
        let syms: Vec<Symbol> = texts.iter().map(|t| i.intern(t)).collect();
        for (t, s) in texts.iter().zip(&syms) {
            assert_eq!(i.resolve(*s), *t);
        }
        assert_eq!(syms[1], syms[4]);
    }

    #[test]
    fn get_does_not_insert() {
        let i = Interner::new();
        assert_eq!(i.get("ghost"), None);
        assert!(i.is_empty());
        let s = i.intern("ghost");
        assert_eq!(i.get("ghost"), Some(s));
    }

    #[test]
    fn try_resolve_rejects_foreign_ids() {
        let i = Interner::new();
        i.intern("only");
        assert_eq!(i.try_resolve(Symbol(0)), Some("only"));
        assert_eq!(i.try_resolve(Symbol(7)), None);
    }

    #[test]
    fn global_symbols_are_stable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|k| Symbol::intern(&format!("svc-{}", k % 16)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all[1..] {
            assert_eq!(row, &all[0]);
        }
        for (k, sym) in all[0].iter().take(16).enumerate() {
            assert_eq!(sym.as_str(), format!("svc-{k}"));
        }
    }

    #[test]
    fn symbol_display_and_raw_id() {
        let s = Symbol::intern("display-me");
        assert_eq!(s.to_string(), "display-me");
        assert_eq!(Symbol::from_id(s.id()), s);
        assert_eq!(Symbol::lookup("display-me"), Some(s));
    }

    #[test]
    fn istr_pools_identical_text() {
        let a = IStr::intern("pooled-service");
        let b = IStr::intern("pooled-service");
        assert_eq!(a, b);
        assert_eq!(a.sym(), b.sym());
        // Same leaked allocation, not merely equal bytes.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn istr_compares_against_strings() {
        let a = IStr::intern("cart");
        assert_eq!(a, "cart");
        assert_eq!("cart", a);
        assert_eq!(a, String::from("cart"));
        assert_eq!(String::from("cart"), a);
        assert_ne!(a, "orders");
        assert!(!a.is_empty());
        assert!(IStr::default().is_empty());
    }

    #[test]
    fn istr_orders_lexicographically() {
        // Intern out of order so symbol-id order disagrees with text
        // order.
        let z = IStr::intern("zzz-last");
        let a = IStr::intern("aaa-first");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v[0], a);
    }

    #[test]
    fn istr_round_trips_symbol_and_string() {
        let a = IStr::intern("roundtrip");
        assert_eq!(IStr::from_symbol(a.sym()), a);
        assert_eq!(String::from(a), "roundtrip");
        assert_eq!(a.to_string(), "roundtrip");
        assert_eq!(format!("{a:?}"), "\"roundtrip\"");
        assert_eq!(IStr::from("roundtrip"), a);
        assert_eq!(IStr::from(String::from("roundtrip")), a);
        assert_eq!(a.len(), "roundtrip".len());
    }
}
