//! Span duration transformation (§3.2.2).
//!
//! Span durations are extremely heavy-tailed (the paper's Figure 3 shows
//! the top 1% of spans reaching >165,000× the minimum duration). Sleuth
//! therefore scales durations with a base-10 logarithm and standardises
//! with a *global* mean of 4.0 and standard deviation of 1.0 — global so
//! that a model trained on one dataset applies to any other without
//! rescaling.

/// Global mean used for standardisation (paper value: 4.0, i.e. 10 ms
/// when durations are microseconds).
pub const GLOBAL_LOG_MEAN: f32 = 4.0;

/// Global standard deviation used for standardisation (paper value: 1.0).
pub const GLOBAL_LOG_STD: f32 = 1.0;

/// Scale a duration in microseconds into model space:
/// `(log10(max(d, 1)) − 4.0) / 1.0`.
///
/// Zero durations are clamped to 1 µs before the logarithm.
pub fn scale_duration(duration_us: u64) -> f32 {
    let d = duration_us.max(1) as f32;
    (d.log10() - GLOBAL_LOG_MEAN) / GLOBAL_LOG_STD
}

/// Invert [`scale_duration`], returning microseconds.
///
/// This is the paper's `a' = 10^(σ·a + μ)` un-scaling used inside the
/// GNN's duration decoder (Eq. 2).
pub fn unscale_duration(scaled: f32) -> f32 {
    10f32.powf(GLOBAL_LOG_STD * scaled + GLOBAL_LOG_MEAN)
}

/// Scale a raw f32 duration (µs) already converted from integer space.
pub fn scale_duration_f32(duration_us: f32) -> f32 {
    (duration_us.max(1.0).log10() - GLOBAL_LOG_MEAN) / GLOBAL_LOG_STD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_milliseconds_maps_to_zero() {
        // 10^4 µs = 10 ms is the global mean.
        assert!((scale_duration(10_000)).abs() < 1e-6);
    }

    #[test]
    fn decade_steps_are_unit_steps() {
        assert!((scale_duration(100_000) - 1.0).abs() < 1e-6);
        assert!((scale_duration(1_000) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_clamped() {
        assert_eq!(scale_duration(0), scale_duration(1));
        assert!((scale_duration(0) + 4.0).abs() < 1e-6);
    }

    #[test]
    fn roundtrip_within_tolerance() {
        for &d in &[1u64, 10, 1_000, 10_000, 5_000_000] {
            let back = unscale_duration(scale_duration(d));
            let rel = (back - d as f32).abs() / d as f32;
            assert!(rel < 1e-3, "d={d} back={back}");
        }
    }

    #[test]
    fn monotonicity() {
        let mut prev = f32::NEG_INFINITY;
        for d in [1u64, 2, 10, 100, 10_000, 1_000_000] {
            let s = scale_duration(d);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn f32_variant_matches_integer_variant() {
        for &d in &[1u64, 500, 123_456] {
            assert!((scale_duration(d) - scale_duration_f32(d as f32)).abs() < 1e-6);
        }
    }
}
