//! The [`Span`] type and its identifiers.
//!
//! A span records one operation (an RPC leg or a local function call) with
//! the subset of OpenTelemetry attributes Sleuth's feature selection keeps
//! (§3.2.1): `service`, `name`, `kind`, `start`, `end` and `statusCode`.
//! `spanId`/`parentSpanId` are retained for trace reconstruction only and
//! never used as model features.

use std::fmt;

use crate::intern::{IStr, Symbol};

/// Unique identifier of a trace (one end-to-end request).
pub type TraceId = u64;

/// Unique identifier of a span within a trace.
pub type SpanId = u64;

/// The role a span plays in an RPC, per the OpenTelemetry convention.
///
/// Synchronous RPCs produce a `Client`/`Server` pair, asynchronous
/// messages a `Producer`/`Consumer` pair, and local function calls an
/// `Internal` span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum SpanKind {
    /// Outbound leg of a synchronous RPC.
    Client,
    /// Inbound leg of a synchronous RPC.
    #[default]
    Server,
    /// Publishing side of an asynchronous message.
    Producer,
    /// Consuming side of an asynchronous message.
    Consumer,
    /// A local (in-process) operation.
    Internal,
}

impl SpanKind {
    /// All kinds, in a stable order (useful for encoding as one-hot).
    pub const ALL: [SpanKind; 5] = [
        SpanKind::Client,
        SpanKind::Server,
        SpanKind::Producer,
        SpanKind::Consumer,
        SpanKind::Internal,
    ];

    /// Stable index of this kind in [`SpanKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            SpanKind::Client => 0,
            SpanKind::Server => 1,
            SpanKind::Producer => 2,
            SpanKind::Consumer => 3,
            SpanKind::Internal => 4,
        }
    }

    /// Whether this span represents the *calling* side of an interaction
    /// (used by the counterfactual RCA's service affiliation rule, §3.5).
    pub fn is_caller(self) -> bool {
        matches!(self, SpanKind::Client | SpanKind::Producer)
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpanKind::Client => "client",
            SpanKind::Server => "server",
            SpanKind::Producer => "producer",
            SpanKind::Consumer => "consumer",
            SpanKind::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Span status per the OpenTelemetry convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StatusCode {
    /// Status was not explicitly set; treated as success.
    #[default]
    Unset,
    /// The operation completed successfully.
    Ok,
    /// The operation failed.
    Error,
}

impl StatusCode {
    /// Whether this status indicates a failure.
    pub fn is_error(self) -> bool {
        matches!(self, StatusCode::Error)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatusCode::Unset => "unset",
            StatusCode::Ok => "ok",
            StatusCode::Error => "error",
        };
        f.write_str(s)
    }
}

/// One operation in a distributed trace.
///
/// Timestamps are in microseconds from an arbitrary per-trace epoch; only
/// differences are meaningful. `end` is always ≥ `start` (enforced by the
/// [`SpanBuilder`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: TraceId,
    /// Unique span id within the trace.
    pub span_id: SpanId,
    /// Parent span id, or `None` for the root span.
    pub parent_span_id: Option<SpanId>,
    /// Name of the service that recorded the span, as a pooled
    /// [`IStr`]: the text lives once in [`Interner::global`] and the
    /// span carries a `Copy` handle, so building a span from an
    /// already-seen identifier allocates nothing.
    ///
    /// [`Interner::global`]: crate::intern::Interner::global
    pub service: IStr,
    /// Operation name (e.g. `GET /cart`, `redis.get`), pooled like
    /// `service`.
    pub name: IStr,
    /// RPC role of the span.
    pub kind: SpanKind,
    /// Start timestamp in microseconds.
    pub start_us: u64,
    /// End timestamp in microseconds.
    pub end_us: u64,
    /// Completion status.
    pub status: StatusCode,
    /// Identity of the pod the service instance ran on (for root-cause
    /// instance reporting at pod granularity), pooled like `service` —
    /// pod identities are bounded by the deployment, not the traffic.
    pub pod: IStr,
    /// Identity of the node the pod ran on, pooled like `pod`.
    pub node: IStr,
}

impl Span {
    /// Start building a span with the required identity fields. The
    /// service and operation names are interned immediately — the
    /// builder never holds an owned `String`.
    pub fn builder(
        trace_id: TraceId,
        span_id: SpanId,
        service: impl AsRef<str>,
        name: impl AsRef<str>,
    ) -> SpanBuilder {
        SpanBuilder {
            trace_id,
            span_id,
            parent_span_id: None,
            service: IStr::intern(service.as_ref()),
            name: IStr::intern(name.as_ref()),
            kind: SpanKind::default(),
            start_us: 0,
            end_us: 0,
            status: StatusCode::default(),
            pod: IStr::default(),
            node: IStr::default(),
        }
    }

    /// Wall-clock duration of the span in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// Interned service symbol (dense u32 handle; see [`Symbol`]).
    pub fn service_sym(&self) -> Symbol {
        self.service.sym()
    }

    /// Interned operation-name symbol.
    pub fn name_sym(&self) -> Symbol {
        self.name.sym()
    }

    /// Whether the span failed.
    pub fn is_error(&self) -> bool {
        self.status.is_error()
    }
}

/// Builder for [`Span`] (see [`Span::builder`]).
#[derive(Debug, Clone)]
pub struct SpanBuilder {
    trace_id: TraceId,
    span_id: SpanId,
    parent_span_id: Option<SpanId>,
    service: IStr,
    name: IStr,
    kind: SpanKind,
    start_us: u64,
    end_us: u64,
    status: StatusCode,
    pod: IStr,
    node: IStr,
}

impl SpanBuilder {
    /// Set the parent span id. Omitting this marks the span as a root.
    pub fn parent(mut self, parent: SpanId) -> Self {
        self.parent_span_id = Some(parent);
        self
    }

    /// Set the span kind.
    pub fn kind(mut self, kind: SpanKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set start and end timestamps (microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn time(mut self, start_us: u64, end_us: u64) -> Self {
        assert!(
            end_us >= start_us,
            "span end ({end_us}) must not precede start ({start_us})"
        );
        self.start_us = start_us;
        self.end_us = end_us;
        self
    }

    /// Set the status code.
    pub fn status(mut self, status: StatusCode) -> Self {
        self.status = status;
        self
    }

    /// Set the pod and node the span's service instance ran on
    /// (interned immediately, like the identity fields).
    pub fn placement(mut self, pod: impl AsRef<str>, node: impl AsRef<str>) -> Self {
        self.pod = IStr::intern(pod.as_ref());
        self.node = IStr::intern(node.as_ref());
        self
    }

    /// Finish building the span. Every identifier was interned when it
    /// was set, so this is a plain move: zero allocations.
    pub fn build(self) -> Span {
        Span {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span_id: self.parent_span_id,
            service: self.service,
            name: self.name,
            kind: self.kind,
            start_us: self.start_us,
            end_us: self.end_us,
            status: self.status,
            pod: self.pod,
            node: self.node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_span() {
        let s = Span::builder(7, 9, "cart", "POST /cart")
            .parent(3)
            .kind(SpanKind::Client)
            .time(10, 40)
            .status(StatusCode::Error)
            .placement("cart-0", "node-1")
            .build();
        assert_eq!(s.trace_id, 7);
        assert_eq!(s.span_id, 9);
        assert_eq!(s.parent_span_id, Some(3));
        assert_eq!(s.duration_us(), 30);
        assert!(s.is_error());
        assert_eq!(s.pod, "cart-0");
        assert_eq!(s.node, "node-1");
    }

    #[test]
    fn default_span_is_root_server_ok() {
        let s = Span::builder(1, 1, "svc", "op").build();
        assert_eq!(s.parent_span_id, None);
        assert_eq!(s.kind, SpanKind::Server);
        assert!(!s.is_error());
        assert_eq!(s.duration_us(), 0);
    }

    #[test]
    #[should_panic(expected = "must not precede")]
    fn time_rejects_inverted_interval() {
        let _ = Span::builder(1, 1, "svc", "op").time(10, 5);
    }

    #[test]
    fn kind_indices_are_consistent_with_all() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn caller_kinds() {
        assert!(SpanKind::Client.is_caller());
        assert!(SpanKind::Producer.is_caller());
        assert!(!SpanKind::Server.is_caller());
        assert!(!SpanKind::Consumer.is_caller());
        assert!(!SpanKind::Internal.is_caller());
    }

    #[test]
    fn builder_interns_identifier_symbols() {
        let a = Span::builder(1, 1, "cart", "GET /cart").build();
        let b = Span::builder(2, 9, "cart", "POST /cart").build();
        assert_eq!(a.service_sym(), b.service_sym());
        assert_ne!(a.name_sym(), b.name_sym());
        assert_eq!(a.service_sym().as_str(), "cart");
        assert_eq!(a.name_sym().as_str(), "GET /cart");
    }

    #[test]
    fn display_forms_are_lowercase() {
        assert_eq!(SpanKind::Client.to_string(), "client");
        assert_eq!(StatusCode::Error.to_string(), "error");
    }
}
