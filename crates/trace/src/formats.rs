//! Trace interchange formats.
//!
//! The paper's collectors (§4) accept OpenTelemetry, Zipkin and Jaeger
//! protocols and forward everything into the storage engine. This
//! module provides JSON import/export for simplified flavours of all
//! three, mapped onto the crate's [`Span`] model. Nested
//! resource/process envelopes are flattened to a per-span service name
//! (documented per format below).

use serde::{Deserialize, Serialize};

use crate::span::{Span, SpanId, SpanKind, StatusCode, TraceId};

/// Errors raised while importing foreign span records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSpanError {
    /// The JSON could not be parsed.
    Json(String),
    /// An id field was not valid hexadecimal.
    BadId(String),
    /// An id field had an odd number of hex digits. Ids are byte
    /// strings; an odd digit count means a mangled record, so it is
    /// rejected rather than silently truncated.
    OddLengthId(String),
    /// A span ended before it started.
    NegativeDuration {
        /// Offending span id (hex).
        span: String,
    },
}

impl std::fmt::Display for ParseSpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseSpanError::Json(e) => write!(f, "invalid JSON: {e}"),
            ParseSpanError::BadId(s) => write!(f, "invalid hex id {s:?}"),
            ParseSpanError::OddLengthId(s) => {
                write!(f, "hex id {s:?} has an odd number of digits")
            }
            ParseSpanError::NegativeDuration { span } => {
                write!(f, "span {span} ends before it starts")
            }
        }
    }
}

impl std::error::Error for ParseSpanError {}

fn parse_hex_id(s: &str) -> Result<u64, ParseSpanError> {
    if !s.len().is_multiple_of(2) {
        return Err(ParseSpanError::OddLengthId(s.to_string()));
    }
    // Ids may be up to 128-bit; keep the low 64 bits, as many backends do.
    let tail = if s.len() > 16 { &s[s.len() - 16..] } else { s };
    u64::from_str_radix(tail, 16).map_err(|_| ParseSpanError::BadId(s.to_string()))
}

/// Append the 16-digit zero-padded lowercase hex form of `v` to `out`
/// without any intermediate allocation (unlike `format!("{v:016x}")`,
/// which builds formatter machinery and a fresh `String` per id).
pub fn write_hex16(v: u64, out: &mut String) {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 16];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = DIGITS[((v >> (60 - 4 * i)) & 0xf) as usize];
    }
    out.push_str(std::str::from_utf8(&buf).expect("hex digits are ASCII"));
}

fn hex16(v: u64) -> String {
    let mut s = String::with_capacity(16);
    write_hex16(v, &mut s);
    s
}

// ---------------------------------------------------------------------------
// OpenTelemetry (OTLP-JSON flavour)
// ---------------------------------------------------------------------------

/// One span in the (flattened) OTLP JSON flavour: the
/// `resource.attributes["service.name"]` is hoisted to `serviceName`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct OtelSpan {
    /// Trace id, hex.
    pub trace_id: String,
    /// Span id, hex.
    pub span_id: String,
    /// Parent span id, hex; empty or absent for roots.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent_span_id: Option<String>,
    /// Operation name.
    pub name: String,
    /// `SPAN_KIND_*` constant.
    pub kind: String,
    /// Start time, Unix nanoseconds.
    pub start_time_unix_nano: u64,
    /// End time, Unix nanoseconds.
    pub end_time_unix_nano: u64,
    /// `STATUS_CODE_*` constant.
    #[serde(default)]
    pub status_code: Option<String>,
    /// Hoisted `service.name` resource attribute.
    pub service_name: String,
    /// Hoisted `k8s.pod.name` attribute.
    #[serde(default)]
    pub pod_name: Option<String>,
    /// Hoisted `k8s.node.name` attribute.
    #[serde(default)]
    pub node_name: Option<String>,
}

fn otel_kind(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Client => "SPAN_KIND_CLIENT",
        SpanKind::Server => "SPAN_KIND_SERVER",
        SpanKind::Producer => "SPAN_KIND_PRODUCER",
        SpanKind::Consumer => "SPAN_KIND_CONSUMER",
        SpanKind::Internal => "SPAN_KIND_INTERNAL",
    }
}

fn parse_otel_kind(s: &str) -> SpanKind {
    match s {
        "SPAN_KIND_CLIENT" => SpanKind::Client,
        "SPAN_KIND_PRODUCER" => SpanKind::Producer,
        "SPAN_KIND_CONSUMER" => SpanKind::Consumer,
        "SPAN_KIND_INTERNAL" => SpanKind::Internal,
        _ => SpanKind::Server,
    }
}

/// Export spans in the OTLP JSON flavour.
pub fn to_otel(spans: &[Span]) -> Vec<OtelSpan> {
    spans
        .iter()
        .map(|s| OtelSpan {
            trace_id: hex16(s.trace_id),
            span_id: hex16(s.span_id),
            parent_span_id: s.parent_span_id.map(hex16),
            name: s.name.to_string(),
            kind: otel_kind(s.kind).to_string(),
            start_time_unix_nano: s.start_us * 1_000,
            end_time_unix_nano: s.end_us * 1_000,
            status_code: Some(
                match s.status {
                    StatusCode::Unset => "STATUS_CODE_UNSET",
                    StatusCode::Ok => "STATUS_CODE_OK",
                    StatusCode::Error => "STATUS_CODE_ERROR",
                }
                .to_string(),
            ),
            service_name: s.service.to_string(),
            pod_name: (!s.pod.is_empty()).then(|| s.pod.to_string()),
            node_name: (!s.node.is_empty()).then(|| s.node.to_string()),
        })
        .collect()
}

/// Import OTLP-flavour spans.
///
/// # Errors
///
/// Returns [`ParseSpanError`] for malformed ids or inverted intervals.
pub fn from_otel(records: &[OtelSpan]) -> Result<Vec<Span>, ParseSpanError> {
    records
        .iter()
        .map(|r| {
            let trace_id: TraceId = parse_hex_id(&r.trace_id)?;
            let span_id: SpanId = parse_hex_id(&r.span_id)?;
            let parent = match &r.parent_span_id {
                Some(p) if !p.is_empty() => Some(parse_hex_id(p)?),
                _ => None,
            };
            if r.end_time_unix_nano < r.start_time_unix_nano {
                return Err(ParseSpanError::NegativeDuration {
                    span: r.span_id.clone(),
                });
            }
            let status = match r.status_code.as_deref() {
                Some("STATUS_CODE_ERROR") => StatusCode::Error,
                Some("STATUS_CODE_OK") => StatusCode::Ok,
                _ => StatusCode::Unset,
            };
            let mut b = Span::builder(trace_id, span_id, r.service_name.clone(), r.name.clone())
                .kind(parse_otel_kind(&r.kind))
                .time(
                    r.start_time_unix_nano / 1_000,
                    r.end_time_unix_nano / 1_000,
                )
                .status(status)
                .placement(
                    r.pod_name.clone().unwrap_or_default(),
                    r.node_name.clone().unwrap_or_default(),
                );
            if let Some(p) = parent {
                b = b.parent(p);
            }
            Ok(b.build())
        })
        .collect()
}

/// Parse an OTLP-flavour JSON array into spans.
///
/// This is the ingest hot path, so it does not round-trip through an
/// intermediate record/value tree: a hand-rolled scanner walks the
/// JSON bytes once, decoding each field into reusable scratch buffers
/// and building [`Span`]s directly. The only per-span heap traffic is
/// the owned strings of the resulting `Span` itself.
///
/// # Errors
///
/// Returns [`ParseSpanError::Json`] for malformed JSON, otherwise as
/// [`from_otel`].
pub fn from_otel_json(json: &str) -> Result<Vec<Span>, ParseSpanError> {
    let mut scanner = OtlpScanner::new(json);
    scanner.parse_spans()
}

/// Single-pass OTLP-JSON scanner (see [`from_otel_json`]).
///
/// Field text is decoded into scratch buffers that are reused across
/// spans, so steady-state parsing allocates nothing beyond the owned
/// strings of the resulting [`Span`]s.
struct OtlpScanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Scratch for object keys.
    key: String,
    /// Scratch for transient field text (ids, kind, status).
    tmp: String,
    /// Raw span-id text, kept for error reporting.
    span_id_text: String,
    service: String,
    name: String,
    pod: String,
    node: String,
}

impl<'a> OtlpScanner<'a> {
    fn new(json: &'a str) -> Self {
        OtlpScanner {
            bytes: json.as_bytes(),
            pos: 0,
            key: String::new(),
            tmp: String::new(),
            span_id_text: String::new(),
            service: String::new(),
            name: String::new(),
            pod: String::new(),
            node: String::new(),
        }
    }

    fn err(&self, msg: &str) -> ParseSpanError {
        ParseSpanError::Json(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, want: u8) -> Result<(), ParseSpanError> {
        self.skip_ws();
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", want as char)))
        }
    }

    /// Decode a JSON string value into `buf` (cleared first). The
    /// escape-free fast path is a single scan plus one `memcpy` into
    /// the warm buffer.
    fn string_fill(
        bytes: &[u8],
        pos: &mut usize,
        buf: &mut String,
    ) -> Result<(), ParseSpanError> {
        buf.clear();
        while let Some(&b) = bytes.get(*pos) {
            if b.is_ascii_whitespace() {
                *pos += 1;
            } else {
                break;
            }
        }
        let bad = |pos: usize| ParseSpanError::Json(format!("malformed string at byte {pos}"));
        if bytes.get(*pos) != Some(&b'"') {
            return Err(bad(*pos));
        }
        *pos += 1;
        loop {
            let seg = *pos;
            while let Some(&b) = bytes.get(*pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                *pos += 1;
            }
            buf.push_str(std::str::from_utf8(&bytes[seg..*pos]).map_err(|_| bad(seg))?);
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    *pos += 1;
                    let esc = *bytes.get(*pos).ok_or_else(|| bad(*pos))?;
                    *pos += 1;
                    match esc {
                        b'"' => buf.push('"'),
                        b'\\' => buf.push('\\'),
                        b'/' => buf.push('/'),
                        b'b' => buf.push('\u{8}'),
                        b'f' => buf.push('\u{c}'),
                        b'n' => buf.push('\n'),
                        b'r' => buf.push('\r'),
                        b't' => buf.push('\t'),
                        b'u' => {
                            let hi = Self::hex4(bytes, pos).ok_or_else(|| bad(*pos))?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if bytes.get(*pos) != Some(&b'\\')
                                    || bytes.get(*pos + 1) != Some(&b'u')
                                {
                                    return Err(bad(*pos));
                                }
                                *pos += 2;
                                let lo = Self::hex4(bytes, pos).ok_or_else(|| bad(*pos))?;
                                let code = 0x10000
                                    + ((hi - 0xd800) << 10)
                                    + lo.checked_sub(0xdc00).ok_or_else(|| bad(*pos))?;
                                char::from_u32(code).ok_or_else(|| bad(*pos))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| bad(*pos))?
                            };
                            buf.push(c);
                        }
                        _ => return Err(bad(*pos)),
                    }
                }
                _ => return Err(bad(*pos)),
            }
        }
    }

    fn hex4(bytes: &[u8], pos: &mut usize) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = *bytes.get(*pos)?;
            *pos += 1;
            v = v * 16 + (b as char).to_digit(16)?;
        }
        Some(v)
    }

    /// Parse an unsigned 64-bit integer, bare or quoted (the OTLP
    /// proto3 JSON mapping renders 64-bit ints as strings).
    fn parse_u64(&mut self) -> Result<u64, ParseSpanError> {
        self.skip_ws();
        let quoted = self.peek() == Some(b'"');
        if quoted {
            self.pos += 1;
        }
        let start = self.pos;
        let mut v: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| self.err("integer overflow"))?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected integer"));
        }
        if quoted {
            if self.peek() != Some(b'"') {
                return Err(self.err("unterminated quoted integer"));
            }
            self.pos += 1;
        }
        Ok(v)
    }

    /// Skip any JSON value (used for unknown fields).
    fn skip_value(&mut self) -> Result<(), ParseSpanError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                let mut sink = std::mem::take(&mut self.tmp);
                let r = Self::string_fill(self.bytes, &mut self.pos, &mut sink);
                self.tmp = sink;
                r
            }
            Some(b'{') | Some(b'[') => {
                let mut depth = 0usize;
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b'{') | Some(b'[') => {
                            depth += 1;
                            self.pos += 1;
                        }
                        Some(b'}') | Some(b']') => {
                            depth -= 1;
                            self.pos += 1;
                            if depth == 0 {
                                return Ok(());
                            }
                        }
                        Some(b'"') => {
                            let mut sink = std::mem::take(&mut self.tmp);
                            let r = Self::string_fill(self.bytes, &mut self.pos, &mut sink);
                            self.tmp = sink;
                            r?;
                        }
                        Some(_) => self.pos += 1,
                        None => return Err(self.err("unterminated value")),
                    }
                }
            }
            Some(_) => {
                while let Some(b) = self.peek() {
                    if b == b',' || b == b'}' || b == b']' || b.is_ascii_whitespace() {
                        break;
                    }
                    self.pos += 1;
                }
                Ok(())
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// `true` when the next value is `null` (which is then consumed).
    fn take_null(&mut self) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    fn parse_spans(&mut self) -> Result<Vec<Span>, ParseSpanError> {
        let mut out = Vec::new();
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
        } else {
            loop {
                let span = self.parse_record()?;
                out.push(span);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data after span array"));
        }
        Ok(out)
    }

    /// Decode a string value into the scratch field extracted with
    /// `std::mem::take` from `slot`, putting it back afterwards.
    fn field_fill(
        &mut self,
        slot: impl Fn(&mut Self) -> &mut String,
    ) -> Result<(), ParseSpanError> {
        let mut buf = std::mem::take(slot(self));
        let r = Self::string_fill(self.bytes, &mut self.pos, &mut buf);
        *slot(self) = buf;
        r
    }

    fn parse_record(&mut self) -> Result<Span, ParseSpanError> {
        self.expect(b'{')?;
        let mut trace_id: Option<TraceId> = None;
        let mut span_id: Option<SpanId> = None;
        let mut parent: Option<SpanId> = None;
        let mut kind: Option<SpanKind> = None;
        let mut status = StatusCode::Unset;
        let mut start_nano: Option<u64> = None;
        let mut end_nano: Option<u64> = None;
        let (mut has_name, mut has_service) = (false, false);
        self.service.clear();
        self.name.clear();
        self.pod.clear();
        self.node.clear();
        self.span_id_text.clear();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                Some(b',') => {
                    self.pos += 1;
                    continue;
                }
                _ => {}
            }
            self.field_fill(|s| &mut s.key)?;
            self.expect(b':')?;
            // Dispatch on the key text. `self.key` is not touched by
            // any of the value parsers.
            let key = std::mem::take(&mut self.key);
            let result = match key.as_str() {
                "traceId" => self.field_fill(|s| &mut s.tmp).and_then(|()| {
                    trace_id = Some(parse_hex_id(&self.tmp)?);
                    Ok(())
                }),
                "spanId" => self.field_fill(|s| &mut s.tmp).and_then(|()| {
                    span_id = Some(parse_hex_id(&self.tmp)?);
                    std::mem::swap(&mut self.span_id_text, &mut self.tmp);
                    Ok(())
                }),
                "parentSpanId" => {
                    if self.take_null() {
                        Ok(())
                    } else {
                        self.field_fill(|s| &mut s.tmp).and_then(|()| {
                            if !self.tmp.is_empty() {
                                parent = Some(parse_hex_id(&self.tmp)?);
                            }
                            Ok(())
                        })
                    }
                }
                "name" => {
                    has_name = true;
                    self.field_fill(|s| &mut s.name)
                }
                "serviceName" => {
                    has_service = true;
                    self.field_fill(|s| &mut s.service)
                }
                "podName" => {
                    if self.take_null() {
                        Ok(())
                    } else {
                        self.field_fill(|s| &mut s.pod)
                    }
                }
                "nodeName" => {
                    if self.take_null() {
                        Ok(())
                    } else {
                        self.field_fill(|s| &mut s.node)
                    }
                }
                "kind" => self.field_fill(|s| &mut s.tmp).map(|()| {
                    kind = Some(parse_otel_kind(&self.tmp));
                }),
                "statusCode" => {
                    if self.take_null() {
                        Ok(())
                    } else {
                        self.field_fill(|s| &mut s.tmp).map(|()| {
                            status = match self.tmp.as_str() {
                                "STATUS_CODE_ERROR" => StatusCode::Error,
                                "STATUS_CODE_OK" => StatusCode::Ok,
                                _ => StatusCode::Unset,
                            };
                        })
                    }
                }
                "startTimeUnixNano" => self.parse_u64().map(|v| start_nano = Some(v)),
                "endTimeUnixNano" => self.parse_u64().map(|v| end_nano = Some(v)),
                _ => self.skip_value(),
            };
            self.key = key;
            result?;
        }
        let missing = |f: &str| ParseSpanError::Json(format!("missing field `{f}`"));
        let trace_id = trace_id.ok_or_else(|| missing("traceId"))?;
        let span_id = span_id.ok_or_else(|| missing("spanId"))?;
        let kind = kind.ok_or_else(|| missing("kind"))?;
        let start_nano = start_nano.ok_or_else(|| missing("startTimeUnixNano"))?;
        let end_nano = end_nano.ok_or_else(|| missing("endTimeUnixNano"))?;
        if !has_name {
            return Err(missing("name"));
        }
        if !has_service {
            return Err(missing("serviceName"));
        }
        if end_nano < start_nano {
            return Err(ParseSpanError::NegativeDuration {
                span: self.span_id_text.clone(),
            });
        }
        let mut b = Span::builder(trace_id, span_id, &*self.service, &*self.name)
            .kind(kind)
            .time(start_nano / 1_000, end_nano / 1_000)
            .status(status)
            .placement(&*self.pod, &*self.node);
        if let Some(p) = parent {
            b = b.parent(p);
        }
        Ok(b.build())
    }
}

/// Serialise spans as an OTLP-flavour JSON array.
pub fn to_otel_json(spans: &[Span]) -> String {
    serde_json::to_string_pretty(&to_otel(spans)).expect("otel records serialise")
}

// ---------------------------------------------------------------------------
// Zipkin v2
// ---------------------------------------------------------------------------

/// Zipkin v2 endpoint.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
#[serde(rename_all = "camelCase")]
pub struct ZipkinEndpoint {
    /// Service name.
    #[serde(default)]
    pub service_name: String,
}

/// One Zipkin v2 span.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct ZipkinSpan {
    /// Trace id, hex.
    pub trace_id: String,
    /// Span id, hex.
    pub id: String,
    /// Parent span id, hex.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent_id: Option<String>,
    /// Operation name.
    pub name: String,
    /// `CLIENT` / `SERVER` / `PRODUCER` / `CONSUMER`.
    #[serde(default)]
    pub kind: Option<String>,
    /// Start, Unix microseconds.
    pub timestamp: u64,
    /// Duration, microseconds.
    pub duration: u64,
    /// Local endpoint (service).
    #[serde(default)]
    pub local_endpoint: ZipkinEndpoint,
    /// Tags; `error` marks failures, `k8s.pod`/`k8s.node` carry
    /// placement.
    #[serde(default)]
    pub tags: std::collections::BTreeMap<String, String>,
}

/// Export spans in Zipkin v2 format.
pub fn to_zipkin(spans: &[Span]) -> Vec<ZipkinSpan> {
    spans
        .iter()
        .map(|s| {
            let mut tags = std::collections::BTreeMap::new();
            if s.is_error() {
                tags.insert("error".to_string(), "true".to_string());
            }
            if !s.pod.is_empty() {
                tags.insert("k8s.pod".to_string(), s.pod.to_string());
            }
            if !s.node.is_empty() {
                tags.insert("k8s.node".to_string(), s.node.to_string());
            }
            ZipkinSpan {
                trace_id: hex16(s.trace_id),
                id: hex16(s.span_id),
                parent_id: s.parent_span_id.map(hex16),
                name: s.name.to_string(),
                kind: Some(
                    match s.kind {
                        SpanKind::Client => "CLIENT",
                        SpanKind::Server => "SERVER",
                        SpanKind::Producer => "PRODUCER",
                        SpanKind::Consumer => "CONSUMER",
                        SpanKind::Internal => "INTERNAL",
                    }
                    .to_string(),
                ),
                timestamp: s.start_us,
                duration: s.duration_us(),
                local_endpoint: ZipkinEndpoint {
                    service_name: s.service.to_string(),
                },
                tags,
            }
        })
        .collect()
}

/// Import Zipkin v2 spans.
///
/// # Errors
///
/// Returns [`ParseSpanError`] for malformed ids.
pub fn from_zipkin(records: &[ZipkinSpan]) -> Result<Vec<Span>, ParseSpanError> {
    records
        .iter()
        .map(|r| {
            let trace_id = parse_hex_id(&r.trace_id)?;
            let span_id = parse_hex_id(&r.id)?;
            let kind = match r.kind.as_deref() {
                Some("CLIENT") => SpanKind::Client,
                Some("PRODUCER") => SpanKind::Producer,
                Some("CONSUMER") => SpanKind::Consumer,
                Some("INTERNAL") => SpanKind::Internal,
                _ => SpanKind::Server,
            };
            let status = if r.tags.contains_key("error") {
                StatusCode::Error
            } else {
                StatusCode::Ok
            };
            let mut b = Span::builder(
                trace_id,
                span_id,
                r.local_endpoint.service_name.clone(),
                r.name.clone(),
            )
            .kind(kind)
            .time(r.timestamp, r.timestamp + r.duration)
            .status(status)
            .placement(
                r.tags.get("k8s.pod").cloned().unwrap_or_default(),
                r.tags.get("k8s.node").cloned().unwrap_or_default(),
            );
            if let Some(p) = &r.parent_id {
                b = b.parent(parse_hex_id(p)?);
            }
            Ok(b.build())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Jaeger (jaeger-ui JSON flavour)
// ---------------------------------------------------------------------------

/// Jaeger span reference.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct JaegerRef {
    /// Reference type (`CHILD_OF`).
    pub ref_type: String,
    /// Referenced span id, hex.
    #[serde(rename = "spanID")]
    pub span_id: String,
}

/// Jaeger key/value tag (string and bool values only).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JaegerTag {
    /// Tag key.
    pub key: String,
    /// Tag value rendered as a string.
    pub value: String,
}

/// One Jaeger span (jaeger-ui JSON flavour; `process` flattened to a
/// service name).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct JaegerSpan {
    /// Trace id, hex.
    #[serde(rename = "traceID")]
    pub trace_id: String,
    /// Span id, hex.
    #[serde(rename = "spanID")]
    pub span_id: String,
    /// Operation name.
    pub operation_name: String,
    /// Parent references.
    #[serde(default)]
    pub references: Vec<JaegerRef>,
    /// Start, Unix microseconds.
    pub start_time: u64,
    /// Duration, microseconds.
    pub duration: u64,
    /// Service name (flattened process).
    pub service_name: String,
    /// Tags (`span.kind`, `error`, `k8s.pod`, `k8s.node`).
    #[serde(default)]
    pub tags: Vec<JaegerTag>,
}

/// Export spans in the Jaeger flavour.
pub fn to_jaeger(spans: &[Span]) -> Vec<JaegerSpan> {
    spans
        .iter()
        .map(|s| {
            let mut tags = vec![JaegerTag {
                key: "span.kind".into(),
                value: s.kind.to_string(),
            }];
            if s.is_error() {
                tags.push(JaegerTag {
                    key: "error".into(),
                    value: "true".into(),
                });
            }
            if !s.pod.is_empty() {
                tags.push(JaegerTag {
                    key: "k8s.pod".into(),
                    value: s.pod.to_string(),
                });
            }
            if !s.node.is_empty() {
                tags.push(JaegerTag {
                    key: "k8s.node".into(),
                    value: s.node.to_string(),
                });
            }
            JaegerSpan {
                trace_id: hex16(s.trace_id),
                span_id: hex16(s.span_id),
                operation_name: s.name.to_string(),
                references: s
                    .parent_span_id
                    .map(|p| {
                        vec![JaegerRef {
                            ref_type: "CHILD_OF".into(),
                            span_id: hex16(p),
                        }]
                    })
                    .unwrap_or_default(),
                start_time: s.start_us,
                duration: s.duration_us(),
                service_name: s.service.to_string(),
                tags,
            }
        })
        .collect()
}

/// Import Jaeger-flavour spans.
///
/// # Errors
///
/// Returns [`ParseSpanError`] for malformed ids.
pub fn from_jaeger(records: &[JaegerSpan]) -> Result<Vec<Span>, ParseSpanError> {
    records
        .iter()
        .map(|r| {
            let trace_id = parse_hex_id(&r.trace_id)?;
            let span_id = parse_hex_id(&r.span_id)?;
            let tag = |k: &str| r.tags.iter().find(|t| t.key == k).map(|t| t.value.as_str());
            let kind = match tag("span.kind") {
                Some("client") => SpanKind::Client,
                Some("producer") => SpanKind::Producer,
                Some("consumer") => SpanKind::Consumer,
                Some("internal") => SpanKind::Internal,
                _ => SpanKind::Server,
            };
            let status = if tag("error") == Some("true") {
                StatusCode::Error
            } else {
                StatusCode::Ok
            };
            let mut b = Span::builder(trace_id, span_id, r.service_name.clone(), r.operation_name.clone())
                .kind(kind)
                .time(r.start_time, r.start_time + r.duration)
                .status(status)
                .placement(
                    tag("k8s.pod").unwrap_or_default(),
                    tag("k8s.node").unwrap_or_default(),
                );
            if let Some(parent) = r
                .references
                .iter()
                .find(|rf| rf.ref_type == "CHILD_OF")
            {
                b = b.parent(parse_hex_id(&parent.span_id)?);
            }
            Ok(b.build())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn sample() -> Vec<Span> {
        vec![
            Span::builder(0xabc, 1, "frontend", "GET /")
                .kind(SpanKind::Server)
                .time(1_000, 9_000)
                .status(StatusCode::Ok)
                .placement("frontend-0", "node-2")
                .build(),
            Span::builder(0xabc, 2, "db", "query")
                .parent(1)
                .kind(SpanKind::Client)
                .time(2_000, 7_000)
                .status(StatusCode::Error)
                .build(),
        ]
    }

    #[test]
    fn otel_roundtrip() {
        let spans = sample();
        let back = from_otel(&to_otel(&spans)).unwrap();
        assert_eq!(back, spans);
        // JSON path too.
        let back2 = from_otel_json(&to_otel_json(&spans)).unwrap();
        assert_eq!(back2, spans);
    }

    #[test]
    fn zipkin_roundtrip() {
        let spans = sample();
        let back = from_zipkin(&to_zipkin(&spans)).unwrap();
        // Zipkin has no Unset status; Ok survives, Error survives.
        assert_eq!(back, spans);
    }

    #[test]
    fn jaeger_roundtrip() {
        let spans = sample();
        let back = from_jaeger(&to_jaeger(&spans)).unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn imported_spans_assemble() {
        let spans = from_otel(&to_otel(&sample())).unwrap();
        let trace = Trace::assemble(spans).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.max_depth(), 1);
    }

    #[test]
    fn bad_hex_rejected() {
        let mut rec = to_otel(&sample());
        rec[0].trace_id = "not-hexy".into(); // even length, non-hex digits
        assert!(matches!(
            from_otel(&rec),
            Err(ParseSpanError::BadId(_))
        ));
    }

    #[test]
    fn odd_length_id_rejected_not_truncated() {
        let mut rec = to_otel(&sample());
        rec[0].trace_id = "abc".into(); // would parse as 0xabc if truncated
        assert!(matches!(
            from_otel(&rec),
            Err(ParseSpanError::OddLengthId(_))
        ));
        let mut rec = to_otel(&sample());
        rec[1].span_id = "0123456789abcdef0".into(); // 17 digits
        assert!(matches!(
            from_otel(&rec),
            Err(ParseSpanError::OddLengthId(_))
        ));
    }

    #[test]
    fn write_hex16_matches_format() {
        for v in [0u64, 1, 0xabc, u64::MAX, 0x0123_4567_89ab_cdef] {
            let mut s = String::new();
            write_hex16(v, &mut s);
            assert_eq!(s, format!("{v:016x}"));
        }
    }

    #[test]
    fn scanner_matches_typed_import() {
        // The hand-rolled scanner and the serde/record path must agree.
        let spans = sample();
        let json = to_otel_json(&spans);
        let typed: Vec<OtelSpan> = serde_json::from_str(&json).unwrap();
        assert_eq!(from_otel_json(&json).unwrap(), from_otel(&typed).unwrap());
    }

    #[test]
    fn scanner_handles_escapes_unknown_fields_and_quoted_ints() {
        let json = r#"[
          {
            "traceId": "0abc",
            "spanId": "01",
            "name": "GET \"\u00e9tat\" \n",
            "kind": "SPAN_KIND_SERVER",
            "startTimeUnixNano": "1000000",
            "endTimeUnixNano": 9000000,
            "statusCode": null,
            "serviceName": "front\\end",
            "futureField": {"nested": ["x", 1, true, null]},
            "another": -3.5
          },
          {
            "traceId": "0abc",
            "spanId": "02",
            "parentSpanId": "01",
            "name": "q",
            "kind": "SPAN_KIND_CLIENT",
            "startTimeUnixNano": 2000000,
            "endTimeUnixNano": 7000000,
            "serviceName": "db",
            "podName": "db-0",
            "nodeName": null
          }
        ]"#;
        let spans = from_otel_json(json).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "GET \"\u{e9}tat\" \n");
        assert_eq!(spans[0].service, "front\\end");
        assert_eq!(spans[0].start_us, 1_000);
        assert_eq!(spans[0].status, StatusCode::Unset);
        assert_eq!(spans[1].parent_span_id, Some(1));
        assert_eq!(spans[1].pod, "db-0");
        assert_eq!(spans[1].node, "");
    }

    #[test]
    fn scanner_reports_missing_fields_and_garbage() {
        assert!(matches!(
            from_otel_json(r#"[{"traceId": "01"}]"#),
            Err(ParseSpanError::Json(_))
        ));
        assert!(matches!(
            from_otel_json("[1, 2]"),
            Err(ParseSpanError::Json(_))
        ));
        assert!(matches!(
            from_otel_json("[] trailing"),
            Err(ParseSpanError::Json(_))
        ));
        assert!(from_otel_json("  [ ]  ").unwrap().is_empty());
    }

    #[test]
    fn scanner_negative_duration_names_the_span() {
        let json = r#"[{"traceId": "0a", "spanId": "beef", "name": "x",
            "kind": "SPAN_KIND_SERVER", "startTimeUnixNano": 2000,
            "endTimeUnixNano": 1000, "serviceName": "s"}]"#;
        match from_otel_json(json) {
            Err(ParseSpanError::NegativeDuration { span }) => assert_eq!(span, "beef"),
            other => panic!("expected NegativeDuration, got {other:?}"),
        }
    }

    #[test]
    fn long_ids_truncate_to_low_64_bits() {
        assert_eq!(
            parse_hex_id("0123456789abcdef0000000000000042").unwrap(),
            0x42
        );
    }

    #[test]
    fn inverted_interval_rejected() {
        let mut rec = to_otel(&sample());
        rec[0].end_time_unix_nano = rec[0].start_time_unix_nano - 1;
        assert!(matches!(
            from_otel(&rec),
            Err(ParseSpanError::NegativeDuration { .. })
        ));
    }

    #[test]
    fn missing_parent_means_root() {
        let rec = to_otel(&sample());
        let spans = from_otel(&rec).unwrap();
        assert_eq!(spans[0].parent_span_id, None);
        assert_eq!(spans[1].parent_span_id, Some(1));
    }

    #[test]
    fn otel_json_parse_error_is_reported() {
        assert!(matches!(
            from_otel_json("{not json"),
            Err(ParseSpanError::Json(_))
        ));
    }
}
