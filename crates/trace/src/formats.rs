//! Trace interchange formats.
//!
//! The paper's collectors (§4) accept OpenTelemetry, Zipkin and Jaeger
//! protocols and forward everything into the storage engine. This
//! module provides JSON import/export for simplified flavours of all
//! three, mapped onto the crate's [`Span`] model. Nested
//! resource/process envelopes are flattened to a per-span service name
//! (documented per format below).

use serde::{Deserialize, Serialize};

use crate::span::{Span, SpanId, SpanKind, StatusCode, TraceId};

/// Errors raised while importing foreign span records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSpanError {
    /// The JSON could not be parsed.
    Json(String),
    /// An id field was not valid hexadecimal.
    BadId(String),
    /// A span ended before it started.
    NegativeDuration {
        /// Offending span id (hex).
        span: String,
    },
}

impl std::fmt::Display for ParseSpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseSpanError::Json(e) => write!(f, "invalid JSON: {e}"),
            ParseSpanError::BadId(s) => write!(f, "invalid hex id {s:?}"),
            ParseSpanError::NegativeDuration { span } => {
                write!(f, "span {span} ends before it starts")
            }
        }
    }
}

impl std::error::Error for ParseSpanError {}

fn parse_hex_id(s: &str) -> Result<u64, ParseSpanError> {
    // Ids may be up to 128-bit; keep the low 64 bits, as many backends do.
    let tail = if s.len() > 16 { &s[s.len() - 16..] } else { s };
    u64::from_str_radix(tail, 16).map_err(|_| ParseSpanError::BadId(s.to_string()))
}

fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

// ---------------------------------------------------------------------------
// OpenTelemetry (OTLP-JSON flavour)
// ---------------------------------------------------------------------------

/// One span in the (flattened) OTLP JSON flavour: the
/// `resource.attributes["service.name"]` is hoisted to `serviceName`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct OtelSpan {
    /// Trace id, hex.
    pub trace_id: String,
    /// Span id, hex.
    pub span_id: String,
    /// Parent span id, hex; empty or absent for roots.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent_span_id: Option<String>,
    /// Operation name.
    pub name: String,
    /// `SPAN_KIND_*` constant.
    pub kind: String,
    /// Start time, Unix nanoseconds.
    pub start_time_unix_nano: u64,
    /// End time, Unix nanoseconds.
    pub end_time_unix_nano: u64,
    /// `STATUS_CODE_*` constant.
    #[serde(default)]
    pub status_code: Option<String>,
    /// Hoisted `service.name` resource attribute.
    pub service_name: String,
    /// Hoisted `k8s.pod.name` attribute.
    #[serde(default)]
    pub pod_name: Option<String>,
    /// Hoisted `k8s.node.name` attribute.
    #[serde(default)]
    pub node_name: Option<String>,
}

fn otel_kind(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Client => "SPAN_KIND_CLIENT",
        SpanKind::Server => "SPAN_KIND_SERVER",
        SpanKind::Producer => "SPAN_KIND_PRODUCER",
        SpanKind::Consumer => "SPAN_KIND_CONSUMER",
        SpanKind::Internal => "SPAN_KIND_INTERNAL",
    }
}

fn parse_otel_kind(s: &str) -> SpanKind {
    match s {
        "SPAN_KIND_CLIENT" => SpanKind::Client,
        "SPAN_KIND_PRODUCER" => SpanKind::Producer,
        "SPAN_KIND_CONSUMER" => SpanKind::Consumer,
        "SPAN_KIND_INTERNAL" => SpanKind::Internal,
        _ => SpanKind::Server,
    }
}

/// Export spans in the OTLP JSON flavour.
pub fn to_otel(spans: &[Span]) -> Vec<OtelSpan> {
    spans
        .iter()
        .map(|s| OtelSpan {
            trace_id: hex16(s.trace_id),
            span_id: hex16(s.span_id),
            parent_span_id: s.parent_span_id.map(hex16),
            name: s.name.clone(),
            kind: otel_kind(s.kind).to_string(),
            start_time_unix_nano: s.start_us * 1_000,
            end_time_unix_nano: s.end_us * 1_000,
            status_code: Some(
                match s.status {
                    StatusCode::Unset => "STATUS_CODE_UNSET",
                    StatusCode::Ok => "STATUS_CODE_OK",
                    StatusCode::Error => "STATUS_CODE_ERROR",
                }
                .to_string(),
            ),
            service_name: s.service.clone(),
            pod_name: (!s.pod.is_empty()).then(|| s.pod.clone()),
            node_name: (!s.node.is_empty()).then(|| s.node.clone()),
        })
        .collect()
}

/// Import OTLP-flavour spans.
///
/// # Errors
///
/// Returns [`ParseSpanError`] for malformed ids or inverted intervals.
pub fn from_otel(records: &[OtelSpan]) -> Result<Vec<Span>, ParseSpanError> {
    records
        .iter()
        .map(|r| {
            let trace_id: TraceId = parse_hex_id(&r.trace_id)?;
            let span_id: SpanId = parse_hex_id(&r.span_id)?;
            let parent = match &r.parent_span_id {
                Some(p) if !p.is_empty() => Some(parse_hex_id(p)?),
                _ => None,
            };
            if r.end_time_unix_nano < r.start_time_unix_nano {
                return Err(ParseSpanError::NegativeDuration {
                    span: r.span_id.clone(),
                });
            }
            let status = match r.status_code.as_deref() {
                Some("STATUS_CODE_ERROR") => StatusCode::Error,
                Some("STATUS_CODE_OK") => StatusCode::Ok,
                _ => StatusCode::Unset,
            };
            let mut b = Span::builder(trace_id, span_id, r.service_name.clone(), r.name.clone())
                .kind(parse_otel_kind(&r.kind))
                .time(
                    r.start_time_unix_nano / 1_000,
                    r.end_time_unix_nano / 1_000,
                )
                .status(status)
                .placement(
                    r.pod_name.clone().unwrap_or_default(),
                    r.node_name.clone().unwrap_or_default(),
                );
            if let Some(p) = parent {
                b = b.parent(p);
            }
            Ok(b.build())
        })
        .collect()
}

/// Parse an OTLP-flavour JSON array into spans.
///
/// # Errors
///
/// Returns [`ParseSpanError::Json`] for malformed JSON, otherwise as
/// [`from_otel`].
pub fn from_otel_json(json: &str) -> Result<Vec<Span>, ParseSpanError> {
    let records: Vec<OtelSpan> =
        serde_json::from_str(json).map_err(|e| ParseSpanError::Json(e.to_string()))?;
    from_otel(&records)
}

/// Serialise spans as an OTLP-flavour JSON array.
pub fn to_otel_json(spans: &[Span]) -> String {
    serde_json::to_string_pretty(&to_otel(spans)).expect("otel records serialise")
}

// ---------------------------------------------------------------------------
// Zipkin v2
// ---------------------------------------------------------------------------

/// Zipkin v2 endpoint.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
#[serde(rename_all = "camelCase")]
pub struct ZipkinEndpoint {
    /// Service name.
    #[serde(default)]
    pub service_name: String,
}

/// One Zipkin v2 span.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct ZipkinSpan {
    /// Trace id, hex.
    pub trace_id: String,
    /// Span id, hex.
    pub id: String,
    /// Parent span id, hex.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parent_id: Option<String>,
    /// Operation name.
    pub name: String,
    /// `CLIENT` / `SERVER` / `PRODUCER` / `CONSUMER`.
    #[serde(default)]
    pub kind: Option<String>,
    /// Start, Unix microseconds.
    pub timestamp: u64,
    /// Duration, microseconds.
    pub duration: u64,
    /// Local endpoint (service).
    #[serde(default)]
    pub local_endpoint: ZipkinEndpoint,
    /// Tags; `error` marks failures, `k8s.pod`/`k8s.node` carry
    /// placement.
    #[serde(default)]
    pub tags: std::collections::BTreeMap<String, String>,
}

/// Export spans in Zipkin v2 format.
pub fn to_zipkin(spans: &[Span]) -> Vec<ZipkinSpan> {
    spans
        .iter()
        .map(|s| {
            let mut tags = std::collections::BTreeMap::new();
            if s.is_error() {
                tags.insert("error".to_string(), "true".to_string());
            }
            if !s.pod.is_empty() {
                tags.insert("k8s.pod".to_string(), s.pod.clone());
            }
            if !s.node.is_empty() {
                tags.insert("k8s.node".to_string(), s.node.clone());
            }
            ZipkinSpan {
                trace_id: hex16(s.trace_id),
                id: hex16(s.span_id),
                parent_id: s.parent_span_id.map(hex16),
                name: s.name.clone(),
                kind: Some(
                    match s.kind {
                        SpanKind::Client => "CLIENT",
                        SpanKind::Server => "SERVER",
                        SpanKind::Producer => "PRODUCER",
                        SpanKind::Consumer => "CONSUMER",
                        SpanKind::Internal => "INTERNAL",
                    }
                    .to_string(),
                ),
                timestamp: s.start_us,
                duration: s.duration_us(),
                local_endpoint: ZipkinEndpoint {
                    service_name: s.service.clone(),
                },
                tags,
            }
        })
        .collect()
}

/// Import Zipkin v2 spans.
///
/// # Errors
///
/// Returns [`ParseSpanError`] for malformed ids.
pub fn from_zipkin(records: &[ZipkinSpan]) -> Result<Vec<Span>, ParseSpanError> {
    records
        .iter()
        .map(|r| {
            let trace_id = parse_hex_id(&r.trace_id)?;
            let span_id = parse_hex_id(&r.id)?;
            let kind = match r.kind.as_deref() {
                Some("CLIENT") => SpanKind::Client,
                Some("PRODUCER") => SpanKind::Producer,
                Some("CONSUMER") => SpanKind::Consumer,
                Some("INTERNAL") => SpanKind::Internal,
                _ => SpanKind::Server,
            };
            let status = if r.tags.contains_key("error") {
                StatusCode::Error
            } else {
                StatusCode::Ok
            };
            let mut b = Span::builder(
                trace_id,
                span_id,
                r.local_endpoint.service_name.clone(),
                r.name.clone(),
            )
            .kind(kind)
            .time(r.timestamp, r.timestamp + r.duration)
            .status(status)
            .placement(
                r.tags.get("k8s.pod").cloned().unwrap_or_default(),
                r.tags.get("k8s.node").cloned().unwrap_or_default(),
            );
            if let Some(p) = &r.parent_id {
                b = b.parent(parse_hex_id(p)?);
            }
            Ok(b.build())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Jaeger (jaeger-ui JSON flavour)
// ---------------------------------------------------------------------------

/// Jaeger span reference.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct JaegerRef {
    /// Reference type (`CHILD_OF`).
    pub ref_type: String,
    /// Referenced span id, hex.
    #[serde(rename = "spanID")]
    pub span_id: String,
}

/// Jaeger key/value tag (string and bool values only).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JaegerTag {
    /// Tag key.
    pub key: String,
    /// Tag value rendered as a string.
    pub value: String,
}

/// One Jaeger span (jaeger-ui JSON flavour; `process` flattened to a
/// service name).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct JaegerSpan {
    /// Trace id, hex.
    #[serde(rename = "traceID")]
    pub trace_id: String,
    /// Span id, hex.
    #[serde(rename = "spanID")]
    pub span_id: String,
    /// Operation name.
    pub operation_name: String,
    /// Parent references.
    #[serde(default)]
    pub references: Vec<JaegerRef>,
    /// Start, Unix microseconds.
    pub start_time: u64,
    /// Duration, microseconds.
    pub duration: u64,
    /// Service name (flattened process).
    pub service_name: String,
    /// Tags (`span.kind`, `error`, `k8s.pod`, `k8s.node`).
    #[serde(default)]
    pub tags: Vec<JaegerTag>,
}

/// Export spans in the Jaeger flavour.
pub fn to_jaeger(spans: &[Span]) -> Vec<JaegerSpan> {
    spans
        .iter()
        .map(|s| {
            let mut tags = vec![JaegerTag {
                key: "span.kind".into(),
                value: s.kind.to_string(),
            }];
            if s.is_error() {
                tags.push(JaegerTag {
                    key: "error".into(),
                    value: "true".into(),
                });
            }
            if !s.pod.is_empty() {
                tags.push(JaegerTag {
                    key: "k8s.pod".into(),
                    value: s.pod.clone(),
                });
            }
            if !s.node.is_empty() {
                tags.push(JaegerTag {
                    key: "k8s.node".into(),
                    value: s.node.clone(),
                });
            }
            JaegerSpan {
                trace_id: hex16(s.trace_id),
                span_id: hex16(s.span_id),
                operation_name: s.name.clone(),
                references: s
                    .parent_span_id
                    .map(|p| {
                        vec![JaegerRef {
                            ref_type: "CHILD_OF".into(),
                            span_id: hex16(p),
                        }]
                    })
                    .unwrap_or_default(),
                start_time: s.start_us,
                duration: s.duration_us(),
                service_name: s.service.clone(),
                tags,
            }
        })
        .collect()
}

/// Import Jaeger-flavour spans.
///
/// # Errors
///
/// Returns [`ParseSpanError`] for malformed ids.
pub fn from_jaeger(records: &[JaegerSpan]) -> Result<Vec<Span>, ParseSpanError> {
    records
        .iter()
        .map(|r| {
            let trace_id = parse_hex_id(&r.trace_id)?;
            let span_id = parse_hex_id(&r.span_id)?;
            let tag = |k: &str| r.tags.iter().find(|t| t.key == k).map(|t| t.value.as_str());
            let kind = match tag("span.kind") {
                Some("client") => SpanKind::Client,
                Some("producer") => SpanKind::Producer,
                Some("consumer") => SpanKind::Consumer,
                Some("internal") => SpanKind::Internal,
                _ => SpanKind::Server,
            };
            let status = if tag("error") == Some("true") {
                StatusCode::Error
            } else {
                StatusCode::Ok
            };
            let mut b = Span::builder(trace_id, span_id, r.service_name.clone(), r.operation_name.clone())
                .kind(kind)
                .time(r.start_time, r.start_time + r.duration)
                .status(status)
                .placement(
                    tag("k8s.pod").unwrap_or_default(),
                    tag("k8s.node").unwrap_or_default(),
                );
            if let Some(parent) = r
                .references
                .iter()
                .find(|rf| rf.ref_type == "CHILD_OF")
            {
                b = b.parent(parse_hex_id(&parent.span_id)?);
            }
            Ok(b.build())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn sample() -> Vec<Span> {
        vec![
            Span::builder(0xabc, 1, "frontend", "GET /")
                .kind(SpanKind::Server)
                .time(1_000, 9_000)
                .status(StatusCode::Ok)
                .placement("frontend-0", "node-2")
                .build(),
            Span::builder(0xabc, 2, "db", "query")
                .parent(1)
                .kind(SpanKind::Client)
                .time(2_000, 7_000)
                .status(StatusCode::Error)
                .build(),
        ]
    }

    #[test]
    fn otel_roundtrip() {
        let spans = sample();
        let back = from_otel(&to_otel(&spans)).unwrap();
        assert_eq!(back, spans);
        // JSON path too.
        let back2 = from_otel_json(&to_otel_json(&spans)).unwrap();
        assert_eq!(back2, spans);
    }

    #[test]
    fn zipkin_roundtrip() {
        let spans = sample();
        let back = from_zipkin(&to_zipkin(&spans)).unwrap();
        // Zipkin has no Unset status; Ok survives, Error survives.
        assert_eq!(back, spans);
    }

    #[test]
    fn jaeger_roundtrip() {
        let spans = sample();
        let back = from_jaeger(&to_jaeger(&spans)).unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn imported_spans_assemble() {
        let spans = from_otel(&to_otel(&sample())).unwrap();
        let trace = Trace::assemble(spans).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.max_depth(), 1);
    }

    #[test]
    fn bad_hex_rejected() {
        let mut rec = to_otel(&sample());
        rec[0].trace_id = "not-hex".into();
        assert!(matches!(
            from_otel(&rec),
            Err(ParseSpanError::BadId(_))
        ));
    }

    #[test]
    fn long_ids_truncate_to_low_64_bits() {
        assert_eq!(
            parse_hex_id("0123456789abcdef0000000000000042").unwrap(),
            0x42
        );
    }

    #[test]
    fn inverted_interval_rejected() {
        let mut rec = to_otel(&sample());
        rec[0].end_time_unix_nano = rec[0].start_time_unix_nano - 1;
        assert!(matches!(
            from_otel(&rec),
            Err(ParseSpanError::NegativeDuration { .. })
        ));
    }

    #[test]
    fn missing_parent_means_root() {
        let rec = to_otel(&sample());
        let spans = from_otel(&rec).unwrap();
        assert_eq!(spans[0].parent_span_id, None);
        assert_eq!(spans[1].parent_span_id, Some(1));
    }

    #[test]
    fn otel_json_parse_error_is_reported() {
        assert!(matches!(
            from_otel_json("{not json"),
            Err(ParseSpanError::Json(_))
        ));
    }
}
