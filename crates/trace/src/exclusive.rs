//! Exclusive duration and exclusive error computation (§3.2.2).
//!
//! The *exclusive duration* of a span is the total time during which the
//! span does not overlap any of its child spans — the paper's observable
//! stand-in for un-annotatable "self time". In the paper's Figure 2, with
//! parent `P` = [t0, t5], `A` = [t1, t3] and `B` = [t2, t4], the exclusive
//! duration of `P` is `(t1 − t0) + (t5 − t4)`.
//!
//! The *exclusive error* of a span marks an error that originated at the
//! span itself rather than propagating up from a failed child: a span has
//! an exclusive error when it errored and none of its children did.

use crate::trace::{SpanIdx, Trace};

/// Compute the exclusive duration (µs) of every span in the trace.
///
/// Index `i` of the result corresponds to span index `i`. Leaf spans'
/// exclusive duration equals their full duration. Child intervals are
/// clipped to the parent interval, so malformed timestamps (children
/// exceeding the parent) cannot produce underflow.
pub fn exclusive_durations(trace: &Trace) -> Vec<u64> {
    (0..trace.len())
        .map(|i| exclusive_duration_of(trace, i))
        .collect()
}

/// Exclusive duration (µs) of the single span `idx`.
pub fn exclusive_duration_of(trace: &Trace, idx: SpanIdx) -> u64 {
    let s = trace.span(idx);
    let (lo, hi) = (s.start_us, s.end_us);
    let mut intervals: Vec<(u64, u64)> = trace
        .children(idx)
        .iter()
        .map(|&c| {
            let ch = trace.span(c);
            (ch.start_us.clamp(lo, hi), ch.end_us.clamp(lo, hi))
        })
        .filter(|(a, b)| a < b)
        .collect();
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in intervals {
        match cur {
            None => cur = Some((a, b)),
            Some((ca, cb)) => {
                if a <= cb {
                    cur = Some((ca, cb.max(b)));
                } else {
                    covered += cb - ca;
                    cur = Some((a, b));
                }
            }
        }
    }
    if let Some((ca, cb)) = cur {
        covered += cb - ca;
    }
    (hi - lo).saturating_sub(covered)
}

/// Compute the exclusive error flag of every span.
///
/// A span has an exclusive error when it errored and no child errored;
/// an error co-occurring with a failed child is attributed to propagation
/// from that child.
pub fn exclusive_errors(trace: &Trace) -> Vec<bool> {
    (0..trace.len())
        .map(|i| {
            trace.span(i).is_error()
                && !trace.children(i).iter().any(|&c| trace.span(c).is_error())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanKind, StatusCode};
    use crate::Trace;

    fn figure2() -> Trace {
        // P=[0,100], A=[10,60], B=[40,80]
        Trace::assemble(vec![
            Span::builder(1, 1, "p", "P").time(0, 100).build(),
            Span::builder(1, 2, "a", "A")
                .parent(1)
                .kind(SpanKind::Client)
                .time(10, 60)
                .build(),
            Span::builder(1, 3, "b", "B")
                .parent(1)
                .kind(SpanKind::Client)
                .time(40, 80)
                .build(),
        ])
        .unwrap()
    }

    #[test]
    fn figure2_exclusive_durations() {
        let t = figure2();
        let ex = exclusive_durations(&t);
        // P: (10-0) + (100-80) = 30; children are leaves.
        assert_eq!(ex[t.root()], 30);
        let a = (0..t.len()).find(|&i| t.span(i).name == "A").unwrap();
        let b = (0..t.len()).find(|&i| t.span(i).name == "B").unwrap();
        assert_eq!(ex[a], 50);
        assert_eq!(ex[b], 40);
    }

    #[test]
    fn non_overlapping_children() {
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "p", "P").time(0, 100).build(),
            Span::builder(1, 2, "a", "A").parent(1).time(10, 20).build(),
            Span::builder(1, 3, "b", "B").parent(1).time(30, 40).build(),
        ])
        .unwrap();
        assert_eq!(exclusive_duration_of(&t, t.root()), 100 - 10 - 10);
    }

    #[test]
    fn child_fully_covering_parent() {
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "p", "P").time(10, 20).build(),
            Span::builder(1, 2, "a", "A").parent(1).time(10, 20).build(),
        ])
        .unwrap();
        assert_eq!(exclusive_duration_of(&t, t.root()), 0);
    }

    #[test]
    fn child_exceeding_parent_is_clipped() {
        // Malformed (clock skew): child extends past parent end.
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "p", "P").time(10, 20).build(),
            Span::builder(1, 2, "a", "A").parent(1).time(15, 40).build(),
        ])
        .unwrap();
        assert_eq!(exclusive_duration_of(&t, t.root()), 5);
    }

    #[test]
    fn nested_children_count_only_direct_children() {
        // P=[0,100] -> A=[10,90] -> B=[20,30]; P's exclusive time only
        // subtracts A, not grandchild B.
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "p", "P").time(0, 100).build(),
            Span::builder(1, 2, "a", "A").parent(1).time(10, 90).build(),
            Span::builder(1, 3, "b", "B").parent(2).time(20, 30).build(),
        ])
        .unwrap();
        let ex = exclusive_durations(&t);
        assert_eq!(ex[0], 20); // P
        assert_eq!(ex[1], 70); // A: 80 - 10
        assert_eq!(ex[2], 10); // B leaf
    }

    #[test]
    fn identical_children_intervals_merge() {
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "p", "P").time(0, 50).build(),
            Span::builder(1, 2, "a", "A").parent(1).time(10, 30).build(),
            Span::builder(1, 3, "b", "B").parent(1).time(10, 30).build(),
        ])
        .unwrap();
        assert_eq!(exclusive_duration_of(&t, t.root()), 30);
    }

    #[test]
    fn exclusive_error_attribution() {
        // Root errors because child errors -> only child is exclusive.
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "p", "P")
                .time(0, 50)
                .status(StatusCode::Error)
                .build(),
            Span::builder(1, 2, "a", "A")
                .parent(1)
                .time(10, 30)
                .status(StatusCode::Error)
                .build(),
        ])
        .unwrap();
        let ee = exclusive_errors(&t);
        assert_eq!(ee, vec![false, true]);
    }

    #[test]
    fn error_without_failed_children_is_exclusive() {
        let t = Trace::assemble(vec![
            Span::builder(1, 1, "p", "P")
                .time(0, 50)
                .status(StatusCode::Error)
                .build(),
            Span::builder(1, 2, "a", "A").parent(1).time(10, 30).build(),
        ])
        .unwrap();
        assert_eq!(exclusive_errors(&t), vec![true, false]);
    }

    #[test]
    fn ok_trace_has_no_exclusive_errors() {
        let t = figure2();
        assert!(exclusive_errors(&t).iter().all(|&e| !e));
    }
}
