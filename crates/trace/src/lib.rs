//! Span and trace data model for Sleuth.
//!
//! This crate implements the OpenTelemetry-subset data model the paper's
//! feature-engineering pipeline consumes (§3.2 of the Sleuth paper):
//! spans carrying `service`, `name`, `kind`, timestamps and a status code,
//! assembled into per-request trace trees via `spanId`/`parentSpanId`.
//!
//! It also implements the two trace-level derived features the paper
//! introduces:
//!
//! * **exclusive duration** — the total time a span does *not* overlap any
//!   of its child spans ([`exclusive::exclusive_durations`]), and
//! * **exclusive error** — whether a span has an error of its own rather
//!   than one propagated from its children
//!   ([`exclusive::exclusive_errors`]),
//!
//! plus the global duration transform (log10 then standardisation with
//! μ = 4.0, σ = 1.0, [`transform::scale_duration`]).
//!
//! # Example
//!
//! ```
//! use sleuth_trace::{Span, SpanKind, StatusCode, Trace};
//!
//! # fn main() -> Result<(), sleuth_trace::AssembleTraceError> {
//! let spans = vec![
//!     Span::builder(1, 1, "frontend", "GET /home")
//!         .kind(SpanKind::Server)
//!         .time(0, 1_000)
//!         .build(),
//!     Span::builder(1, 2, "backend", "query")
//!         .parent(1)
//!         .kind(SpanKind::Client)
//!         .time(100, 700)
//!         .build(),
//! ];
//! let trace = Trace::assemble(spans)?;
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.span(trace.root()).service, "frontend");
//! # Ok(())
//! # }
//! ```

pub mod assembly;
pub mod exclusive;
pub mod formats;
pub mod intern;
pub mod span;
pub mod trace;
pub mod transform;

pub use assembly::{AssembleTraceError, Assembler};
pub use intern::{IStr, Interner, Symbol};
pub use span::{Span, SpanBuilder, SpanId, SpanKind, StatusCode, TraceId};
pub use trace::{SpanIdx, Trace};
