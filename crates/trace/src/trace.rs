//! The assembled [`Trace`] tree.

use crate::assembly::{self, AssembleTraceError};
use crate::span::{Span, TraceId};

/// Index of a span within a [`Trace`] (position in [`Trace::spans`]).
pub type SpanIdx = usize;

/// An assembled trace: the spans of one request arranged as a tree.
///
/// Spans are stored in topological order (parents before children), with
/// children of each span sorted by start time. The tree mirrors the RPC
/// dependency graph of the request, which Sleuth uses directly as the
/// structure of its causal Bayesian network (§3.4).
///
/// The tree topology lives in a compressed-sparse-row (CSR) layout:
/// one flat child-index array plus per-span offsets, so walking a
/// trace touches two contiguous arrays instead of chasing a
/// `Vec<Vec<_>>` of per-span heap allocations. Encoding a trace
/// (ancestor walks, subtree scans) is the clustering hot path, and the
/// flat layout is what keeps it in cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    spans: Vec<Span>,
    parent: Vec<Option<SpanIdx>>,
    /// CSR offsets: children of span `i` are
    /// `child_idx[child_off[i]..child_off[i + 1]]`. Length `len() + 1`.
    child_off: Vec<usize>,
    /// CSR child indices, concatenated in span order; each span's
    /// segment is sorted by child start time.
    child_idx: Vec<SpanIdx>,
    depth: Vec<usize>,
    root: SpanIdx,
}

impl Trace {
    /// Assemble a trace from an unordered batch of spans.
    ///
    /// # Errors
    ///
    /// Returns [`AssembleTraceError`] if the spans do not form a single
    /// well-formed tree (empty input, no root, several roots, duplicate
    /// span ids, dangling parents, mixed trace ids, or a parent cycle).
    pub fn assemble(spans: Vec<Span>) -> Result<Self, AssembleTraceError> {
        assembly::assemble(spans)
    }

    /// Construct directly from pre-validated parts (used by assembly).
    /// `child_off`/`child_idx` are the CSR adjacency described on
    /// [`Trace`].
    pub(crate) fn from_parts(
        spans: Vec<Span>,
        parent: Vec<Option<SpanIdx>>,
        child_off: Vec<usize>,
        child_idx: Vec<SpanIdx>,
        depth: Vec<usize>,
        root: SpanIdx,
    ) -> Self {
        Trace {
            spans,
            parent,
            child_off,
            child_idx,
            depth,
            root,
        }
    }

    /// Trace id shared by every span.
    pub fn trace_id(&self) -> TraceId {
        self.spans[self.root].trace_id
    }

    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace contains no spans. Always false for a trace that
    /// assembled successfully, but provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Index of the root span.
    pub fn root(&self) -> SpanIdx {
        self.root
    }

    /// The span at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn span(&self, idx: SpanIdx) -> &Span {
        &self.spans[idx]
    }

    /// All spans in topological order (parents before children).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Parent index of `idx`, or `None` for the root.
    pub fn parent(&self, idx: SpanIdx) -> Option<SpanIdx> {
        self.parent[idx]
    }

    /// Children of `idx`, sorted by start time.
    pub fn children(&self, idx: SpanIdx) -> &[SpanIdx] {
        &self.child_idx[self.child_off[idx]..self.child_off[idx + 1]]
    }

    /// Depth of `idx` (root has depth 0).
    pub fn depth(&self, idx: SpanIdx) -> usize {
        self.depth[idx]
    }

    /// Maximum depth over all spans (root-only trace has depth 0).
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Maximum number of children of any span.
    pub fn max_out_degree(&self) -> usize {
        self.child_off
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// End-to-end duration of the request (root span duration), µs.
    pub fn total_duration_us(&self) -> u64 {
        self.spans[self.root].duration_us()
    }

    /// Whether the request as a whole failed (root span errored).
    pub fn is_error(&self) -> bool {
        self.spans[self.root].is_error()
    }

    /// Iterate over `(index, span)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (SpanIdx, &Span)> {
        self.spans.iter().enumerate()
    }

    /// Indices of spans in the subtree rooted at `idx` (including `idx`),
    /// in depth-first order.
    pub fn subtree(&self, idx: SpanIdx) -> Vec<SpanIdx> {
        let mut out = Vec::new();
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            out.push(i);
            for &c in self.children(i).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The ancestor chain of `idx` from its parent up to the root.
    pub fn ancestors(&self, idx: SpanIdx) -> Vec<SpanIdx> {
        let mut out = Vec::new();
        let mut cur = self.parent[idx];
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent[p];
        }
        out
    }

    /// Distinct service names appearing in the trace, in first-seen order.
    pub fn services(&self) -> Vec<&str> {
        let mut seen_syms: Vec<crate::intern::Symbol> = Vec::new();
        let mut out = Vec::new();
        for s in &self.spans {
            if !seen_syms.contains(&s.service_sym()) {
                seen_syms.push(s.service_sym());
                out.push(s.service.as_str());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::span::{Span, SpanKind, StatusCode};
    use crate::Trace;

    /// Build the paper's Figure-2 example: parent P with two overlapping
    /// children A and B.
    pub(crate) fn figure2_trace() -> Trace {
        // P spans [0, 100]; A spans [10, 60]; B spans [40, 80].
        let spans = vec![
            Span::builder(1, 1, "p", "P")
                .kind(SpanKind::Server)
                .time(0, 100)
                .build(),
            Span::builder(1, 2, "a", "A")
                .parent(1)
                .kind(SpanKind::Client)
                .time(10, 60)
                .build(),
            Span::builder(1, 3, "b", "B")
                .parent(1)
                .kind(SpanKind::Client)
                .time(40, 80)
                .build(),
        ];
        Trace::assemble(spans).unwrap()
    }

    #[test]
    fn topology_accessors() {
        let t = figure2_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0).len(), 2);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.max_depth(), 1);
        assert_eq!(t.max_out_degree(), 2);
        assert_eq!(t.total_duration_us(), 100);
        assert!(!t.is_error());
    }

    #[test]
    fn children_sorted_by_start_time() {
        let t = figure2_trace();
        let kids = t.children(t.root());
        assert!(t.span(kids[0]).start_us <= t.span(kids[1]).start_us);
        assert_eq!(t.span(kids[0]).name, "A");
    }

    #[test]
    fn subtree_and_ancestors() {
        let t = figure2_trace();
        assert_eq!(t.subtree(t.root()).len(), 3);
        assert_eq!(t.subtree(1), vec![1]);
        assert_eq!(t.ancestors(1), vec![0]);
        assert!(t.ancestors(0).is_empty());
    }

    #[test]
    fn services_deduplicated_in_order() {
        let t = figure2_trace();
        assert_eq!(t.services(), vec!["p", "a", "b"]);
    }

    #[test]
    fn error_propagates_to_trace_status() {
        let spans = vec![Span::builder(9, 1, "s", "op")
            .time(0, 5)
            .status(StatusCode::Error)
            .build()];
        let t = Trace::assemble(spans).unwrap();
        assert!(t.is_error());
        assert_eq!(t.trace_id(), 9);
    }

    #[test]
    fn deep_chain_depths() {
        let mut spans = vec![Span::builder(1, 1, "s0", "op0").time(0, 100).build()];
        for i in 1..5u64 {
            spans.push(
                Span::builder(1, i + 1, format!("s{i}"), format!("op{i}"))
                    .parent(i)
                    .time(i * 10, 100 - i * 10)
                    .build(),
            );
        }
        let t = Trace::assemble(spans).unwrap();
        assert_eq!(t.max_depth(), 4);
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.max_out_degree(), 1);
    }
}
