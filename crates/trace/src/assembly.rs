//! Assembling raw span batches into [`Trace`] trees.
//!
//! Collectors deliver spans in arbitrary order; this module validates that
//! a batch forms exactly one well-formed tree and produces the
//! topologically ordered [`Trace`] the rest of the system consumes.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::span::{Span, SpanId, TraceId};
use crate::trace::{SpanIdx, Trace};

/// Reasons a span batch cannot be assembled into a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleTraceError {
    /// The batch contained no spans.
    Empty,
    /// No span without a parent was found.
    MissingRoot,
    /// More than one span without a parent was found.
    MultipleRoots(Vec<SpanId>),
    /// Two spans shared the same span id.
    DuplicateSpanId(SpanId),
    /// A span referenced a parent id absent from the batch.
    DanglingParent {
        /// The span whose parent is missing.
        span: SpanId,
        /// The missing parent id.
        parent: SpanId,
    },
    /// Spans from different traces were mixed in one batch.
    MixedTraceIds(TraceId, TraceId),
    /// The parent pointers contain a cycle (or unreachable spans).
    Unreachable(SpanId),
}

impl fmt::Display for AssembleTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleTraceError::Empty => write!(f, "span batch is empty"),
            AssembleTraceError::MissingRoot => write!(f, "no root span in batch"),
            AssembleTraceError::MultipleRoots(ids) => {
                write!(f, "multiple root spans in batch: {ids:?}")
            }
            AssembleTraceError::DuplicateSpanId(id) => {
                write!(f, "duplicate span id {id}")
            }
            AssembleTraceError::DanglingParent { span, parent } => {
                write!(f, "span {span} references missing parent {parent}")
            }
            AssembleTraceError::MixedTraceIds(a, b) => {
                write!(f, "batch mixes trace ids {a} and {b}")
            }
            AssembleTraceError::Unreachable(id) => {
                write!(f, "span {id} unreachable from root (parent cycle)")
            }
        }
    }
}

impl Error for AssembleTraceError {}

/// Assemble an unordered span batch into a [`Trace`].
///
/// Validation performed:
/// * all spans share one trace id,
/// * span ids are unique,
/// * exactly one root (span without parent) exists,
/// * every parent reference resolves,
/// * every span is reachable from the root (no parent cycles).
///
/// One-shot convenience over [`Assembler`]; loops assembling many
/// traces (collectors, serve shards) should hold an `Assembler` and
/// reuse its scratch buffers instead.
///
/// # Errors
///
/// See [`AssembleTraceError`].
pub fn assemble(spans: Vec<Span>) -> Result<Trace, AssembleTraceError> {
    Assembler::new().assemble(spans)
}

/// Sentinel in the parent-position scratch for "span has no parent".
const NO_PARENT: usize = usize::MAX;

/// Reusable trace assembler.
///
/// Assembly is arena-style: all intermediate state (id→position map,
/// CSR adjacency in input-position space, BFS order, depth and
/// re-index tables) lives in flat buffers owned by the `Assembler` and
/// is recycled across calls, so a collector loop assembling thousands
/// of traces allocates only the arrays the returned [`Trace`] itself
/// owns. The input spans are re-ordered in place (cycle-following
/// permutation) rather than moved through a second vector.
#[derive(Debug, Default)]
pub struct Assembler {
    id_to_pos: HashMap<SpanId, usize>,
    parent_pos: Vec<usize>,
    pos_off: Vec<usize>,
    pos_fill: Vec<usize>,
    pos_children: Vec<usize>,
    order: Vec<usize>,
    depth_by_pos: Vec<usize>,
    new_idx: Vec<SpanIdx>,
}

impl Assembler {
    /// Create an assembler with empty scratch buffers.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Assemble an unordered span batch into a [`Trace`], reusing this
    /// assembler's scratch buffers.
    ///
    /// # Errors
    ///
    /// See [`AssembleTraceError`]; the spans are dropped on error.
    pub fn assemble(&mut self, mut spans: Vec<Span>) -> Result<Trace, AssembleTraceError> {
        if spans.is_empty() {
            return Err(AssembleTraceError::Empty);
        }
        let n = spans.len();
        let trace_id = spans[0].trace_id;
        for s in &spans {
            if s.trace_id != trace_id {
                return Err(AssembleTraceError::MixedTraceIds(trace_id, s.trace_id));
            }
        }

        self.id_to_pos.clear();
        self.id_to_pos.reserve(n);
        for (pos, s) in spans.iter().enumerate() {
            if self.id_to_pos.insert(s.span_id, pos).is_some() {
                return Err(AssembleTraceError::DuplicateSpanId(s.span_id));
            }
        }

        let mut root_pos = NO_PARENT;
        let mut root_count = 0usize;
        for (pos, s) in spans.iter().enumerate() {
            if s.parent_span_id.is_none() {
                root_pos = pos;
                root_count += 1;
            }
        }
        match root_count {
            0 => return Err(AssembleTraceError::MissingRoot),
            1 => {}
            _ => {
                let roots = spans
                    .iter()
                    .filter(|s| s.parent_span_id.is_none())
                    .map(|s| s.span_id)
                    .collect();
                return Err(AssembleTraceError::MultipleRoots(roots));
            }
        }

        // CSR children adjacency in input-position space: count each
        // parent's out-degree, prefix-sum into offsets, then fill.
        self.parent_pos.clear();
        self.parent_pos.resize(n, NO_PARENT);
        self.pos_off.clear();
        self.pos_off.resize(n + 1, 0);
        for (pos, s) in spans.iter().enumerate() {
            if let Some(pid) = s.parent_span_id {
                let ppos =
                    *self
                        .id_to_pos
                        .get(&pid)
                        .ok_or(AssembleTraceError::DanglingParent {
                            span: s.span_id,
                            parent: pid,
                        })?;
                self.parent_pos[pos] = ppos;
                self.pos_off[ppos + 1] += 1;
            }
        }
        for i in 0..n {
            self.pos_off[i + 1] += self.pos_off[i];
        }
        self.pos_fill.clear();
        self.pos_fill.extend_from_slice(&self.pos_off[..n]);
        self.pos_children.clear();
        self.pos_children.resize(self.pos_off[n], 0);
        for pos in 0..n {
            let ppos = self.parent_pos[pos];
            if ppos != NO_PARENT {
                self.pos_children[self.pos_fill[ppos]] = pos;
                self.pos_fill[ppos] += 1;
            }
        }
        for p in 0..n {
            self.pos_children[self.pos_off[p]..self.pos_off[p + 1]]
                .sort_unstable_by_key(|&c| (spans[c].start_us, spans[c].span_id));
        }

        // BFS from the root: `order` doubles as the queue. Builds the
        // topological order and per-span depth, and exposes parent
        // cycles as unreachable spans.
        self.order.clear();
        self.order.reserve(n);
        self.order.push(root_pos);
        self.depth_by_pos.clear();
        self.depth_by_pos.resize(n, 0);
        let mut head = 0;
        while head < self.order.len() {
            let p = self.order[head];
            head += 1;
            for &c in &self.pos_children[self.pos_off[p]..self.pos_off[p + 1]] {
                self.depth_by_pos[c] = self.depth_by_pos[p] + 1;
                self.order.push(c);
            }
        }
        if self.order.len() != n {
            let mut reached = vec![false; n];
            for &p in &self.order {
                reached[p] = true;
            }
            let missing = reached
                .iter()
                .position(|&r| !r)
                .expect("order shorter than span count implies an unreached position");
            return Err(AssembleTraceError::Unreachable(spans[missing].span_id));
        }

        // Re-index into topological order.
        self.new_idx.clear();
        self.new_idx.resize(n, 0);
        for (new, &old) in self.order.iter().enumerate() {
            self.new_idx[old] = new;
        }
        let mut parent: Vec<Option<SpanIdx>> = vec![None; n];
        let mut depth: Vec<usize> = vec![0; n];
        let mut child_off: Vec<usize> = Vec::with_capacity(n + 1);
        let mut child_idx: Vec<SpanIdx> = Vec::with_capacity(n - 1);
        child_off.push(0);
        for (new, &old) in self.order.iter().enumerate() {
            depth[new] = self.depth_by_pos[old];
            for &c in &self.pos_children[self.pos_off[old]..self.pos_off[old + 1]] {
                let cn = self.new_idx[c];
                parent[cn] = Some(new);
                child_idx.push(cn);
            }
            child_off.push(child_idx.len());
        }

        // Apply the permutation in place: span at input position `i`
        // belongs at `new_idx[i]`. Cycle-following swaps leave
        // `new_idx` as the identity, so it is consumed here.
        for i in 0..n {
            while self.new_idx[i] != i {
                let j = self.new_idx[i];
                spans.swap(i, j);
                self.new_idx.swap(i, j);
            }
        }

        Ok(Trace::from_parts(spans, parent, child_off, child_idx, depth, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn span(id: SpanId, parent: Option<SpanId>) -> Span {
        let b = Span::builder(1, id, format!("svc{id}"), format!("op{id}")).time(id, id + 10);
        match parent {
            Some(p) => b.parent(p).build(),
            None => b.build(),
        }
    }

    #[test]
    fn empty_batch_rejected() {
        assert_eq!(assemble(vec![]), Err(AssembleTraceError::Empty));
    }

    #[test]
    fn missing_root_rejected() {
        // 1 -> 2 -> 1 cycle, no root.
        let s1 = Span::builder(1, 1, "a", "a").parent(2).time(0, 1).build();
        let s2 = Span::builder(1, 2, "b", "b").parent(1).time(0, 1).build();
        assert_eq!(assemble(vec![s1, s2]), Err(AssembleTraceError::MissingRoot));
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = assemble(vec![span(1, None), span(2, None)]).unwrap_err();
        assert_eq!(err, AssembleTraceError::MultipleRoots(vec![1, 2]));
    }

    #[test]
    fn duplicate_span_id_rejected() {
        let err = assemble(vec![span(1, None), span(1, None)]).unwrap_err();
        assert_eq!(err, AssembleTraceError::DuplicateSpanId(1));
    }

    #[test]
    fn dangling_parent_rejected() {
        let err = assemble(vec![span(1, None), span(2, Some(99))]).unwrap_err();
        assert_eq!(
            err,
            AssembleTraceError::DanglingParent {
                span: 2,
                parent: 99
            }
        );
    }

    #[test]
    fn mixed_trace_ids_rejected() {
        let a = Span::builder(1, 1, "a", "a").time(0, 1).build();
        let b = Span::builder(2, 2, "b", "b").parent(1).time(0, 1).build();
        assert_eq!(
            assemble(vec![a, b]),
            Err(AssembleTraceError::MixedTraceIds(1, 2))
        );
    }

    #[test]
    fn cycle_among_non_roots_rejected() {
        // root 1; spans 2 and 3 point at each other.
        let s1 = span(1, None);
        let s2 = span(2, Some(3));
        let s3 = span(3, Some(2));
        let err = assemble(vec![s1, s2, s3]).unwrap_err();
        assert!(matches!(err, AssembleTraceError::Unreachable(_)));
    }

    #[test]
    fn shuffled_input_assembles_in_topological_order() {
        // chain 1 -> 2 -> 3 -> 4, delivered shuffled.
        let batch = vec![span(3, Some(2)), span(1, None), span(4, Some(3)), span(2, Some(1))];
        let t = assemble(batch).unwrap();
        for (i, _) in t.iter() {
            if let Some(p) = t.parent(i) {
                assert!(p < i, "parents must precede children");
            }
        }
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.span(t.root()).span_id, 1);
    }

    #[test]
    fn single_span_trace() {
        let t = assemble(vec![span(42, None)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.max_depth(), 0);
        assert!(t.children(t.root()).is_empty());
    }

    #[test]
    fn wide_fanout_children_sorted() {
        let mut batch = vec![Span::builder(1, 1, "root", "root").time(0, 100).build()];
        // children with descending start times
        for i in 0..10u64 {
            batch.push(
                Span::builder(1, 2 + i, "c", "c")
                    .parent(1)
                    .time(90 - i * 5, 95)
                    .build(),
            );
        }
        let t = assemble(batch).unwrap();
        let starts: Vec<u64> = t
            .children(t.root())
            .iter()
            .map(|&c| t.span(c).start_us)
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        assert_eq!(t.max_out_degree(), 10);
    }
}
