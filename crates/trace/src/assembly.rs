//! Assembling raw span batches into [`Trace`] trees.
//!
//! Collectors deliver spans in arbitrary order; this module validates that
//! a batch forms exactly one well-formed tree and produces the
//! topologically ordered [`Trace`] the rest of the system consumes.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::span::{Span, SpanId, TraceId};
use crate::trace::{SpanIdx, Trace};

/// Reasons a span batch cannot be assembled into a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleTraceError {
    /// The batch contained no spans.
    Empty,
    /// No span without a parent was found.
    MissingRoot,
    /// More than one span without a parent was found.
    MultipleRoots(Vec<SpanId>),
    /// Two spans shared the same span id.
    DuplicateSpanId(SpanId),
    /// A span referenced a parent id absent from the batch.
    DanglingParent {
        /// The span whose parent is missing.
        span: SpanId,
        /// The missing parent id.
        parent: SpanId,
    },
    /// Spans from different traces were mixed in one batch.
    MixedTraceIds(TraceId, TraceId),
    /// The parent pointers contain a cycle (or unreachable spans).
    Unreachable(SpanId),
}

impl fmt::Display for AssembleTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleTraceError::Empty => write!(f, "span batch is empty"),
            AssembleTraceError::MissingRoot => write!(f, "no root span in batch"),
            AssembleTraceError::MultipleRoots(ids) => {
                write!(f, "multiple root spans in batch: {ids:?}")
            }
            AssembleTraceError::DuplicateSpanId(id) => {
                write!(f, "duplicate span id {id}")
            }
            AssembleTraceError::DanglingParent { span, parent } => {
                write!(f, "span {span} references missing parent {parent}")
            }
            AssembleTraceError::MixedTraceIds(a, b) => {
                write!(f, "batch mixes trace ids {a} and {b}")
            }
            AssembleTraceError::Unreachable(id) => {
                write!(f, "span {id} unreachable from root (parent cycle)")
            }
        }
    }
}

impl Error for AssembleTraceError {}

/// Assemble an unordered span batch into a [`Trace`].
///
/// Validation performed:
/// * all spans share one trace id,
/// * span ids are unique,
/// * exactly one root (span without parent) exists,
/// * every parent reference resolves,
/// * every span is reachable from the root (no parent cycles).
///
/// # Errors
///
/// See [`AssembleTraceError`].
pub fn assemble(spans: Vec<Span>) -> Result<Trace, AssembleTraceError> {
    if spans.is_empty() {
        return Err(AssembleTraceError::Empty);
    }
    let trace_id = spans[0].trace_id;
    for s in &spans {
        if s.trace_id != trace_id {
            return Err(AssembleTraceError::MixedTraceIds(trace_id, s.trace_id));
        }
    }

    let mut id_to_pos: HashMap<SpanId, usize> = HashMap::with_capacity(spans.len());
    for (pos, s) in spans.iter().enumerate() {
        if id_to_pos.insert(s.span_id, pos).is_some() {
            return Err(AssembleTraceError::DuplicateSpanId(s.span_id));
        }
    }

    let roots: Vec<SpanId> = spans
        .iter()
        .filter(|s| s.parent_span_id.is_none())
        .map(|s| s.span_id)
        .collect();
    let root_id = match roots.as_slice() {
        [] => return Err(AssembleTraceError::MissingRoot),
        [only] => *only,
        _ => return Err(AssembleTraceError::MultipleRoots(roots)),
    };

    // Children adjacency keyed by original positions.
    let mut raw_children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (pos, s) in spans.iter().enumerate() {
        if let Some(pid) = s.parent_span_id {
            let ppos = *id_to_pos
                .get(&pid)
                .ok_or(AssembleTraceError::DanglingParent {
                    span: s.span_id,
                    parent: pid,
                })?;
            raw_children[ppos].push(pos);
        }
    }
    for kids in &mut raw_children {
        kids.sort_by_key(|&c| (spans[c].start_us, spans[c].span_id));
    }

    // BFS from root to build topological order and detect unreachable spans.
    let root_pos = id_to_pos[&root_id];
    let mut order: Vec<usize> = Vec::with_capacity(spans.len());
    let mut depth_by_pos: Vec<usize> = vec![0; spans.len()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root_pos);
    while let Some(p) = queue.pop_front() {
        order.push(p);
        for &c in &raw_children[p] {
            depth_by_pos[c] = depth_by_pos[p] + 1;
            queue.push_back(c);
        }
    }
    if order.len() != spans.len() {
        let reached: std::collections::HashSet<usize> = order.iter().copied().collect();
        let missing = (0..spans.len()).find(|p| !reached.contains(p)).expect(
            "order shorter than span count implies an unreached position",
        );
        return Err(AssembleTraceError::Unreachable(spans[missing].span_id));
    }

    // Re-index into topological order.
    let mut new_idx: Vec<SpanIdx> = vec![0; spans.len()];
    for (new, &old) in order.iter().enumerate() {
        new_idx[old] = new;
    }
    let mut ordered: Vec<Option<Span>> = spans.into_iter().map(Some).collect();
    let mut out_spans: Vec<Span> = Vec::with_capacity(ordered.len());
    for &old in &order {
        out_spans.push(ordered[old].take().expect("each position taken once"));
    }
    let mut parent: Vec<Option<SpanIdx>> = vec![None; out_spans.len()];
    let mut children: Vec<Vec<SpanIdx>> = vec![Vec::new(); out_spans.len()];
    let mut depth: Vec<usize> = vec![0; out_spans.len()];
    for (new, &old) in order.iter().enumerate() {
        depth[new] = depth_by_pos[old];
        children[new] = raw_children[old].iter().map(|&c| new_idx[c]).collect();
    }
    for (i, kids) in children.iter().enumerate() {
        for &k in kids {
            parent[k] = Some(i);
        }
    }

    Ok(Trace::from_parts(out_spans, parent, children, depth, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn span(id: SpanId, parent: Option<SpanId>) -> Span {
        let b = Span::builder(1, id, format!("svc{id}"), format!("op{id}")).time(id, id + 10);
        match parent {
            Some(p) => b.parent(p).build(),
            None => b.build(),
        }
    }

    #[test]
    fn empty_batch_rejected() {
        assert_eq!(assemble(vec![]), Err(AssembleTraceError::Empty));
    }

    #[test]
    fn missing_root_rejected() {
        // 1 -> 2 -> 1 cycle, no root.
        let s1 = Span::builder(1, 1, "a", "a").parent(2).time(0, 1).build();
        let s2 = Span::builder(1, 2, "b", "b").parent(1).time(0, 1).build();
        assert_eq!(assemble(vec![s1, s2]), Err(AssembleTraceError::MissingRoot));
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = assemble(vec![span(1, None), span(2, None)]).unwrap_err();
        assert_eq!(err, AssembleTraceError::MultipleRoots(vec![1, 2]));
    }

    #[test]
    fn duplicate_span_id_rejected() {
        let err = assemble(vec![span(1, None), span(1, None)]).unwrap_err();
        assert_eq!(err, AssembleTraceError::DuplicateSpanId(1));
    }

    #[test]
    fn dangling_parent_rejected() {
        let err = assemble(vec![span(1, None), span(2, Some(99))]).unwrap_err();
        assert_eq!(
            err,
            AssembleTraceError::DanglingParent {
                span: 2,
                parent: 99
            }
        );
    }

    #[test]
    fn mixed_trace_ids_rejected() {
        let a = Span::builder(1, 1, "a", "a").time(0, 1).build();
        let b = Span::builder(2, 2, "b", "b").parent(1).time(0, 1).build();
        assert_eq!(
            assemble(vec![a, b]),
            Err(AssembleTraceError::MixedTraceIds(1, 2))
        );
    }

    #[test]
    fn cycle_among_non_roots_rejected() {
        // root 1; spans 2 and 3 point at each other.
        let s1 = span(1, None);
        let s2 = span(2, Some(3));
        let s3 = span(3, Some(2));
        let err = assemble(vec![s1, s2, s3]).unwrap_err();
        assert!(matches!(err, AssembleTraceError::Unreachable(_)));
    }

    #[test]
    fn shuffled_input_assembles_in_topological_order() {
        // chain 1 -> 2 -> 3 -> 4, delivered shuffled.
        let batch = vec![span(3, Some(2)), span(1, None), span(4, Some(3)), span(2, Some(1))];
        let t = assemble(batch).unwrap();
        for (i, _) in t.iter() {
            if let Some(p) = t.parent(i) {
                assert!(p < i, "parents must precede children");
            }
        }
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.span(t.root()).span_id, 1);
    }

    #[test]
    fn single_span_trace() {
        let t = assemble(vec![span(42, None)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.max_depth(), 0);
        assert!(t.children(t.root()).is_empty());
    }

    #[test]
    fn wide_fanout_children_sorted() {
        let mut batch = vec![Span::builder(1, 1, "root", "root").time(0, 100).build()];
        // children with descending start times
        for i in 0..10u64 {
            batch.push(
                Span::builder(1, 2 + i, "c", "c")
                    .parent(1)
                    .time(90 - i * 5, 95)
                    .build(),
            );
        }
        let t = assemble(batch).unwrap();
        let starts: Vec<u64> = t
            .children(t.root())
            .iter()
            .map(|&c| t.span(c).start_us)
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        assert_eq!(t.max_out_degree(), 10);
    }
}
