//! Seeded process-level fault plans for the cluster self-healing
//! layer.
//!
//! [`NetFaultPlan`](crate::NetFaultPlan) sabotages frames *between*
//! processes; a [`ProcFaultPlan`] sabotages the processes themselves:
//! `kill -9` (the process vanishes, sockets reset), `SIGSTOP` stalls
//! (the process keeps its sockets open but answers nothing — the case
//! only heartbeats can detect), and restart storms (a respawned shard
//! is killed again as soon as it comes back).
//!
//! The injector itself never touches a PID. It is a pure *decision*
//! oracle — [`ProcInjector::step_fate`] maps (seed, domain, step) to a
//! [`ProcFate`] — and the test harness owning the real `Child`
//! processes applies the verdicts. That split keeps the chaos crate
//! OS-agnostic and the decisions deterministic: two runs with the same
//! plan kill and stall the same shards at the same steps regardless of
//! scheduling, and every class is budgeted so any finite plan
//! eventually falls silent, after which the fault-transparency gate
//! (verdicts over healthy traces ≡ fault-free run) can be asserted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// Same private splitmix64/roll recipe as `net.rs` — duplicated so the
// fault domains of the two layers cannot accidentally couple.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn roll(seed: u64, domain: u64, key: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(domain) ^ splitmix64(key));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Declarative description of what the *cluster* should do wrong.
/// Rates are probabilities in `[0, 1]` rolled once per harness step
/// (e.g. per submitted batch); each class has a budget so the plan is
/// finite. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcFaultPlan {
    /// Seed mixed into every roll.
    pub seed: u64,
    /// Number of shard processes decisions are spread over.
    pub num_shards: usize,
    /// Probability a step kills one shard with `SIGKILL` (sockets
    /// reset; the router must fail its traces over to survivors).
    pub kill_rate: f64,
    /// Maximum kills.
    pub kill_budget: u64,
    /// Probability a step `SIGSTOP`s one shard for [`Self::stall`]
    /// (sockets stay open; only heartbeat misses can detect it).
    pub stall_rate: f64,
    /// Maximum stalls.
    pub stall_budget: u64,
    /// How long a stalled shard stays stopped before the harness
    /// `SIGCONT`s or kills it.
    pub stall: Duration,
    /// Probability a step re-kills a shard that was respawned earlier
    /// in the run (a restart storm: the supervisor's backoff budget is
    /// what ends it).
    pub respawn_kill_rate: f64,
    /// Maximum restart-storm kills.
    pub respawn_kill_budget: u64,
}

impl Default for ProcFaultPlan {
    fn default() -> Self {
        ProcFaultPlan {
            seed: 0,
            num_shards: 1,
            kill_rate: 0.0,
            kill_budget: u64::MAX,
            stall_rate: 0.0,
            stall_budget: u64::MAX,
            stall: Duration::from_millis(500),
            respawn_kill_rate: 0.0,
            respawn_kill_budget: u64::MAX,
        }
    }
}

/// What the harness should do to the fleet at one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcFate {
    /// Leave every process alone.
    Spare,
    /// `kill -9` the given shard.
    Kill(usize),
    /// `SIGSTOP` the given shard for the plan's stall duration.
    Stall(usize),
    /// Re-kill the given shard, which the supervisor already respawned
    /// at least once (restart storm).
    RespawnKill(usize),
}

/// Remaining injections of one fault class (same one-way semantics as
/// the net injector's budgets).
#[derive(Debug)]
struct Budget(AtomicU64);

impl Budget {
    fn new(tokens: u64) -> Self {
        Budget(AtomicU64::new(tokens))
    }

    fn take(&self) -> bool {
        self.0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }
}

// Independent roll domains per fault class (distinct from the net
// injector's 0x10..=0x15 block by convention, though the crates never
// mix seeds).
const DOMAIN_KILL: u64 = 0x20;
const DOMAIN_STALL: u64 = 0x21;
const DOMAIN_RESPAWN_KILL: u64 = 0x22;
const DOMAIN_VICTIM: u64 = 0x23;

/// Decision oracle executing a [`ProcFaultPlan`] deterministically.
/// Share one instance across the harness; budgets are global to the
/// run.
#[derive(Debug)]
pub struct ProcInjector {
    plan: ProcFaultPlan,
    kills: Budget,
    stalls: Budget,
    respawn_kills: Budget,
    injected_kills: AtomicU64,
    injected_stalls: AtomicU64,
    injected_respawn_kills: AtomicU64,
}

impl ProcInjector {
    /// Build an injector executing `plan`.
    pub fn new(plan: ProcFaultPlan) -> Self {
        ProcInjector {
            kills: Budget::new(plan.kill_budget),
            stalls: Budget::new(plan.stall_budget),
            respawn_kills: Budget::new(plan.respawn_kill_budget),
            injected_kills: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            injected_respawn_kills: AtomicU64::new(0),
            plan,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &ProcFaultPlan {
        &self.plan
    }

    /// The fate of harness step `step`. Destructive classes roll
    /// first, mirroring the net injector's priority rule; the victim
    /// shard is itself a deterministic function of the step.
    pub fn step_fate(&self, step: u64) -> ProcFate {
        let seed = self.plan.seed;
        let victim = if self.plan.num_shards == 0 {
            0
        } else {
            (splitmix64(seed ^ splitmix64(DOMAIN_VICTIM) ^ splitmix64(step))
                % self.plan.num_shards as u64) as usize
        };
        if roll(seed, DOMAIN_KILL, step) < self.plan.kill_rate && self.kills.take() {
            self.injected_kills.fetch_add(1, Ordering::Relaxed);
            return ProcFate::Kill(victim);
        }
        if roll(seed, DOMAIN_STALL, step) < self.plan.stall_rate && self.stalls.take() {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
            return ProcFate::Stall(victim);
        }
        if roll(seed, DOMAIN_RESPAWN_KILL, step) < self.plan.respawn_kill_rate
            && self.respawn_kills.take()
        {
            self.injected_respawn_kills.fetch_add(1, Ordering::Relaxed);
            return ProcFate::RespawnKill(victim);
        }
        ProcFate::Spare
    }

    /// Kills injected so far.
    pub fn injected_kills(&self) -> u64 {
        self.injected_kills.load(Ordering::Relaxed)
    }

    /// Stalls injected so far.
    pub fn injected_stalls(&self) -> u64 {
        self.injected_stalls.load(Ordering::Relaxed)
    }

    /// Restart-storm kills injected so far.
    pub fn injected_respawn_kills(&self) -> u64 {
        self.injected_respawn_kills.load(Ordering::Relaxed)
    }

    /// Total process faults injected across every class.
    pub fn injected_total(&self) -> u64 {
        self.injected_kills() + self.injected_stalls() + self.injected_respawn_kills()
    }

    /// True once every fault budget is spent (or zero-rated) — after
    /// this point the fleet runs unmolested and the system must
    /// converge back to fault-free verdicts.
    pub fn is_silent(&self) -> bool {
        let spent = |b: &Budget, rate: f64| rate <= 0.0 || b.0.load(Ordering::Relaxed) == 0;
        spent(&self.kills, self.plan.kill_rate)
            && spent(&self.stalls, self.plan.stall_rate)
            && spent(&self.respawn_kills, self.plan.respawn_kill_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_spares_everything() {
        let inj = ProcInjector::new(ProcFaultPlan::default());
        for step in 0..200 {
            assert_eq!(inj.step_fate(step), ProcFate::Spare);
        }
        assert_eq!(inj.injected_total(), 0);
        assert!(inj.is_silent());
    }

    #[test]
    fn fates_are_deterministic_across_injectors() {
        let plan = ProcFaultPlan {
            seed: 7,
            num_shards: 3,
            kill_rate: 0.1,
            stall_rate: 0.1,
            respawn_kill_rate: 0.1,
            ..ProcFaultPlan::default()
        };
        let a = ProcInjector::new(plan);
        let b = ProcInjector::new(plan);
        for step in 0..500 {
            assert_eq!(a.step_fate(step), b.step_fate(step));
        }
        assert!(a.injected_total() > 0, "30% total rate never fired");
        assert_eq!(a.injected_total(), b.injected_total());
    }

    #[test]
    fn budgets_exhaust_to_silence() {
        let plan = ProcFaultPlan {
            seed: 3,
            num_shards: 4,
            kill_rate: 1.0,
            kill_budget: 2,
            stall_rate: 1.0,
            stall_budget: 1,
            ..ProcFaultPlan::default()
        };
        let inj = ProcInjector::new(plan);
        assert!(!inj.is_silent());
        let mut kills = 0;
        let mut stalls = 0;
        for step in 0..100 {
            match inj.step_fate(step) {
                ProcFate::Kill(shard) => {
                    assert!(shard < 4);
                    kills += 1;
                }
                ProcFate::Stall(shard) => {
                    assert!(shard < 4);
                    stalls += 1;
                }
                ProcFate::RespawnKill(_) => unreachable!("class is zero-rated"),
                ProcFate::Spare => {}
            }
        }
        assert_eq!((kills, stalls), (2, 1));
        assert_eq!(inj.injected_kills(), 2);
        assert_eq!(inj.injected_stalls(), 1);
        assert!(inj.is_silent());
        assert_eq!(inj.step_fate(999), ProcFate::Spare);
    }

    #[test]
    fn victims_spread_across_the_fleet() {
        let plan = ProcFaultPlan {
            seed: 11,
            num_shards: 3,
            kill_rate: 1.0,
            ..ProcFaultPlan::default()
        };
        let inj = ProcInjector::new(plan);
        let mut seen = [false; 3];
        for step in 0..64 {
            if let ProcFate::Kill(shard) = inj.step_fate(step) {
                seen[shard] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "some shard never targeted: {seen:?}"
        );
    }

    #[test]
    fn injector_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProcInjector>();
    }
}
