//! Adversarial span-batch corruptions.
//!
//! Runtime faults (panics, stalls) test the supervision layer; these
//! test the *ingestion* layer: structurally broken batches that real
//! collectors produce under partial delivery, clock bugs, and id
//! collisions. Each [`Corruption`] mutates an otherwise-valid batch
//! into a specific [`sleuth_trace::AssembleTraceError`] shape (or an
//! inverted interval caught even earlier, at `submit_batch`). The
//! serving runtime must quarantine every one of them — never panic,
//! never leak spans from the conservation accounting.

use sleuth_trace::Span;

/// One way to break a span batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Point the root's parent at a leaf: the trace becomes a rootless
    /// parent cycle (`AssembleTraceError::MissingRoot`).
    Cycle,
    /// Point one span's parent at an id that does not exist
    /// (`AssembleTraceError::DanglingParent`).
    DanglingParent,
    /// Move one span to a neighbouring trace id. Under per-trace
    /// collection the stray fragment becomes its own pending trace
    /// whose parent pointer never resolves.
    MixedTraceIds,
    /// Give two spans the same span id
    /// (`AssembleTraceError::DuplicateSpanId` on direct assembly; a
    /// deduplicating collector instead drops the second span, thinning
    /// the trace rather than quarantining it).
    DuplicateSpanId,
    /// Make one span end before it starts — rejected at submission,
    /// before assembly ever sees it.
    InvertedInterval,
}

impl Corruption {
    /// Every corruption kind, for sweep-style tests.
    pub const ALL: [Corruption; 5] = [
        Corruption::Cycle,
        Corruption::DanglingParent,
        Corruption::MixedTraceIds,
        Corruption::DuplicateSpanId,
        Corruption::InvertedInterval,
    ];

    /// Whether this corruption guarantees the trace is quarantined by
    /// the serving runtime (assembly can never succeed, even behind a
    /// deduplicating collector). [`Corruption::InvertedInterval`] only
    /// costs the one rejected span, [`Corruption::DuplicateSpanId`] is
    /// absorbed by collector dedup, and [`Corruption::MixedTraceIds`]
    /// splits into fragments whose fate depends on which span moved.
    pub fn malforms_trace(self) -> bool {
        matches!(self, Corruption::Cycle | Corruption::DanglingParent)
    }
}

/// An id guaranteed absent from the batch.
fn absent_span_id(spans: &[Span]) -> u64 {
    spans
        .iter()
        .map(|s| s.span_id)
        .max()
        .unwrap_or(0)
        .wrapping_add(0x5EED)
}

/// Position of the root span (no parent), defaulting to 0 so
/// already-broken batches stay broken rather than panicking.
fn root_pos(spans: &[Span]) -> usize {
    spans
        .iter()
        .position(|s| s.parent_span_id.is_none())
        .unwrap_or(0)
}

/// Position of a leaf: any span no other span claims as parent.
fn leaf_pos(spans: &[Span]) -> usize {
    spans
        .iter()
        .position(|s| spans.iter().all(|o| o.parent_span_id != Some(s.span_id)))
        .unwrap_or(spans.len() - 1)
}

/// Apply `kind` to `spans` in place. The batch must be non-empty;
/// single-span batches are handled (a [`Corruption::Cycle`] becomes a
/// self-cycle, still rootless).
pub fn corrupt_batch(spans: &mut [Span], kind: Corruption) {
    assert!(!spans.is_empty(), "cannot corrupt an empty batch");
    match kind {
        Corruption::Cycle => {
            let leaf_id = spans[leaf_pos(spans)].span_id;
            let root = root_pos(spans);
            spans[root].parent_span_id = Some(leaf_id);
        }
        Corruption::DanglingParent => {
            let ghost = absent_span_id(spans);
            let last = spans.len() - 1;
            spans[last].parent_span_id = Some(ghost);
        }
        Corruption::MixedTraceIds => {
            // Prefer moving a span that has children so the original
            // trace is provably broken (dangling children) too.
            let victim = spans
                .iter()
                .position(|s| {
                    s.parent_span_id.is_some()
                        && spans.iter().any(|o| o.parent_span_id == Some(s.span_id))
                })
                .unwrap_or(spans.len() - 1);
            spans[victim].trace_id = spans[victim].trace_id.wrapping_add(1);
        }
        Corruption::DuplicateSpanId => {
            let first_id = spans[0].span_id;
            let last = spans.len() - 1;
            if last == 0 {
                return; // a single span cannot collide with itself
            }
            spans[last].span_id = first_id;
            // Keep the duplicate from also being a second root.
            if spans[last].parent_span_id.is_none() {
                spans[last].parent_span_id = spans[0].parent_span_id;
            }
        }
        Corruption::InvertedInterval => {
            let last = spans.len() - 1;
            let start = spans[last].start_us.max(1);
            spans[last].start_us = start;
            spans[last].end_us = start - 1;
        }
    }
}

/// Deterministically pick which corruption (if any is wanted) to apply
/// to `trace_id` — a stable content-keyed choice so corrupted runs are
/// reproducible batch-for-batch.
pub fn corruption_for(seed: u64, trace_id: u64) -> Corruption {
    let mut x = seed ^ trace_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    Corruption::ALL[(x % Corruption::ALL.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{AssembleTraceError, Trace};

    /// root(1) ── 2 ── 3, plus leaf 4 under the root.
    fn healthy_batch(trace_id: u64) -> Vec<Span> {
        vec![
            Span::builder(trace_id, 1, "gw", "ingress")
                .time(0, 100)
                .build(),
            Span::builder(trace_id, 2, "auth", "check")
                .parent(1)
                .time(5, 40)
                .build(),
            Span::builder(trace_id, 3, "db", "query")
                .parent(2)
                .time(10, 30)
                .build(),
            Span::builder(trace_id, 4, "cache", "get")
                .parent(1)
                .time(50, 60)
                .build(),
        ]
    }

    #[test]
    fn healthy_batch_assembles() {
        assert!(Trace::assemble(healthy_batch(7)).is_ok());
    }

    #[test]
    fn cycle_makes_batch_rootless() {
        let mut spans = healthy_batch(7);
        corrupt_batch(&mut spans, Corruption::Cycle);
        assert_eq!(Trace::assemble(spans), Err(AssembleTraceError::MissingRoot));
    }

    #[test]
    fn cycle_on_single_span_is_a_self_cycle() {
        let mut spans = vec![Span::builder(7, 1, "gw", "ingress").time(0, 9).build()];
        corrupt_batch(&mut spans, Corruption::Cycle);
        assert_eq!(Trace::assemble(spans), Err(AssembleTraceError::MissingRoot));
    }

    #[test]
    fn dangling_parent_is_detected() {
        let mut spans = healthy_batch(7);
        corrupt_batch(&mut spans, Corruption::DanglingParent);
        assert!(matches!(
            Trace::assemble(spans),
            Err(AssembleTraceError::DanglingParent { .. })
        ));
    }

    #[test]
    fn mixed_trace_ids_split_and_break_the_original() {
        let mut spans = healthy_batch(7);
        corrupt_batch(&mut spans, Corruption::MixedTraceIds);
        let moved: Vec<Span> = spans.iter().filter(|s| s.trace_id == 8).cloned().collect();
        let kept: Vec<Span> = spans.iter().filter(|s| s.trace_id == 7).cloned().collect();
        assert_eq!(moved.len(), 1);
        // A direct mixed assemble fails outright…
        assert!(matches!(
            Trace::assemble(spans.clone()),
            Err(AssembleTraceError::MixedTraceIds(_, _))
        ));
        // …and a per-trace collector sees two broken fragments: the
        // stray span has a parent but no root in its fragment, and the
        // original lost an interior span.
        assert_eq!(Trace::assemble(moved), Err(AssembleTraceError::MissingRoot));
        assert!(matches!(
            Trace::assemble(kept),
            Err(AssembleTraceError::DanglingParent { .. })
        ));
    }

    #[test]
    fn duplicate_span_id_is_detected() {
        let mut spans = healthy_batch(7);
        corrupt_batch(&mut spans, Corruption::DuplicateSpanId);
        assert_eq!(
            Trace::assemble(spans),
            Err(AssembleTraceError::DuplicateSpanId(1))
        );
    }

    #[test]
    fn inverted_interval_inverts_exactly_one_span() {
        let mut spans = healthy_batch(7);
        corrupt_batch(&mut spans, Corruption::InvertedInterval);
        let inverted: Vec<&Span> = spans.iter().filter(|s| s.end_us < s.start_us).collect();
        assert_eq!(inverted.len(), 1);
        // With the bad span filtered out (as submit_batch does), the
        // rest still cannot assemble only if the victim was interior;
        // here the victim is leaf 4, so the remainder is healthy.
        let rest: Vec<Span> = spans
            .iter()
            .filter(|s| s.end_us >= s.start_us)
            .cloned()
            .collect();
        assert!(Trace::assemble(rest).is_ok());
    }

    #[test]
    fn corruption_choice_is_deterministic_and_varied() {
        let picks: Vec<Corruption> = (0..64).map(|id| corruption_for(99, id)).collect();
        let again: Vec<Corruption> = (0..64).map(|id| corruption_for(99, id)).collect();
        assert_eq!(picks, again);
        for kind in Corruption::ALL {
            assert!(picks.contains(&kind), "{kind:?} never chosen in 64 draws");
        }
    }

    #[test]
    fn malforming_kinds_are_classified() {
        assert!(Corruption::Cycle.malforms_trace());
        assert!(Corruption::DanglingParent.malforms_trace());
        assert!(!Corruption::DuplicateSpanId.malforms_trace());
        assert!(!Corruption::MixedTraceIds.malforms_trace());
        assert!(!Corruption::InvertedInterval.malforms_trace());
    }
}
