//! Deterministic fault injection for the Sleuth serving runtime.
//!
//! `sleuth-par` made *parallelism* deterministic so it could be
//! tested; this crate does the same for *failure*. A [`FaultPlan`] is
//! a seeded, budgeted description of what should go wrong — worker
//! panics, queue stalls, clock skew, slow pipelines — and
//! [`SeededInjector`] turns it into a
//! [`sleuth_serve::FaultInjector`] whose every decision is a pure
//! function of the fault plan seed and the *content* it is deciding
//! about (trace id, worker id, attempt number). Two runs with the
//! same plan inject the same faults on the same traces regardless of
//! thread interleaving, so chaos scenarios are ordinary reproducible
//! unit tests:
//!
//! ```no_run
//! use std::sync::Arc;
//! use sleuth_chaos::{FaultPlan, SeededInjector};
//! use sleuth_serve::{ServeConfig, ServeRuntime};
//! # fn pipeline() -> Arc<sleuth_core::SleuthPipeline> { unimplemented!() }
//!
//! let plan = FaultPlan {
//!     seed: 7,
//!     kill_each_rca_worker_once: true,
//!     rca_panic_rate: 0.10,
//!     rca_panic_budget: 25,
//!     ..FaultPlan::default()
//! };
//! let injector = Arc::new(SeededInjector::new(plan));
//! let runtime = ServeRuntime::start_with_injector(
//!     pipeline(),
//!     ServeConfig::default(),
//!     Arc::clone(&injector) as Arc<dyn sleuth_serve::FaultInjector>,
//! )
//! .unwrap();
//! // … drive traffic; the runtime must absorb every injected fault …
//! let report = runtime.shutdown();
//! assert_eq!(report.metrics.poison_traces, report.quarantined.len() as u64);
//! ```
//!
//! Every fault class carries a **budget**: once spent, the injector
//! falls silent. That gives chaos runs the *eventual fault silence*
//! property the recovery proofs need — after the last injected fault,
//! the runtime must converge back to fault-free behaviour.
//!
//! [`malform`] complements the runtime faults with adversarial
//! *input* faults: span-batch corruptions (cycles, dangling parents,
//! mixed trace ids, duplicate span ids, inverted intervals) that
//! ingestion must quarantine rather than crash on.
//!
//! [`net`] extends the harness across the process boundary: a
//! [`NetFaultPlan`] drops, duplicates, reorders, corrupts, and
//! truncates wire frames between the router and its shard servers
//! (and kills connections / stalls reconnects) through the
//! [`sleuth_wire::WireFaultInjector`] seam, with the same
//! seeded-and-budgeted determinism.
//!
//! [`proc`] climbs one level further: a [`ProcFaultPlan`] decides —
//! deterministically, per harness step — which shard *process* gets
//! `kill -9`'d, `SIGSTOP`'d, or re-killed after a respawn, driving the
//! cluster self-healing gates (heartbeat detection, failover,
//! exactly-once verdict delivery across restarts).

pub mod malform;
pub mod net;
pub mod plan;
pub mod proc;

pub use malform::{corrupt_batch, corruption_for, Corruption};
pub use net::{NetFaultPlan, NetInjector};
pub use plan::{FaultPlan, SeededInjector};
pub use proc::{ProcFate, ProcFaultPlan, ProcInjector};
