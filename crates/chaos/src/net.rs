//! Seeded network fault plans for the multi-process wire layer.
//!
//! [`NetFaultPlan`] extends the chaos harness across the process
//! boundary: where [`crate::FaultPlan`] sabotages workers *inside* a
//! runtime, a [`NetInjector`] sabotages the frames *between* the
//! router and its shard servers — dropping, duplicating, reordering,
//! corrupting, and truncating them, killing connections outright, and
//! stalling reconnect attempts. It plugs into the
//! [`sleuth_wire::FrameWriter`] seam via
//! [`sleuth_wire::WireFaultInjector`].
//!
//! Determinism follows the same recipe as [`crate::SeededInjector`]:
//! every decision is a pure function of (plan seed, fault domain,
//! content key), where the content key is the (peer, per-connection
//! data-frame counter) pair the writer hands us — independent of
//! thread scheduling and wall-clock time. Budgets bound every class,
//! so any finite plan eventually falls silent and the
//! fault-transparency gate (faulted run ≡ fault-free run) can be
//! asserted after convergence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sleuth_wire::{FrameFate, WireFaultInjector};

// Same splitmix64/roll construction as `plan.rs` — duplicated rather
// than shared because both are private three-liners and the crates'
// fault domains must not accidentally couple.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn roll(seed: u64, domain: u64, key: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(domain) ^ splitmix64(key));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Declarative description of what the network should do wrong.
/// Rates are probabilities in `[0, 1]` rolled per outgoing data
/// frame; each class has a budget so the plan is finite. The default
/// plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    /// Seed mixed into every roll.
    pub seed: u64,
    /// Probability a data frame is silently dropped (the session
    /// layer's nack/resend must recover it).
    pub drop_rate: f64,
    /// Maximum dropped frames.
    pub drop_budget: u64,
    /// Probability a data frame is sent twice (receiver must dedup).
    pub duplicate_rate: f64,
    /// Maximum duplicated frames.
    pub duplicate_budget: u64,
    /// Probability a data frame is held back and delivered after its
    /// successor (receiver's reorder buffer must heal it).
    pub reorder_rate: f64,
    /// Maximum reordered frames.
    pub reorder_budget: u64,
    /// Probability a payload byte is flipped in flight (checksum must
    /// catch it; resend recovers).
    pub corrupt_rate: f64,
    /// Maximum corrupted frames.
    pub corrupt_budget: u64,
    /// Probability a frame is cut off mid-write and the connection
    /// dies (reconnect + session resume must recover).
    pub truncate_rate: f64,
    /// Maximum truncated frames.
    pub truncate_budget: u64,
    /// Probability the connection is killed before a frame is written
    /// at all.
    pub kill_rate: f64,
    /// Maximum connection kills.
    pub kill_budget: u64,
    /// Stall injected into each reconnect attempt (models a slow or
    /// flapping network path). `None` = connect at full speed.
    pub connect_stall: Option<Duration>,
    /// Maximum stalled connect attempts.
    pub connect_stall_budget: u64,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan {
            seed: 0,
            drop_rate: 0.0,
            drop_budget: u64::MAX,
            duplicate_rate: 0.0,
            duplicate_budget: u64::MAX,
            reorder_rate: 0.0,
            reorder_budget: u64::MAX,
            corrupt_rate: 0.0,
            corrupt_budget: u64::MAX,
            truncate_rate: 0.0,
            truncate_budget: u64::MAX,
            kill_rate: 0.0,
            kill_budget: u64::MAX,
            connect_stall: None,
            connect_stall_budget: u64::MAX,
        }
    }
}

/// Remaining injections of one fault class (identical one-way
/// semantics to the runtime injector's budget).
#[derive(Debug)]
struct Budget(AtomicU64);

impl Budget {
    fn new(tokens: u64) -> Self {
        Budget(AtomicU64::new(tokens))
    }

    fn take(&self) -> bool {
        self.0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }
}

// Independent roll domains per fault class.
const DOMAIN_DROP: u64 = 0x10;
const DOMAIN_DUPLICATE: u64 = 0x11;
const DOMAIN_REORDER: u64 = 0x12;
const DOMAIN_CORRUPT: u64 = 0x13;
const DOMAIN_TRUNCATE: u64 = 0x14;
const DOMAIN_KILL: u64 = 0x15;

/// [`WireFaultInjector`] that executes a [`NetFaultPlan`]
/// deterministically. Share one instance (via `Arc`) across every
/// frame writer so the budgets are global to the run.
#[derive(Debug)]
pub struct NetInjector {
    plan: NetFaultPlan,
    drops: Budget,
    duplicates: Budget,
    reorders: Budget,
    corrupts: Budget,
    truncates: Budget,
    kills: Budget,
    connect_stalls: Budget,
    injected_drops: AtomicU64,
    injected_duplicates: AtomicU64,
    injected_reorders: AtomicU64,
    injected_corrupts: AtomicU64,
    injected_truncates: AtomicU64,
    injected_kills: AtomicU64,
    injected_connect_stalls: AtomicU64,
}

impl NetInjector {
    /// Build an injector executing `plan`.
    pub fn new(plan: NetFaultPlan) -> Self {
        NetInjector {
            drops: Budget::new(plan.drop_budget),
            duplicates: Budget::new(plan.duplicate_budget),
            reorders: Budget::new(plan.reorder_budget),
            corrupts: Budget::new(plan.corrupt_budget),
            truncates: Budget::new(plan.truncate_budget),
            kills: Budget::new(plan.kill_budget),
            connect_stalls: Budget::new(plan.connect_stall_budget),
            injected_drops: AtomicU64::new(0),
            injected_duplicates: AtomicU64::new(0),
            injected_reorders: AtomicU64::new(0),
            injected_corrupts: AtomicU64::new(0),
            injected_truncates: AtomicU64::new(0),
            injected_kills: AtomicU64::new(0),
            injected_connect_stalls: AtomicU64::new(0),
            plan,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Dropped frames injected so far.
    pub fn injected_drops(&self) -> u64 {
        self.injected_drops.load(Ordering::Relaxed)
    }

    /// Duplicated frames injected so far.
    pub fn injected_duplicates(&self) -> u64 {
        self.injected_duplicates.load(Ordering::Relaxed)
    }

    /// Reordered frames injected so far.
    pub fn injected_reorders(&self) -> u64 {
        self.injected_reorders.load(Ordering::Relaxed)
    }

    /// Corrupted frames injected so far.
    pub fn injected_corrupts(&self) -> u64 {
        self.injected_corrupts.load(Ordering::Relaxed)
    }

    /// Truncated frames injected so far.
    pub fn injected_truncates(&self) -> u64 {
        self.injected_truncates.load(Ordering::Relaxed)
    }

    /// Connection kills injected so far.
    pub fn injected_kills(&self) -> u64 {
        self.injected_kills.load(Ordering::Relaxed)
    }

    /// Stalled connect attempts injected so far.
    pub fn injected_connect_stalls(&self) -> u64 {
        self.injected_connect_stalls.load(Ordering::Relaxed)
    }

    /// Total faults injected across every class.
    pub fn injected_total(&self) -> u64 {
        self.injected_drops()
            + self.injected_duplicates()
            + self.injected_reorders()
            + self.injected_corrupts()
            + self.injected_truncates()
            + self.injected_kills()
            + self.injected_connect_stalls()
    }

    /// True once every fault budget is spent (or zero-rated) — after
    /// this point the network behaves perfectly and the system must
    /// converge to fault-free results.
    pub fn is_silent(&self) -> bool {
        let spent = |b: &Budget, rate: f64| rate <= 0.0 || b.0.load(Ordering::Relaxed) == 0;
        spent(&self.drops, self.plan.drop_rate)
            && spent(&self.duplicates, self.plan.duplicate_rate)
            && spent(&self.reorders, self.plan.reorder_rate)
            && spent(&self.corrupts, self.plan.corrupt_rate)
            && spent(&self.truncates, self.plan.truncate_rate)
            && spent(&self.kills, self.plan.kill_rate)
            && spent(
                &self.connect_stalls,
                if self.plan.connect_stall.is_some() {
                    1.0
                } else {
                    0.0
                },
            )
    }
}

impl WireFaultInjector for NetInjector {
    fn frame_fate(&self, peer: usize, counter: u64) -> FrameFate {
        let key = ((peer as u64) << 48) ^ counter;
        let seed = self.plan.seed;
        // Destructive fates roll first: a kill/truncate decision should
        // not be masked by a cheaper fate hitting the same frame.
        if roll(seed, DOMAIN_KILL, key) < self.plan.kill_rate && self.kills.take() {
            self.injected_kills.fetch_add(1, Ordering::Relaxed);
            return FrameFate::Kill;
        }
        if roll(seed, DOMAIN_TRUNCATE, key) < self.plan.truncate_rate && self.truncates.take() {
            self.injected_truncates.fetch_add(1, Ordering::Relaxed);
            return FrameFate::Truncate;
        }
        if roll(seed, DOMAIN_DROP, key) < self.plan.drop_rate && self.drops.take() {
            self.injected_drops.fetch_add(1, Ordering::Relaxed);
            return FrameFate::Drop;
        }
        if roll(seed, DOMAIN_CORRUPT, key) < self.plan.corrupt_rate && self.corrupts.take() {
            self.injected_corrupts.fetch_add(1, Ordering::Relaxed);
            return FrameFate::Corrupt;
        }
        if roll(seed, DOMAIN_REORDER, key) < self.plan.reorder_rate && self.reorders.take() {
            self.injected_reorders.fetch_add(1, Ordering::Relaxed);
            return FrameFate::HoldUntilNext;
        }
        if roll(seed, DOMAIN_DUPLICATE, key) < self.plan.duplicate_rate && self.duplicates.take() {
            self.injected_duplicates.fetch_add(1, Ordering::Relaxed);
            return FrameFate::Duplicate;
        }
        FrameFate::Deliver
    }

    fn connect_delay(&self, _peer: usize, _attempt: u32) -> Option<Duration> {
        let stall = self.plan.connect_stall?;
        if self.connect_stalls.take() {
            self.injected_connect_stalls.fetch_add(1, Ordering::Relaxed);
            Some(stall)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_delivers_everything() {
        let inj = NetInjector::new(NetFaultPlan::default());
        for counter in 0..100 {
            assert_eq!(inj.frame_fate(0, counter), FrameFate::Deliver);
        }
        assert_eq!(inj.injected_total(), 0);
        assert!(inj.is_silent());
        assert_eq!(inj.connect_delay(0, 0), None);
    }

    #[test]
    fn fates_are_deterministic_across_injectors() {
        let plan = NetFaultPlan {
            seed: 99,
            drop_rate: 0.2,
            duplicate_rate: 0.2,
            reorder_rate: 0.2,
            ..NetFaultPlan::default()
        };
        let a = NetInjector::new(plan);
        let b = NetInjector::new(plan);
        for peer in 0..3usize {
            for counter in 0..200u64 {
                assert_eq!(a.frame_fate(peer, counter), b.frame_fate(peer, counter));
            }
        }
        assert!(
            a.injected_total() > 0,
            "plan with 60% total rate never fired"
        );
        assert_eq!(a.injected_total(), b.injected_total());
    }

    #[test]
    fn budgets_exhaust_to_silence() {
        let plan = NetFaultPlan {
            seed: 5,
            drop_rate: 1.0,
            drop_budget: 3,
            ..NetFaultPlan::default()
        };
        let inj = NetInjector::new(plan);
        assert!(!inj.is_silent());
        let mut dropped = 0;
        for counter in 0..50 {
            if inj.frame_fate(0, counter) == FrameFate::Drop {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 3);
        assert_eq!(inj.injected_drops(), 3);
        assert!(inj.is_silent());
        assert_eq!(inj.frame_fate(0, 999), FrameFate::Deliver);
    }

    #[test]
    fn connect_stall_respects_budget() {
        let plan = NetFaultPlan {
            connect_stall: Some(Duration::from_millis(1)),
            connect_stall_budget: 2,
            ..NetFaultPlan::default()
        };
        let inj = NetInjector::new(plan);
        assert!(inj.connect_delay(0, 0).is_some());
        assert!(inj.connect_delay(1, 0).is_some());
        assert!(inj.connect_delay(0, 1).is_none());
        assert_eq!(inj.injected_connect_stalls(), 2);
        assert!(inj.is_silent());
    }

    #[test]
    fn destructive_fates_take_priority() {
        let plan = NetFaultPlan {
            seed: 1,
            kill_rate: 1.0,
            kill_budget: 1,
            drop_rate: 1.0,
            drop_budget: 1,
            ..NetFaultPlan::default()
        };
        let inj = NetInjector::new(plan);
        assert_eq!(inj.frame_fate(0, 0), FrameFate::Kill);
        assert_eq!(inj.frame_fate(0, 1), FrameFate::Drop);
        assert_eq!(inj.frame_fate(0, 2), FrameFate::Deliver);
    }

    #[test]
    fn injector_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetInjector>();
    }
}
