//! Seeded fault plans and the deterministic injector they drive.
//!
//! Determinism is the whole point: a fault decision must not depend
//! on thread scheduling, wall-clock time, or iteration order, or the
//! chaos test that reproduces a crash today will pass silently
//! tomorrow. Every roll here is therefore keyed on *content* — the
//! trace id being analysed, the worker making the attempt, the
//! per-shard message sequence number — mixed with the plan seed
//! through splitmix64. Budgets are the only shared mutable state, and
//! they only ever move one way (down), so exhaustion is deterministic
//! in aggregate even though *which* roll drains the last token can
//! race: after at most `budget` injections of a class, that class is
//! silent forever.

use std::sync::atomic::{AtomicU64, Ordering};

use sleuth_serve::FaultInjector;
use sleuth_trace::Trace;

/// splitmix64: tiny, high-quality 64-bit mixer (same construction the
/// serve crate uses for shard hashing).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a content key to a uniform probability in `[0, 1)`.
fn roll(seed: u64, domain: u64, key: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(domain) ^ splitmix64(key));
    // 53 mantissa bits → uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// What should go wrong, described declaratively. All rates are
/// probabilities in `[0, 1]`; every fault class also has a budget
/// (maximum number of injections) so any finite plan eventually falls
/// silent and the runtime can be asserted to converge. The default
/// plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every roll; two injectors with the same plan
    /// make identical decisions.
    pub seed: u64,
    /// Kill every RCA worker's very first attempt exactly once,
    /// regardless of rates — guarantees supervision coverage of each
    /// worker in a single run.
    pub kill_each_rca_worker_once: bool,
    /// Probability an RCA attempt on a given trace panics. Keyed on
    /// the trace id and fired only at `attempt == 0`, so a supervised
    /// retry of the same trace always succeeds.
    pub rca_panic_rate: f64,
    /// Maximum injected RCA panics (kill-once kills not counted).
    pub rca_panic_budget: u64,
    /// Probability an RCA attempt is delayed by `rca_delay_us`
    /// (simulates a slow pipeline / deadline pressure).
    pub rca_delay_rate: f64,
    /// Length of an injected RCA delay, µs.
    pub rca_delay_us: u64,
    /// Maximum injected RCA delays.
    pub rca_delay_budget: u64,
    /// Probability a shard panics on a message (keyed on the shard's
    /// message sequence number, so redelivery is not re-killed).
    pub shard_panic_rate: f64,
    /// Maximum injected shard panics.
    pub shard_panic_budget: u64,
    /// Probability a shard stalls for `shard_stall_us` on a message.
    pub shard_stall_rate: f64,
    /// Length of an injected shard stall, µs.
    pub shard_stall_us: u64,
    /// Maximum injected shard stalls.
    pub shard_stall_budget: u64,
    /// Probability the baseline refresher panics folding a trace
    /// (keyed on trace id; the refresher skips the trace on restart).
    pub refresh_panic_rate: f64,
    /// Maximum injected refresher panics.
    pub refresh_panic_budget: u64,
    /// Magnitude of clock skew reported to shards, µs. Even shards
    /// run fast (`+skew`), odd shards run slow (`-skew`), modelling
    /// hosts whose clocks drift in different directions.
    pub clock_skew_us: i64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            kill_each_rca_worker_once: false,
            rca_panic_rate: 0.0,
            rca_panic_budget: u64::MAX,
            rca_delay_rate: 0.0,
            rca_delay_us: 0,
            rca_delay_budget: u64::MAX,
            shard_panic_rate: 0.0,
            shard_panic_budget: u64::MAX,
            shard_stall_rate: 0.0,
            shard_stall_us: 0,
            shard_stall_budget: u64::MAX,
            refresh_panic_rate: 0.0,
            refresh_panic_budget: u64::MAX,
            clock_skew_us: 0,
        }
    }
}

/// Remaining injections of one fault class. `take()` atomically
/// claims a token; once drained the class is permanently silent.
#[derive(Debug)]
struct Budget(AtomicU64);

impl Budget {
    fn new(tokens: u64) -> Self {
        Budget(AtomicU64::new(tokens))
    }

    fn take(&self) -> bool {
        self.0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }
}

const MAX_TRACKED_SHARDS: usize = 64;

/// [`FaultInjector`] that executes a [`FaultPlan`] deterministically.
///
/// Shared across all runtime workers via `Arc`; every decision is a
/// pure function of (seed, fault domain, content key) gated by an
/// atomic budget. Injection counts are observable so tests can assert
/// both that faults actually fired and that the runtime absorbed
/// exactly that many.
#[derive(Debug)]
pub struct SeededInjector {
    plan: FaultPlan,
    rca_panics: Budget,
    rca_delays: Budget,
    shard_panics: Budget,
    shard_stalls: Budget,
    refresh_panics: Budget,
    /// Bit `w` set once worker `w`'s kill-once panic has fired.
    killed_workers: AtomicU64,
    /// Per-shard message sequence numbers (the content key for shard
    /// rolls — each delivery rolls fresh, so a redelivered batch is
    /// not deterministically re-killed into a livelock).
    shard_seq: [AtomicU64; MAX_TRACKED_SHARDS],
    injected_rca_panics: AtomicU64,
    injected_shard_panics: AtomicU64,
    injected_refresh_panics: AtomicU64,
    injected_stalls: AtomicU64,
}

impl SeededInjector {
    /// Build an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        SeededInjector {
            rca_panics: Budget::new(plan.rca_panic_budget),
            rca_delays: Budget::new(plan.rca_delay_budget),
            shard_panics: Budget::new(plan.shard_panic_budget),
            shard_stalls: Budget::new(plan.shard_stall_budget),
            refresh_panics: Budget::new(plan.refresh_panic_budget),
            killed_workers: AtomicU64::new(0),
            shard_seq: std::array::from_fn(|_| AtomicU64::new(0)),
            injected_rca_panics: AtomicU64::new(0),
            injected_shard_panics: AtomicU64::new(0),
            injected_refresh_panics: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            plan,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// RCA panics injected so far (kill-once kills included).
    pub fn injected_rca_panics(&self) -> u64 {
        self.injected_rca_panics.load(Ordering::Relaxed)
    }

    /// Shard panics injected so far.
    pub fn injected_shard_panics(&self) -> u64 {
        self.injected_shard_panics.load(Ordering::Relaxed)
    }

    /// Refresher panics injected so far.
    pub fn injected_refresh_panics(&self) -> u64 {
        self.injected_refresh_panics.load(Ordering::Relaxed)
    }

    /// Delays and stalls injected so far.
    pub fn injected_stalls(&self) -> u64 {
        self.injected_stalls.load(Ordering::Relaxed)
    }

    /// True once every fault budget is spent (or zero-rated) — the
    /// point after which the runtime must behave fault-free. Kill-once
    /// kills complete as soon as each worker has processed one trace.
    pub fn is_silent(&self) -> bool {
        let spent = |b: &Budget, rate: f64| rate <= 0.0 || b.0.load(Ordering::Relaxed) == 0;
        spent(&self.rca_panics, self.plan.rca_panic_rate)
            && spent(&self.rca_delays, self.plan.rca_delay_rate)
            && spent(&self.shard_panics, self.plan.shard_panic_rate)
            && spent(&self.shard_stalls, self.plan.shard_stall_rate)
            && spent(&self.refresh_panics, self.plan.refresh_panic_rate)
    }

    /// Atomically claim worker `worker`'s kill-once token.
    fn claim_kill_once(&self, worker: usize) -> bool {
        if !self.plan.kill_each_rca_worker_once || worker >= 64 {
            return false;
        }
        let bit = 1u64 << worker;
        self.killed_workers.fetch_or(bit, Ordering::Relaxed) & bit == 0
    }
}

// Fault domains keep rolls for different fault classes independent
// even when they share a content key (e.g. the same trace id).
const DOMAIN_RCA_PANIC: u64 = 1;
const DOMAIN_RCA_DELAY: u64 = 2;
const DOMAIN_SHARD_PANIC: u64 = 3;
const DOMAIN_SHARD_STALL: u64 = 4;
const DOMAIN_REFRESH_PANIC: u64 = 5;

impl FaultInjector for SeededInjector {
    fn rca_attempt(&self, worker: usize, trace: &Trace, attempt: u32) {
        // Only first attempts are sabotaged: a panic keyed on content
        // that also fired on the retry would quarantine every hit and
        // the "retry succeeds" recovery path would go untested.
        if attempt != 0 {
            return;
        }
        if self.claim_kill_once(worker) {
            self.injected_rca_panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: kill-once rca worker {worker}");
        }
        let key = trace.trace_id();
        if roll(self.plan.seed, DOMAIN_RCA_PANIC, key) < self.plan.rca_panic_rate
            && self.rca_panics.take()
        {
            self.injected_rca_panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected rca panic on trace {key:#x}");
        }
        if roll(self.plan.seed, DOMAIN_RCA_DELAY, key) < self.plan.rca_delay_rate
            && self.rca_delays.take()
        {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_micros(self.plan.rca_delay_us));
        }
    }

    fn shard_message(&self, shard: usize, span_count: usize) {
        // Shutdown/tick messages (span_count == 0) are never faulted:
        // killing the drain protocol tests nothing and can wedge
        // shutdown behind an empty retry loop.
        if span_count == 0 {
            return;
        }
        let seq = self.shard_seq[shard % MAX_TRACKED_SHARDS].fetch_add(1, Ordering::Relaxed);
        let key = ((shard as u64) << 32) ^ seq;
        if roll(self.plan.seed, DOMAIN_SHARD_PANIC, key) < self.plan.shard_panic_rate
            && self.shard_panics.take()
        {
            self.injected_shard_panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected shard {shard} panic at seq {seq}");
        }
        if roll(self.plan.seed, DOMAIN_SHARD_STALL, key) < self.plan.shard_stall_rate
            && self.shard_stalls.take()
        {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_micros(self.plan.shard_stall_us));
        }
    }

    fn refresh_fold(&self, trace: &Trace) {
        let key = trace.trace_id();
        if roll(self.plan.seed, DOMAIN_REFRESH_PANIC, key) < self.plan.refresh_panic_rate
            && self.refresh_panics.take()
        {
            self.injected_refresh_panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected refresh panic on trace {key:#x}");
        }
    }

    fn clock_skew_us(&self, shard: usize) -> i64 {
        if shard.is_multiple_of(2) {
            self.plan.clock_skew_us
        } else {
            -self.plan.clock_skew_us
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, Trace};

    fn trace(id: u64) -> Trace {
        let span = Span::builder(id, 1, "svc", "op").time(0, 10).build();
        Trace::assemble(vec![span]).expect("single-span trace")
    }

    #[test]
    fn rolls_are_deterministic_across_injectors() {
        let plan = FaultPlan {
            seed: 42,
            rca_panic_rate: 0.5,
            ..FaultPlan::default()
        };
        let a = SeededInjector::new(plan);
        let b = SeededInjector::new(plan);
        for id in 0..200u64 {
            let t = trace(id);
            let fa =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.rca_attempt(0, &t, 0)))
                    .is_err();
            let fb =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.rca_attempt(3, &t, 0)))
                    .is_err();
            // Same trace, same decision — worker id is not part of the key.
            assert_eq!(fa, fb, "divergent decision for trace {id}");
        }
        assert_eq!(a.injected_rca_panics(), b.injected_rca_panics());
        let hits = a.injected_rca_panics();
        // ~50% rate over 200 rolls: sanity-band, not exact.
        assert!((50..=150).contains(&hits), "implausible hit count {hits}");
    }

    #[test]
    fn retries_are_never_sabotaged() {
        let plan = FaultPlan {
            seed: 1,
            rca_panic_rate: 1.0,
            ..FaultPlan::default()
        };
        let inj = SeededInjector::new(plan);
        let t = trace(9);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.rca_attempt(0, &t, 0)
        }))
        .is_err());
        // attempt 1 (the supervised retry) must pass.
        inj.rca_attempt(0, &t, 1);
    }

    #[test]
    fn budgets_exhaust_to_silence() {
        let plan = FaultPlan {
            seed: 3,
            rca_panic_rate: 1.0,
            rca_panic_budget: 4,
            ..FaultPlan::default()
        };
        let inj = SeededInjector::new(plan);
        assert!(!inj.is_silent());
        let mut fired = 0;
        for id in 0..50u64 {
            let t = trace(id);
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.rca_attempt(0, &t, 0)))
                .is_err()
            {
                fired += 1;
            }
        }
        assert_eq!(fired, 4);
        assert_eq!(inj.injected_rca_panics(), 4);
        assert!(inj.is_silent());
    }

    #[test]
    fn kill_once_fires_once_per_worker_and_skips_budget() {
        let plan = FaultPlan {
            seed: 0,
            kill_each_rca_worker_once: true,
            ..FaultPlan::default()
        };
        let inj = SeededInjector::new(plan);
        for worker in 0..3usize {
            let t = trace(worker as u64);
            assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inj.rca_attempt(worker, &t, 0)
            }))
            .is_err());
            // Second trace on the same worker passes.
            let t2 = trace(100 + worker as u64);
            inj.rca_attempt(worker, &t2, 0);
        }
        assert_eq!(inj.injected_rca_panics(), 3);
    }

    #[test]
    fn shard_rolls_advance_with_sequence_and_skip_control_messages() {
        let plan = FaultPlan {
            seed: 11,
            shard_panic_rate: 1.0,
            shard_panic_budget: 1,
            ..FaultPlan::default()
        };
        let inj = SeededInjector::new(plan);
        // Control messages never roll (and never advance the budget).
        inj.shard_message(0, 0);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.shard_message(0, 5)
        }))
        .is_err());
        assert_eq!(inj.injected_shard_panics(), 1);
        // Budget spent: later messages sail through.
        inj.shard_message(0, 5);
        assert!(inj.is_silent());
    }

    #[test]
    fn clock_skew_alternates_sign_by_shard_parity() {
        let plan = FaultPlan {
            clock_skew_us: 250,
            ..FaultPlan::default()
        };
        let inj = SeededInjector::new(plan);
        assert_eq!(inj.clock_skew_us(0), 250);
        assert_eq!(inj.clock_skew_us(1), -250);
        assert_eq!(inj.clock_skew_us(2), 250);
    }

    #[test]
    fn injector_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SeededInjector>();
    }
}
