//! HDBSCAN* density clustering (§3.3.2), plus plain DBSCAN.
//!
//! Implemented from scratch over a precomputed [`DistanceMatrix`]:
//! core distances → mutual-reachability graph → minimum spanning tree
//! (Prim) → single-linkage dendrogram → condensed tree with
//! `min_cluster_size` → stability-based cluster extraction with
//! `cluster_selection_epsilon`.

use crate::distance::DistanceMatrix;
use sleuth_par::ThreadPool;

/// HDBSCAN hyper-parameters. The paper initialises
/// `min_cluster_size = 10`, `min_samples = 5`,
/// `cluster_selection_epsilon = 1` and then adjusts them "according to
/// the number and variation of the traces"; with the Eq. 1 distance
/// normalised to `[0, 1]`, an epsilon of 1 collapses everything, so this
/// implementation defaults epsilon to 0 and lets the pipeline adjust.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HdbscanParams {
    /// Smallest group treated as a cluster.
    pub min_cluster_size: usize,
    /// Neighbourhood size used for core distances.
    pub min_samples: usize,
    /// Splits occurring below this distance are not taken.
    pub cluster_selection_epsilon: f64,
    /// Permit the hierarchy root itself to be selected (off by default,
    /// as in reference implementations).
    pub allow_single_cluster: bool,
}

impl Default for HdbscanParams {
    fn default() -> Self {
        HdbscanParams {
            min_cluster_size: 10,
            min_samples: 5,
            cluster_selection_epsilon: 0.0,
            allow_single_cluster: false,
        }
    }
}

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Per-item cluster label; `-1` marks noise.
    pub labels: Vec<isize>,
}

impl Clustering {
    /// Number of clusters (excluding noise).
    pub fn n_clusters(&self) -> usize {
        self.labels
            .iter()
            .filter(|&&l| l >= 0)
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Item indices belonging to cluster `c`.
    pub fn members(&self, c: isize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Item indices labelled as noise.
    pub fn noise(&self) -> Vec<usize> {
        self.members(-1)
    }
}

/// Per-point core distances: distance to the k-th nearest neighbour
/// (k = `min_samples` clamped to `[1, n − 1]`, self excluded),
/// computed on the global pool. Empty when the matrix is.
pub fn core_distances(dist: &DistanceMatrix, min_samples: usize) -> Vec<f64> {
    core_distances_with(ThreadPool::global(), dist, min_samples)
}

/// [`core_distances`] on an explicit pool. Each point's neighbour scan
/// and sort is independent, so the parallel result is bit-identical to
/// the sequential one at any thread count.
pub fn core_distances_with(
    pool: &ThreadPool,
    dist: &DistanceMatrix,
    min_samples: usize,
) -> Vec<f64> {
    let n = dist.len();
    if n < 2 {
        return vec![0.0; n];
    }
    let k = min_samples.clamp(1, n - 1);
    let indices: Vec<usize> = (0..n).collect();
    pool.par_map(&indices, |&i| {
        let mut ds: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| dist.get(i, j)).collect();
        ds.sort_by(|a, b| a.partial_cmp(b).expect("distances are not NaN"));
        ds[k - 1]
    })
}

/// Run HDBSCAN* over a distance matrix.
pub fn hdbscan(dist: &DistanceMatrix, params: &HdbscanParams) -> Clustering {
    let n = dist.len();
    if n == 0 {
        return Clustering { labels: vec![] };
    }
    let mcs = params.min_cluster_size.max(2);
    if n < mcs {
        return Clustering {
            labels: vec![-1; n],
        };
    }

    // 1. Core distances (parallel across points).
    let core = core_distances(dist, params.min_samples);

    // 2–3. Prim's MST over mutual reachability distances.
    let mreach = |i: usize, j: usize| dist.get(i, j).max(core[i]).max(core[j]);
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for j in 1..n {
        best[j] = mreach(0, j);
        best_from[j] = 0;
    }
    for _ in 1..n {
        let (next, _) = best
            .iter()
            .enumerate()
            .filter(|(j, _)| !in_tree[*j])
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("some vertex remains");
        in_tree[next] = true;
        edges.push((best[next], best_from[next], next));
        for j in 0..n {
            if !in_tree[j] {
                let d = mreach(next, j);
                if d < best[j] {
                    best[j] = d;
                    best_from[j] = next;
                }
            }
        }
    }

    // 4. Single-linkage dendrogram via union-find over ascending edges.
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
    // Dendrogram nodes: 0..n leaves, internal nodes appended.
    let mut dendro_children: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut dendro_dist: Vec<f64> = vec![0.0; n];
    let mut dendro_size: Vec<usize> = vec![1; n];
    let mut uf_parent: Vec<usize> = (0..n).collect(); // union-find over points
    let mut uf_node: Vec<usize> = (0..n).collect(); // current dendrogram node per set
    fn find(uf: &mut [usize], mut x: usize) -> usize {
        while uf[x] != x {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        x
    }
    for (w, a, b) in edges {
        let ra = find(&mut uf_parent, a);
        let rb = find(&mut uf_parent, b);
        debug_assert_ne!(ra, rb, "MST edges never merge the same set twice");
        let na = uf_node[ra];
        let nb = uf_node[rb];
        let new = dendro_children.len();
        dendro_children.push(Some((na, nb)));
        dendro_dist.push(w);
        dendro_size.push(dendro_size[na] + dendro_size[nb]);
        uf_parent[rb] = ra;
        uf_node[ra] = new;
    }
    let root = dendro_children.len() - 1;

    // 5. Condense the tree.
    #[derive(Default)]
    struct Cond {
        parent: Vec<Option<usize>>,
        birth_lambda: Vec<f64>,
        children: Vec<Vec<usize>>,
        stability: Vec<f64>,
        /// Points that fell out of this cluster directly.
        points: Vec<Vec<usize>>,
    }
    impl Cond {
        fn new_cluster(&mut self, parent: Option<usize>, birth: f64) -> usize {
            self.parent.push(parent);
            self.birth_lambda.push(birth);
            self.children.push(Vec::new());
            self.stability.push(0.0);
            self.points.push(Vec::new());
            if let Some(p) = parent {
                let id = self.parent.len() - 1;
                self.children[p].push(id);
            }
            self.parent.len() - 1
        }
    }
    let mut cond = Cond::default();
    let root_cluster = cond.new_cluster(None, 0.0);

    // Collect all leaf points under a dendrogram node.
    let leaves_under = |node: usize| -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            match dendro_children[x] {
                None => out.push(x),
                Some((l, r)) => {
                    stack.push(l);
                    stack.push(r);
                }
            }
        }
        out
    };

    let lambda_of = |d: f64| 1.0 / d.max(1e-12);

    // Walk the dendrogram, tracking the condensed cluster each subtree
    // belongs to.
    let mut stack: Vec<(usize, usize)> = vec![(root, root_cluster)];
    while let Some((node, cluster)) = stack.pop() {
        let Some((l, r)) = dendro_children[node] else {
            // Isolated leaf inside a cluster: it leaves when the cluster
            // is exhausted; treated as falling out at its parent's merge
            // lambda, which was already accounted by the caller. A leaf
            // can only appear here as the dendrogram root (n == 1), which
            // mcs >= 2 already excluded.
            cond.points[cluster].push(node);
            continue;
        };
        let lambda = lambda_of(dendro_dist[node]);
        let (sl, sr) = (dendro_size[l], dendro_size[r]);
        if sl >= mcs && sr >= mcs {
            // True split: parent dies, two children are born.
            cond.stability[cluster] += (sl + sr) as f64 * (lambda - cond.birth_lambda[cluster]);
            let cl = cond.new_cluster(Some(cluster), lambda);
            let cr = cond.new_cluster(Some(cluster), lambda);
            stack.push((l, cl));
            stack.push((r, cr));
        } else if sl >= mcs {
            // r falls out of the cluster.
            for p in leaves_under(r) {
                cond.points[cluster].push(p);
                cond.stability[cluster] += lambda - cond.birth_lambda[cluster];
            }
            stack.push((l, cluster));
        } else if sr >= mcs {
            for p in leaves_under(l) {
                cond.points[cluster].push(p);
                cond.stability[cluster] += lambda - cond.birth_lambda[cluster];
            }
            stack.push((r, cluster));
        } else {
            // Cluster dissolves entirely.
            for p in leaves_under(node) {
                cond.points[cluster].push(p);
                cond.stability[cluster] += lambda - cond.birth_lambda[cluster];
            }
        }
    }

    // 6. Stability-based selection with epsilon.
    let n_clusters = cond.parent.len();
    let mut selected = vec![false; n_clusters];
    // Process bottom-up: children before parents (children have larger
    // ids by construction).
    let mut subtree_stability = cond.stability.clone();
    for c in (0..n_clusters).rev() {
        if cond.children[c].is_empty() {
            selected[c] = true;
            continue;
        }
        let child_sum: f64 = cond.children[c]
            .iter()
            .map(|&ch| subtree_stability[ch])
            .sum();
        let split_dist = 1.0 / cond.birth_lambda[cond.children[c][0]].max(1e-12);
        let is_root = c == root_cluster;
        let epsilon_veto = split_dist < params.cluster_selection_epsilon;
        let prefer_self = cond.stability[c] >= child_sum || epsilon_veto;
        if prefer_self && (!is_root || params.allow_single_cluster) {
            selected[c] = true;
            // Deselect the entire subtree below.
            let mut st = cond.children[c].clone();
            while let Some(x) = st.pop() {
                selected[x] = false;
                st.extend(cond.children[x].iter().copied());
            }
            subtree_stability[c] = cond.stability[c];
        } else {
            subtree_stability[c] = child_sum.max(cond.stability[c]);
        }
    }
    if !params.allow_single_cluster {
        selected[root_cluster] = false;
    }

    // 7. Label points with the deepest selected ancestor cluster.
    let mut labels = vec![-1isize; n];
    let mut next_label = 0isize;
    let mut label_of_cluster = vec![None::<isize>; n_clusters];
    for c in 0..n_clusters {
        if selected[c] {
            label_of_cluster[c] = Some(next_label);
            next_label += 1;
        }
    }
    for c in 0..n_clusters {
        // Find the nearest selected ancestor-or-self.
        let mut cur = Some(c);
        let mut label = None;
        while let Some(x) = cur {
            if let Some(l) = label_of_cluster[x] {
                label = Some(l);
                break;
            }
            cur = cond.parent[x];
        }
        if let Some(l) = label {
            for &p in &cond.points[c] {
                labels[p] = l;
            }
        }
    }

    Clustering { labels }
}

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighbourhood radius.
    pub eps: f64,
    /// Minimum neighbourhood size (self included) for a core point.
    pub min_points: usize,
}

/// Classic DBSCAN over a distance matrix.
pub fn dbscan(dist: &DistanceMatrix, params: &DbscanParams) -> Clustering {
    let n = dist.len();
    let mut labels = vec![-2isize; n]; // -2 = unvisited, -1 = noise
    let neighbours =
        |i: usize| -> Vec<usize> { (0..n).filter(|&j| dist.get(i, j) <= params.eps).collect() };
    let mut cluster = 0isize;
    for i in 0..n {
        if labels[i] != -2 {
            continue;
        }
        let ni = neighbours(i);
        if ni.len() < params.min_points {
            labels[i] = -1;
            continue;
        }
        labels[i] = cluster;
        let mut queue: Vec<usize> = ni;
        while let Some(q) = queue.pop() {
            if labels[q] == -1 {
                labels[q] = cluster;
            }
            if labels[q] != -2 {
                continue;
            }
            labels[q] = cluster;
            let nq = neighbours(q);
            if nq.len() >= params.min_points {
                queue.extend(nq);
            }
        }
        cluster += 1;
    }
    Clustering { labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix with two tight groups and optional noise points.
    fn two_blobs(group: usize, noise: usize) -> DistanceMatrix {
        let n = 2 * group + noise;
        DistanceMatrix::builder().build_from_fn(n, |i, j| {
            let ga = blob_of(i, group, noise);
            let gb = blob_of(j, group, noise);
            match (ga, gb) {
                (Some(a), Some(b)) if a == b => 0.05 + 0.001 * ((i + j) % 7) as f64,
                (Some(_), Some(_)) => 0.6,
                // True outliers: farther from everything than the blobs
                // are from each other.
                _ => 0.9 + 0.01 * ((i * 31 + j) % 7) as f64,
            }
        })
    }

    fn blob_of(i: usize, group: usize, _noise: usize) -> Option<usize> {
        if i < group {
            Some(0)
        } else if i < 2 * group {
            Some(1)
        } else {
            None
        }
    }

    #[test]
    fn hdbscan_separates_two_blobs() {
        let dm = two_blobs(12, 0);
        let c = hdbscan(
            &dm,
            &HdbscanParams {
                min_cluster_size: 5,
                min_samples: 3,
                ..HdbscanParams::default()
            },
        );
        assert_eq!(c.n_clusters(), 2);
        // All members of one blob share a label.
        let l0 = c.labels[0];
        assert!(c.labels[..12].iter().all(|&l| l == l0));
        let l1 = c.labels[12];
        assert_ne!(l0, l1);
        assert!(c.labels[12..].iter().all(|&l| l == l1));
    }

    #[test]
    fn hdbscan_marks_outliers_noise() {
        let dm = two_blobs(12, 3);
        let c = hdbscan(
            &dm,
            &HdbscanParams {
                min_cluster_size: 5,
                min_samples: 3,
                ..HdbscanParams::default()
            },
        );
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.noise().len(), 3);
        assert!(c.labels[24..].iter().all(|&l| l == -1));
    }

    #[test]
    fn hdbscan_small_input_all_noise() {
        let dm = two_blobs(2, 0);
        let c = hdbscan(&dm, &HdbscanParams::default());
        assert!(c.labels.iter().all(|&l| l == -1));
        assert_eq!(c.n_clusters(), 0);
    }

    #[test]
    fn hdbscan_empty_input() {
        let dm = DistanceMatrix::builder().build_from_fn(0, |_, _| 0.0);
        let c = hdbscan(&dm, &HdbscanParams::default());
        assert!(c.labels.is_empty());
    }

    #[test]
    fn hdbscan_three_blobs() {
        let n_per = 10;
        let dm = DistanceMatrix::builder().build_from_fn(3 * n_per, |i, j| {
            if i / n_per == j / n_per {
                0.02 + 0.001 * ((i + j) % 5) as f64
            } else {
                0.8
            }
        });
        let c = hdbscan(
            &dm,
            &HdbscanParams {
                min_cluster_size: 4,
                min_samples: 3,
                ..HdbscanParams::default()
            },
        );
        assert_eq!(c.n_clusters(), 3);
        for b in 0..3 {
            let lab = c.labels[b * n_per];
            assert!(lab >= 0);
            assert!(c.labels[b * n_per..(b + 1) * n_per]
                .iter()
                .all(|&l| l == lab));
        }
    }

    #[test]
    fn epsilon_merges_fine_splits() {
        // Two sub-blobs at distance 0.2, far from nothing else. With
        // epsilon 0.5 the split at 0.2 must be vetoed → single cluster
        // (allow_single_cluster enabled).
        let n_per = 8;
        let dm = DistanceMatrix::builder().build_from_fn(2 * n_per, |i, j| {
            if i / n_per == j / n_per {
                0.02
            } else {
                0.2
            }
        });
        let split = hdbscan(
            &dm,
            &HdbscanParams {
                min_cluster_size: 4,
                min_samples: 3,
                cluster_selection_epsilon: 0.0,
                allow_single_cluster: false,
            },
        );
        assert_eq!(split.n_clusters(), 2);
        let merged = hdbscan(
            &dm,
            &HdbscanParams {
                min_cluster_size: 4,
                min_samples: 3,
                cluster_selection_epsilon: 0.5,
                allow_single_cluster: true,
            },
        );
        assert_eq!(merged.n_clusters(), 1);
        assert!(merged.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn dbscan_two_blobs_and_noise() {
        let dm = two_blobs(8, 2);
        let c = dbscan(
            &dm,
            &DbscanParams {
                eps: 0.1,
                min_points: 4,
            },
        );
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.noise().len(), 2);
    }

    #[test]
    fn dbscan_all_noise_when_eps_tiny() {
        let dm = two_blobs(8, 0);
        let c = dbscan(
            &dm,
            &DbscanParams {
                eps: 0.001,
                min_points: 3,
            },
        );
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.noise().len(), 16);
    }

    #[test]
    fn clustering_accessors() {
        let c = Clustering {
            labels: vec![0, 0, 1, -1],
        };
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.members(0), vec![0, 1]);
        assert_eq!(c.members(1), vec![2]);
        assert_eq!(c.noise(), vec![3]);
    }

    #[test]
    fn core_distances_trivial_inputs() {
        let empty = DistanceMatrix::builder().build_from_fn(0, |_, _| 0.0);
        assert!(core_distances(&empty, 5).is_empty());
        let single = DistanceMatrix::builder().build_from_fn(1, |_, _| 0.0);
        assert_eq!(core_distances(&single, 5), vec![0.0]);
    }

    mod parallel_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Parallel core distances are bit-identical to sequential
            /// across thread counts {1, 2, 8}.
            #[test]
            fn prop_core_distances_bit_identical(
                seed_dists in proptest::collection::vec(0.0f64..1.0, 1..120),
                min_samples in 1usize..8,
            ) {
                // Derive a symmetric matrix of pseudo-random distances
                // from the sampled pool.
                let n = (1 + (seed_dists.len() as f64).sqrt() as usize).min(16);
                let dm = DistanceMatrix::builder()
                    .pool(&ThreadPool::new(1))
                    .build_from_fn(n, |i, j| seed_dists[(i * 31 + j * 17) % seed_dists.len()]);
                let seq = core_distances_with(&ThreadPool::new(1), &dm, min_samples);
                for threads in [2usize, 8] {
                    let par = core_distances_with(&ThreadPool::new(threads), &dm, min_samples);
                    let seq_bits: Vec<u64> = seq.iter().map(|d| d.to_bits()).collect();
                    let par_bits: Vec<u64> = par.iter().map(|d| d.to_bits()).collect();
                    prop_assert_eq!(par_bits, seq_bits, "threads = {}", threads);
                }
            }
        }
    }
}
