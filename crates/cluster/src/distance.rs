//! The extended weighted-Jaccard trace distance (Eq. 1).
//!
//! [`trace_distance`] is the clustering hot path: it runs once per
//! trace pair, O(n²) pairs per corpus. The kernel is a sorted-merge
//! over the flat id/weight arrays of [`WeightedTraceSet`] — index
//! arithmetic and `f64::min`/`max` only, no hashing and no pointer
//! chasing in the inner loop, with branch-free tail sums over the
//! leftover suffixes. [`trace_distance_hashed`] keeps the pre-refactor
//! `BTreeMap` merge as the reference baseline; the property suite
//! proves the two bit-identical on encoder-produced sets (integer
//! weights make every partial sum exact — see DESIGN.md §13).

use crate::traceset::{HashedTraceSet, WeightedTraceSet};
use sleuth_par::ThreadPool;

/// Distance between two weighted trace sets:
///
/// `d(A, B) = 1 − Σᵢ min(wᴬᵢ, wᴮᵢ) / Σᵢ max(wᴬᵢ, wᴮᵢ)`
///
/// over the union of elements, with absent elements weighted 0. The
/// result lies in `[0, 1]`; two empty sets are at distance 0.
pub fn trace_distance(a: &WeightedTraceSet, b: &WeightedTraceSet) -> f64 {
    let (ia, wa) = (a.ids(), a.weights());
    let (ib, wb) = (b.ids(), b.weights());
    let mut inter = 0.0f64;
    let mut union = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ia.len() && j < ib.len() {
        let (ka, kb) = (ia[i], ib[j]);
        if ka == kb {
            let (x, y) = (wa[i], wb[j]);
            inter += x.min(y);
            union += x.max(y);
            i += 1;
            j += 1;
        } else if ka < kb {
            union += wa[i];
            i += 1;
        } else {
            union += wb[j];
            j += 1;
        }
    }
    // One side is exhausted: the other's suffix joins the union as-is.
    for &w in &wa[i..] {
        union += w;
    }
    for &w in &wb[j..] {
        union += w;
    }
    if union <= 0.0 {
        0.0
    } else {
        1.0 - inter / union
    }
}

/// [`trace_distance`] over the reference [`HashedTraceSet`]
/// representation (pre-refactor `BTreeMap` iterator merge). Kept for
/// the bit-identity property suite and the hot-path benchmarks.
pub fn trace_distance_hashed(a: &HashedTraceSet, b: &HashedTraceSet) -> f64 {
    let mut inter = 0.0f64;
    let mut union = 0.0f64;
    let mut ita = a.elements().iter().peekable();
    let mut itb = b.elements().iter().peekable();
    loop {
        match (ita.peek(), itb.peek()) {
            (Some((&ka, &wa)), Some((&kb, &wb))) => {
                if ka == kb {
                    inter += wa.min(wb);
                    union += wa.max(wb);
                    ita.next();
                    itb.next();
                } else if ka < kb {
                    union += wa;
                    ita.next();
                } else {
                    union += wb;
                    itb.next();
                }
            }
            (Some((_, &wa)), None) => {
                union += wa;
                ita.next();
            }
            (None, Some((_, &wb))) => {
                union += wb;
                itb.next();
            }
            (None, None) => break,
        }
    }
    if union <= 0.0 {
        0.0
    } else {
        1.0 - inter / union
    }
}

/// A symmetric pairwise distance matrix over `n` items.
///
/// Built through [`DistanceMatrix::builder`]:
///
/// ```
/// # use sleuth_cluster::{DistanceMatrix, WeightedTraceSet};
/// let mut a = WeightedTraceSet::default();
/// a.add(1, 2.0);
/// let sets = vec![a.clone(), a];
/// let dm = DistanceMatrix::builder().build_from(&sets);
/// assert_eq!(dm.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Condensed upper triangle, row-major, excluding the diagonal.
    data: Vec<f64>,
}

/// Configures how a [`DistanceMatrix`] is computed (see
/// [`DistanceMatrix::builder`]). The single entry point replaces the
/// old `from_sets`/`from_fn`/`*_with` constructor family.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistanceMatrixBuilder<'p> {
    pool: Option<&'p ThreadPool>,
}

impl<'p> DistanceMatrixBuilder<'p> {
    /// Compute on an explicit thread pool instead of the global one.
    pub fn pool(self, pool: &ThreadPool) -> DistanceMatrixBuilder<'_> {
        DistanceMatrixBuilder { pool: Some(pool) }
    }

    /// Compute all pairwise [`trace_distance`]s over `sets`.
    pub fn build_from(self, sets: &[WeightedTraceSet]) -> DistanceMatrix {
        self.build_from_fn(sets.len(), |i, j| trace_distance(&sets[i], &sets[j]))
    }

    /// Build from an arbitrary symmetric distance function. The
    /// condensed upper triangle is partitioned into row bands claimed
    /// dynamically across the pool's threads; the result is
    /// bit-identical to the sequential fill at any thread count.
    pub fn build_from_fn(self, n: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> DistanceMatrix {
        let pool = match self.pool {
            Some(p) => p,
            None => ThreadPool::global(),
        };
        let data = pool.par_triangle(n, f);
        DistanceMatrix { n, data }
    }
}

impl DistanceMatrix {
    /// Start configuring a distance-matrix computation.
    pub fn builder() -> DistanceMatrixBuilder<'static> {
        DistanceMatrixBuilder::default()
    }

    /// Compute all pairwise [`trace_distance`]s on the global pool.
    #[deprecated(note = "use `DistanceMatrix::builder().build_from(sets)`")]
    pub fn from_sets(sets: &[WeightedTraceSet]) -> Self {
        Self::builder().build_from(sets)
    }

    /// Compute all pairwise [`trace_distance`]s on an explicit pool.
    #[deprecated(note = "use `DistanceMatrix::builder().pool(pool).build_from(sets)`")]
    pub fn from_sets_with(pool: &ThreadPool, sets: &[WeightedTraceSet]) -> Self {
        Self::builder().pool(pool).build_from(sets)
    }

    /// Build from an arbitrary symmetric distance function on the
    /// global pool.
    #[deprecated(note = "use `DistanceMatrix::builder().build_from_fn(n, f)`")]
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        Self::builder().build_from_fn(n, f)
    }

    /// Build from an arbitrary symmetric distance function on an
    /// explicit pool.
    #[deprecated(note = "use `DistanceMatrix::builder().pool(pool).build_from_fn(n, f)`")]
    pub fn from_fn_with(
        pool: &ThreadPool,
        n: usize,
        f: impl Fn(usize, usize) -> f64 + Sync,
    ) -> Self {
        Self::builder().pool(pool).build_from_fn(n, f)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        // Offset of row a in the condensed triangle.
        let row_start = a * self.n - a * (a + 1) / 2;
        self.data[row_start + (b - a - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traceset::TraceSetEncoder;
    use proptest::prelude::*;
    use sleuth_trace::{Span, Trace};

    fn set(pairs: &[(u32, f64)]) -> WeightedTraceSet {
        let mut s = WeightedTraceSet::default();
        for &(k, w) in pairs {
            s.add(k, w);
        }
        s
    }

    #[test]
    fn identity_distance_zero() {
        let a = set(&[(1, 10.0), (2, 5.0)]);
        assert_eq!(trace_distance(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_distance_one() {
        let a = set(&[(1, 10.0)]);
        let b = set(&[(2, 10.0)]);
        assert_eq!(trace_distance(&a, &b), 1.0);
    }

    #[test]
    fn known_value() {
        // inter = min(4,2)=2; union = max(4,2)+3 = 7 → d = 1 - 2/7
        let a = set(&[(1, 4.0)]);
        let b = set(&[(1, 2.0), (2, 3.0)]);
        assert!((trace_distance(&a, &b) - (1.0 - 2.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_distance_zero() {
        let e = WeightedTraceSet::default();
        assert_eq!(trace_distance(&e, &e), 0.0);
        let a = set(&[(1, 1.0)]);
        assert_eq!(trace_distance(&e, &a), 1.0);
    }

    #[test]
    fn high_duration_spans_dominate() {
        // Shared heavy element with differing light elements → small
        // distance; differing heavy elements → large distance.
        let heavy_shared_a = set(&[(1, 1000.0), (2, 1.0)]);
        let heavy_shared_b = set(&[(1, 1000.0), (3, 1.0)]);
        let heavy_diff_a = set(&[(4, 1000.0), (2, 1.0)]);
        let heavy_diff_b = set(&[(5, 1000.0), (2, 1.0)]);
        assert!(
            trace_distance(&heavy_shared_a, &heavy_shared_b)
                < trace_distance(&heavy_diff_a, &heavy_diff_b)
        );
    }

    #[test]
    fn matrix_layout_and_diagonal() {
        let sets = vec![set(&[(1, 1.0)]), set(&[(1, 1.0)]), set(&[(2, 1.0)])];
        let dm = DistanceMatrix::builder().build_from(&sets);
        assert_eq!(dm.len(), 3);
        assert_eq!(dm.get(0, 0), 0.0);
        assert_eq!(dm.get(0, 1), 0.0);
        assert_eq!(dm.get(1, 0), 0.0);
        assert_eq!(dm.get(0, 2), 1.0);
        assert_eq!(dm.get(2, 1), 1.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_match_builder() {
        let sets = vec![
            set(&[(1, 1.0)]),
            set(&[(2, 3.0)]),
            set(&[(1, 1.0), (2, 3.0)]),
        ];
        let built = DistanceMatrix::builder().build_from(&sets);
        assert_eq!(DistanceMatrix::from_sets(&sets), built);
        let pool = ThreadPool::new(2);
        assert_eq!(DistanceMatrix::from_sets_with(&pool, &sets), built);
        assert_eq!(
            DistanceMatrix::from_fn(sets.len(), |i, j| trace_distance(&sets[i], &sets[j])),
            built
        );
        assert_eq!(
            DistanceMatrix::from_fn_with(&pool, sets.len(), |i, j| trace_distance(
                &sets[i], &sets[j]
            )),
            built
        );
    }

    #[test]
    fn latency_shift_increases_distance_smoothly() {
        let enc = TraceSetEncoder::new(3);
        let mk = |d: u64| {
            Trace::assemble(vec![Span::builder(1, 1, "s", "op").time(0, d).build()]).unwrap()
        };
        let base = enc.encode(&mk(1000));
        let near = enc.encode(&mk(1100));
        let far = enc.encode(&mk(100_000));
        let dn = trace_distance(&base, &near);
        let df = trace_distance(&base, &far);
        assert!(dn < 0.2, "near distance {dn}");
        assert!(df > 0.9, "far distance {df}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The parallel triangle fill is bit-identical to the
        /// sequential one across thread counts.
        #[test]
        fn prop_parallel_matrix_bit_identical(
            weight_sets in proptest::collection::vec(
                proptest::collection::vec((0u32..30, 0.1f64..100.0), 0..10),
                0..24,
            ),
        ) {
            let sets: Vec<WeightedTraceSet> =
                weight_sets.iter().map(|pairs| set(pairs)).collect();
            let seq = DistanceMatrix::builder().pool(&ThreadPool::new(1)).build_from(&sets);
            for threads in [2usize, 8] {
                let par = DistanceMatrix::builder()
                    .pool(&ThreadPool::new(threads))
                    .build_from(&sets);
                prop_assert_eq!(par.len(), seq.len());
                let seq_bits: Vec<u64> = seq.data.iter().map(|d| d.to_bits()).collect();
                let par_bits: Vec<u64> = par.data.iter().map(|d| d.to_bits()).collect();
                prop_assert_eq!(par_bits, seq_bits, "threads = {}", threads);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Symmetry, range, and identity over random weighted sets.
        #[test]
        fn prop_metric_axioms(
            xs in proptest::collection::vec((0u32..20, 0.1f64..100.0), 0..12),
            ys in proptest::collection::vec((0u32..20, 0.1f64..100.0), 0..12),
        ) {
            let a = set(&xs);
            let b = set(&ys);
            let dab = trace_distance(&a, &b);
            let dba = trace_distance(&b, &a);
            prop_assert!((dab - dba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&dab));
            prop_assert!(trace_distance(&a, &a) == 0.0);
        }
    }
}
