//! Weighted trace sets (§3.3.1).
//!
//! A trace is encoded as a weighted set whose elements identify a span
//! by its service, operation name, kind, error status and the names of
//! its ancestors within distance `d_max` (capturing the calling path);
//! the element weight is the span duration, so long spans dominate the
//! similarity — "more sensitive to high-duration spans as they
//! contribute more significantly to the entire trace".

use std::collections::BTreeMap;

use sleuth_trace::Trace;

/// Hash of a span identifier tuple. Two spans share an element iff
/// their identifiers hash equally (64-bit FNV; collisions negligible at
/// corpus scale).
pub type ElementId = u64;

/// A trace encoded as a weighted set of span identifiers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightedTraceSet {
    elements: BTreeMap<ElementId, f64>,
}

impl WeightedTraceSet {
    /// The underlying `identifier → weight` map.
    pub fn elements(&self) -> &BTreeMap<ElementId, f64> {
        &self.elements
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Total weight `|S|` (Eq. 1).
    pub fn total_weight(&self) -> f64 {
        self.elements.values().sum()
    }

    /// Add weight to an element (merging duplicates by summation).
    pub fn add(&mut self, id: ElementId, weight: f64) {
        *self.elements.entry(id).or_insert(0.0) += weight;
    }
}

fn fnv1a_str(h: &mut u64, s: &str) {
    for b in s.as_bytes() {
        *h ^= *b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
    // Field separator.
    *h ^= 0x1f;
    *h = h.wrapping_mul(0x100000001b3);
}

/// Encodes traces into [`WeightedTraceSet`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSetEncoder {
    /// How many ancestor names join the span identifier.
    pub d_max: usize,
}

impl TraceSetEncoder {
    /// Encoder including ancestors within `d_max` hops.
    pub fn new(d_max: usize) -> Self {
        TraceSetEncoder { d_max }
    }

    /// Encode one trace.
    pub fn encode(&self, trace: &Trace) -> WeightedTraceSet {
        let mut set = WeightedTraceSet::default();
        for (i, span) in trace.iter() {
            let mut h = 0xcbf29ce484222325u64;
            fnv1a_str(&mut h, &span.service);
            fnv1a_str(&mut h, &span.name);
            fnv1a_str(&mut h, &span.kind.to_string());
            fnv1a_str(&mut h, if span.is_error() { "err" } else { "ok" });
            for (hop, anc) in trace.ancestors(i).into_iter().enumerate() {
                if hop >= self.d_max {
                    break;
                }
                fnv1a_str(&mut h, &trace.span(anc).name);
            }
            set.add(h, span.duration_us().max(1) as f64);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind, StatusCode};

    fn chain(names: &[&str], durs: &[u64], err_last: bool) -> Trace {
        let mut spans = Vec::new();
        for (i, (&n, &d)) in names.iter().zip(durs).enumerate() {
            let b = Span::builder(1, i as u64 + 1, format!("svc-{n}"), n)
                .kind(if i == 0 {
                    SpanKind::Server
                } else {
                    SpanKind::Client
                })
                .time(10 * i as u64, 10 * i as u64 + d);
            let b = if i > 0 { b.parent(i as u64) } else { b };
            let b = if err_last && i == names.len() - 1 {
                b.status(StatusCode::Error)
            } else {
                b
            };
            spans.push(b.build());
        }
        Trace::assemble(spans).unwrap()
    }

    #[test]
    fn identical_traces_identical_sets() {
        let enc = TraceSetEncoder::new(3);
        let a = chain(&["a", "b", "c"], &[100, 50, 20], false);
        let b = chain(&["a", "b", "c"], &[100, 50, 20], false);
        assert_eq!(enc.encode(&a), enc.encode(&b));
    }

    #[test]
    fn total_weight_is_duration_sum() {
        let enc = TraceSetEncoder::new(3);
        let t = chain(&["a", "b"], &[100, 40], false);
        assert_eq!(enc.encode(&t).total_weight(), 140.0);
    }

    #[test]
    fn error_status_changes_identifier() {
        let enc = TraceSetEncoder::new(3);
        let ok = enc.encode(&chain(&["a", "b"], &[100, 40], false));
        let err = enc.encode(&chain(&["a", "b"], &[100, 40], true));
        assert_ne!(ok, err);
        // Only the errored leaf's identifier changed.
        let shared = ok
            .elements()
            .keys()
            .filter(|k| err.elements().contains_key(*k))
            .count();
        assert_eq!(shared, 1);
    }

    #[test]
    fn calling_path_distinguishes_same_leaf() {
        // Same leaf op under different parents must differ when d_max>0…
        let enc = TraceSetEncoder::new(2);
        let via_b = chain(&["a", "b", "db.get"], &[100, 40, 10], false);
        let via_c = chain(&["a", "c", "db.get"], &[100, 40, 10], false);
        let sb = enc.encode(&via_b);
        let sc = enc.encode(&via_c);
        assert_ne!(sb, sc);

        // …but with d_max = 0 the leaf identifiers coincide.
        let enc0 = TraceSetEncoder::new(0);
        let sb0 = enc0.encode(&via_b);
        let sc0 = enc0.encode(&via_c);
        let shared = sb0
            .elements()
            .keys()
            .filter(|k| sc0.elements().contains_key(*k))
            .count();
        assert!(shared >= 2, "root and leaf should coincide, got {shared}");
    }

    #[test]
    fn duplicate_spans_merge_weights() {
        // Two identical sibling calls merge into one element with summed
        // weight.
        let spans = vec![
            Span::builder(1, 1, "p", "P").time(0, 100).build(),
            Span::builder(1, 2, "c", "get")
                .parent(1)
                .kind(SpanKind::Client)
                .time(10, 30)
                .build(),
            Span::builder(1, 3, "c", "get")
                .parent(1)
                .kind(SpanKind::Client)
                .time(40, 70)
                .build(),
        ];
        let t = Trace::assemble(spans).unwrap();
        let set = TraceSetEncoder::new(3).encode(&t);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_weight(), 100.0 + 20.0 + 30.0);
    }

    #[test]
    fn zero_duration_spans_get_unit_weight() {
        let t = Trace::assemble(vec![Span::builder(1, 1, "s", "op").time(5, 5).build()]).unwrap();
        let set = TraceSetEncoder::new(3).encode(&t);
        assert_eq!(set.total_weight(), 1.0);
    }
}
