//! Weighted trace sets (§3.3.1).
//!
//! A trace is encoded as a weighted set whose elements identify a span
//! by its service, operation name, kind, error status and the names of
//! its ancestors within distance `d_max` (capturing the calling path);
//! the element weight is the span duration, so long spans dominate the
//! similarity — "more sensitive to high-duration spans as they
//! contribute more significantly to the entire trace".
//!
//! # Hot-path representation
//!
//! [`WeightedTraceSet`] stores the set as two parallel flat arrays —
//! sorted dense element ids ([`ElementId`], `u32`) and their weights —
//! so the weighted-Jaccard distance
//! ([`trace_distance`](crate::distance::trace_distance)) is a
//! sorted-merge over contiguous memory with no hashing in the inner
//! loop. Element ids come from the process-global [`ElementInterner`],
//! which maps each distinct span-identifier tuple (all components
//! already interned `u32` symbols) to a dense id.
//!
//! The pre-refactor encoding — 64-bit FNV identifier hashes in a
//! `BTreeMap` — is retained as [`HashedTraceSet`] /
//! [`TraceSetEncoder::encode_hashed`]: it is the reference baseline the
//! property suite proves the flat encoding bit-identical against, and
//! the comparison point for `benches/hotpath.rs`. Bit-identity holds
//! because element weights are integer-valued (µs durations), and
//! integer-valued `f64` sums below 2⁵³ are exact, hence independent of
//! the summation order that differs between id order and hash order
//! (see DESIGN.md §13). The two encodings group spans identically
//! unless two distinct identifier tuples collide under 64-bit FNV —
//! negligible at corpus scale.

use std::collections::{BTreeMap, HashMap};
use std::sync::{OnceLock, PoisonError, RwLock};

use sleuth_trace::Trace;

/// Dense interned id of a span-identifier tuple, assigned first-seen
/// by the process-global [`ElementInterner`].
pub type ElementId = u32;

/// 64-bit FNV hash of a span identifier tuple, as used by the
/// reference [`HashedTraceSet`] encoding.
pub type HashedElementId = u64;

/// Process-global interner of span-identifier tuples.
///
/// Keys are the small `u32` sequences built by
/// [`TraceSetEncoder::encode`] (service symbol, name symbol, kind,
/// error flag, ancestor name symbols); values are dense [`ElementId`]s
/// assigned first-seen. Like the string
/// [`Interner`](sleuth_trace::Interner), the table only grows with the
/// number of *distinct* operations × calling paths, which the paper's
/// scale argument (§3.2.2) bounds far below span volume.
#[derive(Default)]
pub struct ElementInterner {
    inner: RwLock<HashMap<Box<[u32]>, ElementId>>,
}

impl ElementInterner {
    /// Create an empty interner (tests; production shares
    /// [`ElementInterner::global`]).
    pub fn new() -> Self {
        ElementInterner::default()
    }

    /// The process-wide element interner used by
    /// [`TraceSetEncoder::encode`].
    pub fn global() -> &'static ElementInterner {
        static GLOBAL: OnceLock<ElementInterner> = OnceLock::new();
        GLOBAL.get_or_init(ElementInterner::new)
    }

    /// Intern an identifier tuple, returning its stable dense id.
    pub fn intern(&self, key: &[u32]) -> ElementId {
        if let Some(&id) = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
        {
            return id;
        }
        let mut w = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = w.get(key) {
            return id;
        }
        let id = ElementId::try_from(w.len()).expect("element interner capacity exhausted");
        w.insert(key.into(), id);
        id
    }

    /// Number of distinct identifier tuples interned.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no tuples have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for ElementInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElementInterner")
            .field("len", &self.len())
            .finish()
    }
}

/// A trace encoded as a weighted set of span identifiers, stored as
/// parallel sorted-id / weight arrays (structure-of-arrays).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightedTraceSet {
    /// Distinct element ids, strictly increasing.
    ids: Vec<ElementId>,
    /// Weight of the element at the same index in `ids`.
    weights: Vec<f64>,
}

impl WeightedTraceSet {
    /// The sorted element ids.
    pub fn ids(&self) -> &[ElementId] {
        &self.ids
    }

    /// The element weights, parallel to [`WeightedTraceSet::ids`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Iterate `(id, weight)` pairs in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, f64)> + '_ {
        self.ids.iter().copied().zip(self.weights.iter().copied())
    }

    /// Weight of an element, or `None` if absent.
    pub fn weight_of(&self, id: ElementId) -> Option<f64> {
        self.ids.binary_search(&id).ok().map(|i| self.weights[i])
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total weight `|S|` (Eq. 1).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Add weight to an element (merging duplicates by summation).
    pub fn add(&mut self, id: ElementId, weight: f64) {
        match self.ids.binary_search(&id) {
            Ok(i) => self.weights[i] += weight,
            Err(i) => {
                self.ids.insert(i, id);
                self.weights.insert(i, weight);
            }
        }
    }

    /// Build from `(id, weight)` pairs in occurrence order, merging
    /// duplicate ids by summation. The sort is stable so duplicate
    /// weights accumulate in occurrence order, exactly like the
    /// reference `BTreeMap` encoding.
    fn from_pairs_in_order(mut pairs: Vec<(ElementId, f64)>) -> Self {
        pairs.sort_by_key(|&(id, _)| id);
        let mut ids: Vec<ElementId> = Vec::with_capacity(pairs.len());
        let mut weights: Vec<f64> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            if ids.last() == Some(&id) {
                *weights.last_mut().expect("parallel to ids") += w;
            } else {
                ids.push(id);
                weights.push(w);
            }
        }
        WeightedTraceSet { ids, weights }
    }
}

/// A trace encoded with 64-bit FNV identifier hashes in a `BTreeMap` —
/// the pre-refactor representation, kept as the reference baseline for
/// the bit-identity property suite and the hot-path benchmarks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HashedTraceSet {
    elements: BTreeMap<HashedElementId, f64>,
}

impl HashedTraceSet {
    /// The underlying `identifier hash → weight` map.
    pub fn elements(&self) -> &BTreeMap<HashedElementId, f64> {
        &self.elements
    }

    /// Number of distinct elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Total weight `|S|` (Eq. 1).
    pub fn total_weight(&self) -> f64 {
        self.elements.values().sum()
    }

    /// Add weight to an element (merging duplicates by summation).
    pub fn add(&mut self, id: HashedElementId, weight: f64) {
        *self.elements.entry(id).or_insert(0.0) += weight;
    }
}

fn fnv1a_str(h: &mut u64, s: &str) {
    for b in s.as_bytes() {
        *h ^= *b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
    // Field separator.
    *h ^= 0x1f;
    *h = h.wrapping_mul(0x100000001b3);
}

/// Encodes traces into [`WeightedTraceSet`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSetEncoder {
    /// How many ancestor names join the span identifier.
    pub d_max: usize,
}

impl TraceSetEncoder {
    /// Encoder including ancestors within `d_max` hops.
    pub fn new(d_max: usize) -> Self {
        TraceSetEncoder { d_max }
    }

    /// Encode one trace into the flat interned representation.
    ///
    /// Per span this pushes the already-interned identifier symbols
    /// into a small reused `u32` key and interns the tuple — no string
    /// hashing, no per-span allocation beyond the output arrays.
    pub fn encode(&self, trace: &Trace) -> WeightedTraceSet {
        let interner = ElementInterner::global();
        let mut key: Vec<u32> = Vec::with_capacity(4 + self.d_max);
        let mut pairs: Vec<(ElementId, f64)> = Vec::with_capacity(trace.len());
        for (i, span) in trace.iter() {
            key.clear();
            key.push(span.service_sym().id());
            key.push(span.name_sym().id());
            key.push(span.kind.index() as u32);
            key.push(u32::from(span.is_error()));
            let mut anc = trace.parent(i);
            let mut hop = 0;
            while hop < self.d_max {
                match anc {
                    Some(a) => {
                        key.push(trace.span(a).name_sym().id());
                        anc = trace.parent(a);
                        hop += 1;
                    }
                    None => break,
                }
            }
            pairs.push((interner.intern(&key), span.duration_us().max(1) as f64));
        }
        WeightedTraceSet::from_pairs_in_order(pairs)
    }

    /// Encode one trace with the reference FNV-hash representation
    /// (pre-refactor semantics, string hashing per span). Used by the
    /// bit-identity property suite and `benches/hotpath.rs`.
    pub fn encode_hashed(&self, trace: &Trace) -> HashedTraceSet {
        let mut set = HashedTraceSet::default();
        for (i, span) in trace.iter() {
            let mut h = 0xcbf29ce484222325u64;
            fnv1a_str(&mut h, &span.service);
            fnv1a_str(&mut h, &span.name);
            fnv1a_str(&mut h, &span.kind.to_string());
            fnv1a_str(&mut h, if span.is_error() { "err" } else { "ok" });
            for (hop, anc) in trace.ancestors(i).into_iter().enumerate() {
                if hop >= self.d_max {
                    break;
                }
                fnv1a_str(&mut h, &trace.span(anc).name);
            }
            set.add(h, span.duration_us().max(1) as f64);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind, StatusCode};

    fn chain(names: &[&str], durs: &[u64], err_last: bool) -> Trace {
        let mut spans = Vec::new();
        for (i, (&n, &d)) in names.iter().zip(durs).enumerate() {
            let b = Span::builder(1, i as u64 + 1, format!("svc-{n}"), n)
                .kind(if i == 0 {
                    SpanKind::Server
                } else {
                    SpanKind::Client
                })
                .time(10 * i as u64, 10 * i as u64 + d);
            let b = if i > 0 { b.parent(i as u64) } else { b };
            let b = if err_last && i == names.len() - 1 {
                b.status(StatusCode::Error)
            } else {
                b
            };
            spans.push(b.build());
        }
        Trace::assemble(spans).unwrap()
    }

    #[test]
    fn identical_traces_identical_sets() {
        let enc = TraceSetEncoder::new(3);
        let a = chain(&["a", "b", "c"], &[100, 50, 20], false);
        let b = chain(&["a", "b", "c"], &[100, 50, 20], false);
        assert_eq!(enc.encode(&a), enc.encode(&b));
        assert_eq!(enc.encode_hashed(&a), enc.encode_hashed(&b));
    }

    #[test]
    fn total_weight_is_duration_sum() {
        let enc = TraceSetEncoder::new(3);
        let t = chain(&["a", "b"], &[100, 40], false);
        assert_eq!(enc.encode(&t).total_weight(), 140.0);
        assert_eq!(enc.encode_hashed(&t).total_weight(), 140.0);
    }

    #[test]
    fn ids_are_sorted_and_distinct() {
        let enc = TraceSetEncoder::new(3);
        let t = chain(&["a", "b", "c", "d"], &[100, 50, 20, 5], false);
        let set = enc.encode(&t);
        assert!(set.ids().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(set.ids().len(), set.weights().len());
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn error_status_changes_identifier() {
        let enc = TraceSetEncoder::new(3);
        let ok = enc.encode(&chain(&["a", "b"], &[100, 40], false));
        let err = enc.encode(&chain(&["a", "b"], &[100, 40], true));
        assert_ne!(ok, err);
        // Only the errored leaf's identifier changed.
        let shared = ok
            .ids()
            .iter()
            .filter(|k| err.weight_of(**k).is_some())
            .count();
        assert_eq!(shared, 1);
    }

    #[test]
    fn calling_path_distinguishes_same_leaf() {
        // Same leaf op under different parents must differ when d_max>0…
        let enc = TraceSetEncoder::new(2);
        let via_b = chain(&["a", "b", "db.get"], &[100, 40, 10], false);
        let via_c = chain(&["a", "c", "db.get"], &[100, 40, 10], false);
        let sb = enc.encode(&via_b);
        let sc = enc.encode(&via_c);
        assert_ne!(sb, sc);

        // …but with d_max = 0 the leaf identifiers coincide.
        let enc0 = TraceSetEncoder::new(0);
        let sb0 = enc0.encode(&via_b);
        let sc0 = enc0.encode(&via_c);
        let shared = sb0
            .ids()
            .iter()
            .filter(|k| sc0.weight_of(**k).is_some())
            .count();
        assert!(shared >= 2, "root and leaf should coincide, got {shared}");
    }

    #[test]
    fn duplicate_spans_merge_weights() {
        // Two identical sibling calls merge into one element with summed
        // weight.
        let spans = vec![
            Span::builder(1, 1, "p", "P").time(0, 100).build(),
            Span::builder(1, 2, "c", "get")
                .parent(1)
                .kind(SpanKind::Client)
                .time(10, 30)
                .build(),
            Span::builder(1, 3, "c", "get")
                .parent(1)
                .kind(SpanKind::Client)
                .time(40, 70)
                .build(),
        ];
        let t = Trace::assemble(spans).unwrap();
        let set = TraceSetEncoder::new(3).encode(&t);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_weight(), 100.0 + 20.0 + 30.0);
        let hashed = TraceSetEncoder::new(3).encode_hashed(&t);
        assert_eq!(hashed.len(), 2);
        assert_eq!(hashed.total_weight(), 150.0);
    }

    #[test]
    fn zero_duration_spans_get_unit_weight() {
        let t = Trace::assemble(vec![Span::builder(1, 1, "s", "op").time(5, 5).build()]).unwrap();
        let set = TraceSetEncoder::new(3).encode(&t);
        assert_eq!(set.total_weight(), 1.0);
    }

    #[test]
    fn element_interner_is_idempotent() {
        let i = ElementInterner::new();
        assert!(i.is_empty());
        let a = i.intern(&[1, 2, 3]);
        let b = i.intern(&[1, 2, 3]);
        let c = i.intern(&[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn add_keeps_sorted_invariant() {
        let mut s = WeightedTraceSet::default();
        s.add(9, 1.0);
        s.add(3, 2.0);
        s.add(9, 0.5);
        s.add(6, 4.0);
        assert_eq!(s.ids(), &[3, 6, 9]);
        assert_eq!(s.weight_of(9), Some(1.5));
        assert_eq!(s.weight_of(4), None);
        assert_eq!(s.total_weight(), 7.5);
    }
}
