//! Trace clustering (§3.3).
//!
//! During an incident, hundreds or thousands of anomalous traces share a
//! handful of failure modes; clustering them and running RCA only on one
//! representative per cluster cuts ML inference by orders of magnitude.
//! This crate implements the paper's clustering stack from scratch:
//!
//! * [`traceset`] — encoding a trace as a **weighted set** of span
//!   identifiers (service, name, kind, error status, ancestor path up to
//!   `d_max`), with span duration as the weight,
//! * [`distance`] — the extended weighted-Jaccard distance of Eq. 1,
//!   computable in `O(m)` per pair (vs `O(m² log² m)` for tree edit
//!   distance),
//! * [`hdbscan`](mod@hdbscan) — the HDBSCAN* density clustering algorithm
//!   (mutual-reachability MST → condensed tree → stability-based
//!   extraction with `cluster_selection_epsilon`), plus a plain DBSCAN,
//! * [`representative`] — geometric-median cluster representatives.
//!
//! # Example
//!
//! ```
//! use sleuth_cluster::{DistanceMatrix, HdbscanParams, TraceSetEncoder};
//! use sleuth_trace::{Span, Trace};
//!
//! # fn t(id: u64, d: u64) -> Trace {
//! #     Trace::assemble(vec![Span::builder(id, 1, "s", "op").time(0, d).build()]).unwrap()
//! # }
//! let encoder = TraceSetEncoder::new(3);
//! let sets: Vec<_> = [t(1, 100), t(2, 101), t(3, 90_000)]
//!     .iter()
//!     .map(|tr| encoder.encode(tr))
//!     .collect();
//! let dm = DistanceMatrix::builder().build_from(&sets);
//! assert!(dm.get(0, 1) < dm.get(0, 2));
//! ```

pub mod distance;
pub mod hdbscan;
pub mod representative;
pub mod ted;
pub mod traceset;

pub use distance::{trace_distance, trace_distance_hashed, DistanceMatrix, DistanceMatrixBuilder};
pub use hdbscan::{
    core_distances, core_distances_with, dbscan, hdbscan, Clustering, DbscanParams, HdbscanParams,
};
pub use representative::geometric_median;
pub use ted::{normalized_ted, tree_edit_distance, OrderedTree};
pub use traceset::{ElementId, ElementInterner, HashedTraceSet, TraceSetEncoder, WeightedTraceSet};
