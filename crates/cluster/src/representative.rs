//! Cluster representatives (§3.3.2).
//!
//! After clustering, the trace with the minimum total distance to all
//! other members — the geometric median — represents the cluster; its
//! root causes are generalised to the whole cluster.

use crate::distance::DistanceMatrix;
use crate::hdbscan::Clustering;

/// Index (within `members`) of the geometric median: the member with the
/// minimal sum of distances to all other members. Ties resolve to the
/// lower index.
///
/// Returns `None` for an empty member list.
pub fn geometric_median(dist: &DistanceMatrix, members: &[usize]) -> Option<usize> {
    members
        .iter()
        .map(|&i| {
            let total: f64 = members.iter().map(|&j| dist.get(i, j)).sum();
            (i, total)
        })
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("distances are not NaN")
                .then(a.0.cmp(&b.0))
        })
        .map(|(i, _)| i)
}

/// One representative per cluster of a [`Clustering`], as
/// `(cluster_label, representative_item)` pairs ordered by label.
pub fn representatives(dist: &DistanceMatrix, clustering: &Clustering) -> Vec<(isize, usize)> {
    let mut out = Vec::new();
    for c in 0..clustering.n_clusters() as isize {
        let members = clustering.members(c);
        if let Some(rep) = geometric_median(dist, &members) {
            out.push((c, rep));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_line() {
        // Points on a line at 0, 1, 2, 3, 10 — point 1 is the median of
        // {0, 1, 2}; the far point 10 pulls the full median to 2.
        let pos = [0.0f64, 1.0, 2.0, 3.0, 10.0];
        let dm = DistanceMatrix::builder().build_from_fn(5, |i, j| (pos[i] - pos[j]).abs());
        assert_eq!(geometric_median(&dm, &[0, 1, 2]), Some(1));
        assert_eq!(geometric_median(&dm, &[0, 1, 2, 3, 4]), Some(2));
    }

    #[test]
    fn median_of_singleton_and_empty() {
        let dm = DistanceMatrix::builder().build_from_fn(3, |_, _| 1.0);
        assert_eq!(geometric_median(&dm, &[2]), Some(2));
        assert_eq!(geometric_median(&dm, &[]), None);
    }

    #[test]
    fn representatives_per_cluster() {
        let pos = [0.0f64, 0.1, 0.2, 5.0, 5.1, 5.2];
        let dm = DistanceMatrix::builder().build_from_fn(6, |i, j| (pos[i] - pos[j]).abs());
        let clustering = Clustering {
            labels: vec![0, 0, 0, 1, 1, 1],
        };
        let reps = representatives(&dm, &clustering);
        assert_eq!(reps, vec![(0, 1), (1, 4)]);
    }

    #[test]
    fn ties_resolve_deterministically() {
        let dm = DistanceMatrix::builder().build_from_fn(2, |_, _| 1.0);
        assert_eq!(geometric_median(&dm, &[0, 1]), Some(0));
    }
}
