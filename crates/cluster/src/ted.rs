//! Tree edit distance (Zhang–Shasha), the natural-but-slow trace
//! distance the paper argues against (§3.3.1).
//!
//! Traces are ordered, labelled trees, so tree edit distance (TED) is
//! the textbook similarity measure. The paper rejects it because even
//! the state-of-the-art APTED implementation costs
//! `O(m² log² m)`–`O(m⁴)` per pair, which is intractable for
//! thousand-span traces. This module implements the classic
//! Zhang–Shasha algorithm (`O(m² · min(depth, leaves)²)` time, `O(m²)`
//! space) so the claim can be measured directly against the `O(m)`
//! weighted-Jaccard distance (see the `ablation_distance` bench).

use sleuth_trace::Trace;

/// A labelled ordered tree in post-order form, ready for Zhang–Shasha.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedTree {
    /// Node labels in post-order.
    labels: Vec<u64>,
    /// `l(i)`: post-order index of the leftmost leaf of the subtree
    /// rooted at post-order node `i`.
    leftmost: Vec<usize>,
    /// Post-order indices of the keyroots (nodes with a left sibling,
    /// plus the root), ascending.
    keyroots: Vec<usize>,
}

fn fnv1a(s: &str, h: &mut u64) {
    for b in s.as_bytes() {
        *h ^= *b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
    *h ^= 0x1f;
    *h = h.wrapping_mul(0x100000001b3);
}

impl OrderedTree {
    /// Convert a trace into an ordered tree labelled by
    /// `(service, name, kind, error)` — the same identity fields the
    /// weighted-Jaccard encoding uses.
    pub fn from_trace(trace: &Trace) -> Self {
        // Post-order traversal.
        let mut post: Vec<usize> = Vec::with_capacity(trace.len());
        fn rec(trace: &Trace, i: usize, post: &mut Vec<usize>) {
            for &c in trace.children(i) {
                rec(trace, c, post);
            }
            post.push(i);
        }
        rec(trace, trace.root(), &mut post);

        let mut post_index = vec![0usize; trace.len()];
        for (pi, &ti) in post.iter().enumerate() {
            post_index[ti] = pi;
        }

        let labels = post
            .iter()
            .map(|&ti| {
                let s = trace.span(ti);
                let mut h = 0xcbf29ce484222325u64;
                fnv1a(&s.service, &mut h);
                fnv1a(&s.name, &mut h);
                fnv1a(&s.kind.to_string(), &mut h);
                fnv1a(if s.is_error() { "e" } else { "o" }, &mut h);
                h
            })
            .collect();

        // Leftmost leaf per post-order node.
        let mut leftmost = vec![0usize; trace.len()];
        for (pi, &ti) in post.iter().enumerate() {
            let mut cur = ti;
            while let Some(&first) = trace.children(cur).first() {
                cur = first;
            }
            leftmost[pi] = post_index[cur];
        }

        // Keyroots: last node of each distinct leftmost value.
        let mut keyroots = Vec::new();
        for pi in 0..post.len() {
            let is_keyroot = (pi + 1..post.len()).all(|q| leftmost[q] != leftmost[pi]);
            if is_keyroot {
                keyroots.push(pi);
            }
        }

        OrderedTree {
            labels,
            leftmost,
            keyroots,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the tree is empty (never true for assembled traces).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Zhang–Shasha tree edit distance with unit costs (insert, delete,
/// relabel all cost 1).
// The Zhang–Shasha recurrence is written in its textbook index form;
// iterator rewrites of the DP loops obscure the `fd`/`treedist` offsets.
#[allow(clippy::needless_range_loop)]
pub fn tree_edit_distance(a: &OrderedTree, b: &OrderedTree) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut treedist = vec![vec![0usize; m]; n];
    // Forest-distance scratch: (n+1) x (m+1).
    let mut fd = vec![vec![0usize; m + 1]; n + 1];

    for &kr_a in &a.keyroots {
        for &kr_b in &b.keyroots {
            let la = a.leftmost[kr_a];
            let lb = b.leftmost[kr_b];
            // fd indices are offsets from (la-1, lb-1).
            fd[0][0] = 0;
            for i in la..=kr_a {
                fd[i - la + 1][0] = fd[i - la][0] + 1;
            }
            for j in lb..=kr_b {
                fd[0][j - lb + 1] = fd[0][j - lb] + 1;
            }
            for i in la..=kr_a {
                for j in lb..=kr_b {
                    let (ii, jj) = (i - la + 1, j - lb + 1);
                    if a.leftmost[i] == la && b.leftmost[j] == lb {
                        // Both forests are whole trees.
                        let relabel = if a.labels[i] == b.labels[j] { 0 } else { 1 };
                        let d = (fd[ii - 1][jj] + 1)
                            .min(fd[ii][jj - 1] + 1)
                            .min(fd[ii - 1][jj - 1] + relabel);
                        fd[ii][jj] = d;
                        treedist[i][j] = d;
                    } else {
                        let ta = a.leftmost[i].saturating_sub(la);
                        let tb = b.leftmost[j].saturating_sub(lb);
                        let d = (fd[ii - 1][jj] + 1)
                            .min(fd[ii][jj - 1] + 1)
                            .min(fd[ta][tb] + treedist[i][j]);
                        fd[ii][jj] = d;
                    }
                }
            }
        }
    }
    treedist[n - 1][m - 1]
}

/// Normalised TED in `[0, 1]`: `ted / (|a| + |b|)`.
pub fn normalized_ted(a: &OrderedTree, b: &OrderedTree) -> f64 {
    let denom = a.len() + b.len();
    if denom == 0 {
        0.0
    } else {
        tree_edit_distance(a, b) as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind, StatusCode};

    fn chain(names: &[&str]) -> Trace {
        let spans: Vec<Span> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let b = Span::builder(1, i as u64 + 1, format!("s-{n}"), *n)
                    .time(i as u64, 100 - i as u64);
                if i > 0 {
                    b.parent(i as u64).build()
                } else {
                    b.build()
                }
            })
            .collect();
        Trace::assemble(spans).unwrap()
    }

    fn star(root: &str, leaves: &[&str]) -> Trace {
        let mut spans = vec![Span::builder(1, 1, format!("s-{root}"), root)
            .time(0, 100)
            .build()];
        for (i, l) in leaves.iter().enumerate() {
            spans.push(
                Span::builder(1, 2 + i as u64, format!("s-{l}"), *l)
                    .parent(1)
                    .kind(SpanKind::Client)
                    .time(10 + i as u64, 20 + i as u64)
                    .build(),
            );
        }
        Trace::assemble(spans).unwrap()
    }

    #[test]
    fn identical_trees_distance_zero() {
        let a = OrderedTree::from_trace(&chain(&["a", "b", "c"]));
        let b = OrderedTree::from_trace(&chain(&["a", "b", "c"]));
        assert_eq!(tree_edit_distance(&a, &b), 0);
        assert_eq!(normalized_ted(&a, &b), 0.0);
    }

    #[test]
    fn single_relabel_costs_one() {
        let a = OrderedTree::from_trace(&chain(&["a", "b", "c"]));
        let b = OrderedTree::from_trace(&chain(&["a", "b", "x"]));
        assert_eq!(tree_edit_distance(&a, &b), 1);
    }

    #[test]
    fn single_insert_costs_one() {
        let a = OrderedTree::from_trace(&chain(&["a", "b"]));
        let b = OrderedTree::from_trace(&chain(&["a", "b", "c"]));
        assert_eq!(tree_edit_distance(&a, &b), 1);
    }

    #[test]
    fn disjoint_trees_cost_full_rewrite() {
        let a = OrderedTree::from_trace(&chain(&["a", "b"]));
        let b = OrderedTree::from_trace(&chain(&["x", "y"]));
        assert_eq!(tree_edit_distance(&a, &b), 2);
    }

    #[test]
    fn structure_matters() {
        // Same label multiset, different shape: chain vs star.
        let a = OrderedTree::from_trace(&chain(&["r", "p", "q"]));
        let b = OrderedTree::from_trace(&star("r", &["p", "q"]));
        assert!(tree_edit_distance(&a, &b) > 0);
    }

    #[test]
    fn error_status_changes_label() {
        let healthy = chain(&["a", "b"]);
        let mut spans: Vec<Span> = healthy.spans().to_vec();
        spans[1].status = StatusCode::Error;
        let errored = Trace::assemble(spans).unwrap();
        let ta = OrderedTree::from_trace(&healthy);
        let tb = OrderedTree::from_trace(&errored);
        assert_eq!(tree_edit_distance(&ta, &tb), 1);
    }

    #[test]
    fn symmetry_and_triangle_on_samples() {
        let trees: Vec<OrderedTree> = [
            chain(&["a", "b", "c"]),
            chain(&["a", "x", "c"]),
            star("a", &["b", "c", "d"]),
            star("a", &["b"]),
        ]
        .iter()
        .map(OrderedTree::from_trace)
        .collect();
        for i in 0..trees.len() {
            assert_eq!(tree_edit_distance(&trees[i], &trees[i]), 0);
            for j in 0..trees.len() {
                let dij = tree_edit_distance(&trees[i], &trees[j]);
                let dji = tree_edit_distance(&trees[j], &trees[i]);
                assert_eq!(dij, dji, "symmetry {i},{j}");
                for k in 0..trees.len() {
                    let dik = tree_edit_distance(&trees[i], &trees[k]);
                    let dkj = tree_edit_distance(&trees[k], &trees[j]);
                    assert!(dij <= dik + dkj, "triangle {i},{j},{k}");
                }
            }
        }
    }

    #[test]
    fn normalized_ted_bounded() {
        let a = OrderedTree::from_trace(&chain(&["a", "b", "c", "d"]));
        let b = OrderedTree::from_trace(&star("x", &["y", "z"]));
        let d = normalized_ted(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }
}
