//! Reliable, exactly-once delivery of `Data` frames over a lossy
//! transport.
//!
//! The chaos layer can drop, duplicate, reorder, and corrupt frames;
//! the fault-transparency gate demands that the verdict stream still
//! comes out *identical* to a fault-free run. That forces a small
//! ARQ protocol on top of the raw frame codec:
//!
//! * Every application message gets a per-session sequence number
//!   ([`SendChannel::stage`]) and is retained until cumulatively
//!   acknowledged ([`SendChannel::ack`]).
//! * The receiver ([`RecvChannel::accept`]) delivers messages in
//!   sequence order exactly once: duplicates are dropped, early
//!   frames are parked in a bounded reorder buffer, and a gap
//!   triggers a `Nack { expected }` so the sender can resend.
//! * Either side can replay its unacked tail at any time (reconnect,
//!   ack stall); replays are harmless because the receiver dedups.
//!
//! Sessions survive reconnects: the channels live with the logical
//! peer, not the socket, and a `Hello { resume: true }` reattaches
//! them.

use std::collections::{BTreeMap, VecDeque};

use crate::error::WireError;
use crate::frame::{Frame, Msg};

/// Sender half: assigns sequence numbers and retains unacked messages
/// for replay.
#[derive(Debug)]
pub struct SendChannel {
    next_seq: u64,
    unacked: VecDeque<(u64, Msg)>,
    cap: usize,
}

impl SendChannel {
    /// Channel retaining at most `cap` unacked messages.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "send channel capacity must be positive");
        SendChannel {
            next_seq: 1,
            unacked: VecDeque::new(),
            cap,
        }
    }

    /// Assign the next sequence number to `msg` and retain it for
    /// replay. Fails with [`WireError::ResendOverflow`] when the peer
    /// has stopped acking and the retention buffer is full.
    pub fn stage(&mut self, msg: Msg) -> Result<Frame, WireError> {
        if self.unacked.len() >= self.cap {
            return Err(WireError::ResendOverflow { cap: self.cap });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked.push_back((seq, msg.clone()));
        Ok(Frame::Data { seq, msg })
    }

    /// Apply a cumulative ack: forget everything with `seq <= upto`.
    /// Returns whether any message was newly acknowledged.
    pub fn ack(&mut self, upto: u64) -> bool {
        let before = self.unacked.len();
        while matches!(self.unacked.front(), Some((seq, _)) if *seq <= upto) {
            self.unacked.pop_front();
        }
        self.unacked.len() != before
    }

    /// Frames to replay from `seq` onward (for a `Nack`).
    pub fn resend_from(&self, seq: u64) -> Vec<Frame> {
        self.unacked
            .iter()
            .filter(|(s, _)| *s >= seq)
            .map(|(s, m)| Frame::Data {
                seq: *s,
                msg: m.clone(),
            })
            .collect()
    }

    /// Every unacked frame, oldest first (reconnect / ack-stall replay).
    pub fn unacked_frames(&self) -> Vec<Frame> {
        self.resend_from(0)
    }

    /// Unacked messages currently retained.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Oldest unacked sequence number (`None` when fully acked).
    /// Watching this stand still is how senders detect an ack stall
    /// (e.g. the frame carrying it was dropped) and trigger a resend.
    pub fn first_unacked(&self) -> Option<u64> {
        self.unacked.front().map(|(seq, _)| *seq)
    }

    /// Sequence number the next staged message will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// What [`RecvChannel::accept`] decided about one incoming frame.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvOutcome {
    /// In-order delivery: these messages (the new one plus any parked
    /// successors it unblocked) are now delivered, in sequence order.
    Deliver(Vec<Msg>),
    /// Already delivered; dropped. Re-ack so the sender stops
    /// replaying it.
    Duplicate,
    /// Out of order: the frame was parked (or dropped on overflow) and
    /// the sender should resend from `expected`.
    Gap {
        /// First sequence number not yet received.
        expected: u64,
        /// Whether the reorder buffer overflowed and the frame was
        /// dropped rather than parked (a later resend recovers it).
        overflow: bool,
    },
}

/// Receiver half: in-order, exactly-once delivery with a bounded
/// reorder buffer.
#[derive(Debug)]
pub struct RecvChannel {
    expected: u64,
    pending: BTreeMap<u64, Msg>,
    cap: usize,
}

impl RecvChannel {
    /// Channel parking at most `cap` out-of-order messages.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "recv channel capacity must be positive");
        RecvChannel {
            expected: 1,
            pending: BTreeMap::new(),
            cap,
        }
    }

    /// Classify one incoming `Data` frame.
    pub fn accept(&mut self, seq: u64, msg: Msg) -> RecvOutcome {
        if seq < self.expected || self.pending.contains_key(&seq) {
            return RecvOutcome::Duplicate;
        }
        if seq > self.expected {
            let overflow = self.pending.len() >= self.cap;
            if !overflow {
                self.pending.insert(seq, msg);
            }
            return RecvOutcome::Gap {
                expected: self.expected,
                overflow,
            };
        }
        // seq == expected: deliver it plus any contiguous parked run.
        let mut out = vec![msg];
        self.expected += 1;
        while let Some(next) = self.pending.remove(&self.expected) {
            out.push(next);
            self.expected += 1;
        }
        RecvOutcome::Deliver(out)
    }

    /// Cumulative ack level: the highest sequence number delivered
    /// in order (`None` before anything arrived).
    pub fn ack_level(&self) -> Option<u64> {
        if self.expected > 1 {
            Some(self.expected - 1)
        } else {
            None
        }
    }

    /// First sequence number not yet received.
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(n: u64) -> Msg {
        Msg::Tick { now_us: n }
    }

    fn seq_of(frame: &Frame) -> u64 {
        match frame {
            Frame::Data { seq, .. } => *seq,
            other => panic!("not a data frame: {other:?}"),
        }
    }

    #[test]
    fn in_order_delivery_and_acks() {
        let mut tx = SendChannel::new(8);
        let mut rx = RecvChannel::new(8);
        for i in 1..=3u64 {
            let frame = tx.stage(tick(i)).unwrap();
            assert_eq!(seq_of(&frame), i);
            assert_eq!(rx.accept(i, tick(i)), RecvOutcome::Deliver(vec![tick(i)]));
        }
        assert_eq!(rx.ack_level(), Some(3));
        assert!(tx.ack(3));
        assert_eq!(tx.unacked_len(), 0);
        assert!(!tx.ack(3)); // idempotent
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rx = RecvChannel::new(8);
        assert!(matches!(rx.accept(1, tick(1)), RecvOutcome::Deliver(_)));
        assert_eq!(rx.accept(1, tick(1)), RecvOutcome::Duplicate);
        // A parked out-of-order frame also dedups.
        assert!(matches!(rx.accept(3, tick(3)), RecvOutcome::Gap { .. }));
        assert_eq!(rx.accept(3, tick(3)), RecvOutcome::Duplicate);
    }

    #[test]
    fn reorder_buffer_heals_gaps() {
        let mut rx = RecvChannel::new(8);
        assert_eq!(
            rx.accept(2, tick(2)),
            RecvOutcome::Gap {
                expected: 1,
                overflow: false
            }
        );
        assert_eq!(
            rx.accept(1, tick(1)),
            RecvOutcome::Deliver(vec![tick(1), tick(2)])
        );
        assert_eq!(rx.expected(), 3);
    }

    #[test]
    fn reorder_overflow_drops_but_recovers_via_resend() {
        let mut rx = RecvChannel::new(2);
        for seq in [3, 4] {
            assert!(matches!(
                rx.accept(seq, tick(seq)),
                RecvOutcome::Gap {
                    overflow: false,
                    ..
                }
            ));
        }
        assert_eq!(
            rx.accept(5, tick(5)),
            RecvOutcome::Gap {
                expected: 1,
                overflow: true
            }
        );
        // Sender resends from 1; 5 arrives again later and delivers.
        assert!(matches!(rx.accept(1, tick(1)), RecvOutcome::Deliver(_)));
        assert!(matches!(rx.accept(2, tick(2)), RecvOutcome::Deliver(_)));
        assert_eq!(rx.accept(5, tick(5)), RecvOutcome::Deliver(vec![tick(5)]));
    }

    #[test]
    fn resend_from_and_unacked_replay() {
        let mut tx = SendChannel::new(8);
        for i in 1..=4u64 {
            tx.stage(tick(i)).unwrap();
        }
        tx.ack(2);
        let replay = tx.unacked_frames();
        assert_eq!(replay.iter().map(seq_of).collect::<Vec<_>>(), vec![3, 4]);
        let partial = tx.resend_from(4);
        assert_eq!(partial.iter().map(seq_of).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn stage_overflow_is_an_error() {
        let mut tx = SendChannel::new(2);
        tx.stage(tick(1)).unwrap();
        tx.stage(tick(2)).unwrap();
        assert_eq!(tx.stage(tick(3)), Err(WireError::ResendOverflow { cap: 2 }));
        tx.ack(1);
        assert!(tx.stage(tick(3)).is_ok());
        // A failed stage burns no sequence number — otherwise the
        // receiver would wait forever on a seq that never ships.
        assert_eq!(tx.next_seq(), 4);
    }

    #[test]
    fn ack_level_is_none_before_first_delivery() {
        let rx = RecvChannel::new(4);
        assert_eq!(rx.ack_level(), None);
    }
}
