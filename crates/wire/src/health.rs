//! Cluster failure model: heartbeat-driven peer health, rendezvous
//! ownership, and the exactly-once verdict ledger.
//!
//! The router probes every live peer with [`crate::Frame::Heartbeat`]
//! on a configurable interval. A peer that fails to ack before the
//! next probe is due accrues a *miss*; one miss marks it
//! [`PeerHealth::Suspect`], and `miss_threshold` consecutive misses
//! mark it [`PeerHealth::Dead`] — bounding failure detection at
//! `interval × (miss_threshold + 1)` without waiting on TCP to notice
//! (a SIGSTOP'd process keeps its sockets open forever).
//!
//! Ownership stays the static [`shard_of`](https://docs.rs/) modulo
//! while the owner is live, so verdict sets remain bit-identical to
//! the single-process runtime. Only when the owner is dead does
//! [`rendezvous_owner`] pick a survivor by highest-random-weight
//! hashing, which moves exactly the dead shard's keys and nothing
//! else — a membership change never reshuffles traces between
//! survivors.
//!
//! Exactly-once across restarts is enforced by [`VerdictLedger`]: a
//! bounded insertion-ordered set of trace ids that already produced an
//! accepted verdict. A respawned shard replaying its unacked session
//! tail, or a failover re-running a trace the dead shard had already
//! answered, gets deduped at the router instead of double-emitting.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::time::Duration;

use crate::error::WireError;

/// Splitmix64 — the same mixer `shard_of` and the chaos layer use.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Heartbeat-based failure detection settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Probe cadence. Each live peer gets one `Heartbeat` per
    /// interval (sent from the router's pump loop).
    pub interval: Duration,
    /// Consecutive unacked intervals before a peer is declared
    /// [`PeerHealth::Dead`]. One miss already marks it Suspect.
    pub miss_threshold: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(100),
            miss_threshold: 3,
        }
    }
}

/// A heartbeat/failover configuration rejected at build time.
///
/// Mirrors the `sleuth-serve` builder-validation pattern: every
/// invariant is a typed variant, validated before any socket is
/// touched, so a bad config fails fast instead of producing a router
/// that can never detect failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthConfigError {
    /// `interval` must be positive — a zero interval would spin the
    /// pump loop and mark every peer dead instantly.
    ZeroHeartbeatInterval,
    /// `miss_threshold` must be at least 1 — zero would declare a
    /// peer dead before its first probe could be acked.
    ZeroMissThreshold,
    /// The full detection window (`interval × (miss_threshold + 1)`)
    /// must fit inside the session/response timeout, otherwise the
    /// router would block on a stalled peer longer than it takes to
    /// declare it dead.
    IntervalExceedsSessionTimeout {
        /// Configured heartbeat interval.
        interval: Duration,
        /// Configured session/response timeout it must undercut.
        session_timeout: Duration,
    },
}

impl fmt::Display for HealthConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthConfigError::ZeroHeartbeatInterval => {
                write!(f, "heartbeat interval must be > 0")
            }
            HealthConfigError::ZeroMissThreshold => {
                write!(f, "heartbeat miss threshold must be >= 1")
            }
            HealthConfigError::IntervalExceedsSessionTimeout {
                interval,
                session_timeout,
            } => write!(
                f,
                "heartbeat interval {interval:?} must be shorter than \
                 the session timeout {session_timeout:?}"
            ),
        }
    }
}

impl std::error::Error for HealthConfigError {}

impl From<HealthConfigError> for WireError {
    fn from(err: HealthConfigError) -> Self {
        WireError::Config(err.to_string())
    }
}

impl HeartbeatConfig {
    /// Validate against the session/response timeout the heartbeat
    /// window must undercut. Returns the first violation.
    pub fn validate(&self, session_timeout: Duration) -> Result<(), HealthConfigError> {
        if self.interval.is_zero() {
            return Err(HealthConfigError::ZeroHeartbeatInterval);
        }
        if self.miss_threshold == 0 {
            return Err(HealthConfigError::ZeroMissThreshold);
        }
        if self.interval >= session_timeout {
            return Err(HealthConfigError::IntervalExceedsSessionTimeout {
                interval: self.interval,
                session_timeout,
            });
        }
        Ok(())
    }
}

/// Liveness verdict for one peer, driven by heartbeat acks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeerHealth {
    /// Acking heartbeats on schedule.
    #[default]
    Live,
    /// Missed at least one heartbeat interval; still routed to, but
    /// under watch.
    Suspect,
    /// Missed `miss_threshold` consecutive intervals (or the
    /// connection failed and could not be re-established). Its keys
    /// are failed over to survivors.
    Dead,
}

/// Rendezvous (highest-random-weight) owner for `trace_id` among
/// `live` shard indices. Deterministic, order-independent, and
/// minimal-movement: removing one shard reassigns only that shard's
/// keys; every other key keeps its owner.
///
/// Returns `None` when `live` is empty.
pub fn rendezvous_owner(trace_id: u64, live: &[usize]) -> Option<usize> {
    live.iter().copied().max_by_key(|&shard| {
        let w = splitmix64(trace_id ^ splitmix64(shard as u64 ^ 0x7265_6e64_657a_7631));
        (w, shard)
    })
}

/// Bounded insertion-ordered set of trace ids with an accepted
/// verdict: the router's exactly-once filter.
///
/// `insert` returns `false` for a trace already in the ledger (the
/// caller drops the duplicate verdict and bumps `verdicts_deduped`).
/// When the bound is hit the oldest entry is evicted — the window only
/// needs to cover the maximum unacked session tail plus the failover
/// re-run horizon, both of which are bounded by the session cap.
#[derive(Debug)]
pub struct VerdictLedger {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    cap: usize,
}

impl VerdictLedger {
    /// Ledger remembering at most `cap` trace ids (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        VerdictLedger {
            seen: HashSet::with_capacity(cap.min(4096)),
            order: VecDeque::with_capacity(cap.min(4096)),
            cap,
        }
    }

    /// Record `trace_id`; `false` means it was already present (a
    /// duplicate emission the caller must drop).
    pub fn insert(&mut self, trace_id: u64) -> bool {
        if !self.seen.insert(trace_id) {
            return false;
        }
        self.order.push_back(trace_id);
        if self.order.len() > self.cap {
            if let Some(evicted) = self.order.pop_front() {
                self.seen.remove(&evicted);
            }
        }
        true
    }

    /// Whether `trace_id` already has an accepted verdict.
    pub fn contains(&self, trace_id: u64) -> bool {
        self.seen.contains(&trace_id)
    }

    /// Entries currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Per-peer heartbeat bookkeeping: what was sent, what was acked, and
/// how many intervals have elapsed unanswered.
#[derive(Debug, Default)]
pub struct HeartbeatState {
    /// Nonce of the most recent probe, when one is outstanding.
    pub outstanding: Option<u64>,
    /// Microsecond timestamp (monotonic, caller-supplied) of the last
    /// probe sent.
    pub last_sent_us: u64,
    /// Consecutive intervals without an ack.
    pub misses: u32,
    /// Next nonce to use.
    pub next_nonce: u64,
    /// Current verdict.
    pub health: PeerHealth,
}

impl HeartbeatState {
    /// Record an ack for `nonce`; stale nonces are ignored.
    pub fn on_ack(&mut self, nonce: u64) -> bool {
        if self.outstanding == Some(nonce) {
            self.outstanding = None;
            self.misses = 0;
            self.health = PeerHealth::Live;
            true
        } else {
            false
        }
    }

    /// An interval elapsed with the previous probe still outstanding.
    /// Returns the new health (Suspect, or Dead at `miss_threshold`).
    pub fn on_miss(&mut self, miss_threshold: u32) -> PeerHealth {
        self.misses = self.misses.saturating_add(1);
        self.health = if self.misses >= miss_threshold {
            PeerHealth::Dead
        } else {
            PeerHealth::Suspect
        };
        self.health
    }

    /// A new probe is going out at `now_us` with a fresh nonce.
    pub fn on_send(&mut self, now_us: u64) -> u64 {
        self.next_nonce = self.next_nonce.wrapping_add(1);
        self.outstanding = Some(self.next_nonce);
        self.last_sent_us = now_us;
        self.next_nonce
    }

    /// Forget in-flight probe state (connection was torn down or
    /// re-established; the old nonce can never be acked).
    pub fn reset_probe(&mut self) {
        self.outstanding = None;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_config_validates() {
        let ok = HeartbeatConfig::default();
        assert!(ok.validate(Duration::from_secs(30)).is_ok());

        let zero = HeartbeatConfig {
            interval: Duration::ZERO,
            ..ok
        };
        assert_eq!(
            zero.validate(Duration::from_secs(30)),
            Err(HealthConfigError::ZeroHeartbeatInterval)
        );

        let no_miss = HeartbeatConfig {
            miss_threshold: 0,
            ..ok
        };
        assert_eq!(
            no_miss.validate(Duration::from_secs(30)),
            Err(HealthConfigError::ZeroMissThreshold)
        );

        let slow = HeartbeatConfig {
            interval: Duration::from_secs(60),
            ..ok
        };
        assert!(matches!(
            slow.validate(Duration::from_secs(30)),
            Err(HealthConfigError::IntervalExceedsSessionTimeout { .. })
        ));
        // The error converts into the crate-wide WireError::Config.
        let wire: WireError = slow.validate(Duration::from_secs(30)).unwrap_err().into();
        assert!(matches!(wire, WireError::Config(_)));
    }

    #[test]
    fn rendezvous_is_deterministic_and_minimal_movement() {
        let all: Vec<usize> = (0..5).collect();
        for trace in 0..2000u64 {
            let owner = rendezvous_owner(trace, &all).unwrap();
            // Deterministic and order-independent.
            let mut shuffled = all.clone();
            shuffled.rotate_left((trace % 5) as usize);
            assert_eq!(rendezvous_owner(trace, &shuffled), Some(owner));

            // Remove a shard that is NOT the owner: the key must not
            // move.
            let dead = (owner + 1) % 5;
            let survivors: Vec<usize> = all.iter().copied().filter(|&s| s != dead).collect();
            assert_eq!(rendezvous_owner(trace, &survivors), Some(owner));

            // Remove the owner: the key moves somewhere live.
            let survivors: Vec<usize> = all.iter().copied().filter(|&s| s != owner).collect();
            let new_owner = rendezvous_owner(trace, &survivors).unwrap();
            assert_ne!(new_owner, owner);
        }
        assert_eq!(rendezvous_owner(7, &[]), None);
    }

    #[test]
    fn rendezvous_spreads_keys() {
        // Not a perfect-balance test, just "no shard is starved".
        let live: Vec<usize> = (0..4).collect();
        let mut counts = [0usize; 4];
        for trace in 0..4000u64 {
            counts[rendezvous_owner(trace, &live).unwrap()] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(n > 400, "shard {shard} starved: {n}/4000");
        }
    }

    #[test]
    fn ledger_dedups_and_evicts_in_order() {
        let mut ledger = VerdictLedger::new(3);
        assert!(ledger.insert(1));
        assert!(ledger.insert(2));
        assert!(!ledger.insert(1), "duplicate must be rejected");
        assert!(ledger.insert(3));
        assert_eq!(ledger.len(), 3);
        // Capacity eviction is FIFO: inserting 4 evicts 1.
        assert!(ledger.insert(4));
        assert!(!ledger.contains(1));
        assert!(ledger.contains(2) && ledger.contains(3) && ledger.contains(4));
        // The evicted id can be inserted again.
        assert!(ledger.insert(1));
    }

    #[test]
    fn heartbeat_state_machine_transitions() {
        let mut hb = HeartbeatState::default();
        assert_eq!(hb.health, PeerHealth::Live);

        let nonce = hb.on_send(1000);
        assert!(hb.on_ack(nonce));
        assert_eq!(hb.health, PeerHealth::Live);
        assert!(!hb.on_ack(nonce), "stale nonce ignored");

        let _nonce = hb.on_send(2000);
        assert_eq!(hb.on_miss(3), PeerHealth::Suspect);
        assert_eq!(hb.on_miss(3), PeerHealth::Suspect);
        assert_eq!(hb.on_miss(3), PeerHealth::Dead);

        // An ack after death still clears the state (the caller
        // decides whether a dead peer can be revived).
        let nonce = hb.on_send(3000);
        assert!(hb.on_ack(nonce));
        assert_eq!(hb.health, PeerHealth::Live);
        assert_eq!(hb.misses, 0);
    }
}
