//! Bounds-checked little-endian byte encoding primitives.
//!
//! [`ByteWriter`] grows a `Vec<u8>`; [`ByteReader`] walks a borrowed
//! slice and returns [`WireError::Truncated`] instead of panicking
//! when a read would run past the end. Variable-length values (strings,
//! sequences) carry a `u32` length prefix that is validated against
//! the bytes *actually remaining* before any allocation, so an
//! adversarial length field can never force an allocation larger than
//! the frame that carried it.

use crate::error::WireError;

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// `Some(v)` as `1` + value, `None` as `0`.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// UTF-8 bytes with a `u32` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Sequence count prefix (`u32`); elements follow, caller-encoded.
    pub fn put_count(&mut self, n: usize) {
        self.put_u32(n as u32);
    }
}

/// Cursor over a borrowed payload slice. Every accessor checks the
/// remaining length first; nothing here can panic on any input.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.get_u64()? as i64)
    }

    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::InvalidPayload("bool tag not 0/1")),
        }
    }

    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            _ => Err(WireError::InvalidPayload("option tag not 0/1")),
        }
    }

    /// Length-prefixed UTF-8 string; the declared length is validated
    /// against the remaining bytes before anything is copied.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::Truncated {
                needed: len,
                available: self.remaining(),
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidPayload("invalid utf-8"))
    }

    /// Sequence count. The pre-allocation hint returned alongside is
    /// clamped by the remaining payload (each element costs ≥ 1 byte),
    /// so an adversarial count cannot trigger a huge `with_capacity`.
    pub fn get_count(&mut self) -> Result<(usize, usize), WireError> {
        let n = self.get_u32()? as usize;
        Ok((n, n.min(self.remaining())))
    }

    /// Fail with [`WireError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                unread: self.remaining(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(9));
        w.put_str("héllo");
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_u64().unwrap(), Some(9));
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.get_u64(), Err(WireError::Truncated { .. })));
        // Position unchanged after a failed read of a fixed-size value.
        assert_eq!(r.get_u16().unwrap(), 0x0201);
    }

    #[test]
    fn adversarial_string_length_is_bounded() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // declares 4 GiB
        w.put_u8(b'x');
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.get_str(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn adversarial_count_hint_is_clamped() {
        let mut w = ByteWriter::new();
        w.put_count(1_000_000_000);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        let (n, hint) = r.get_count().unwrap();
        assert_eq!(n, 1_000_000_000);
        assert_eq!(hint, 0);
    }

    #[test]
    fn bad_tags_are_invalid_payload() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(
            r.get_bool(),
            Err(WireError::InvalidPayload("bool tag not 0/1"))
        );
        let mut r = ByteReader::new(&[5, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(r.get_opt_u64(), Err(WireError::InvalidPayload(_))));
    }

    #[test]
    fn finish_detects_trailing() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { unread: 2 }));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        let mut buf = w.into_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_str(), Err(WireError::InvalidPayload("invalid utf-8")));
    }
}
