//! Wire-level metrics: frame/byte counters, rejected-frame reasons,
//! reliability-layer activity, and peer health.
//!
//! Shared via `Arc` between a router (or shard server), its reader
//! threads, and its frame writers. Rejected frames are counted both in
//! total and per [`crate::WireError::label`] reason, satisfying the
//! "malformed frames are rejected with typed errors *and counted in
//! metrics*" gate.

use std::collections::BTreeMap;
use std::sync::Mutex;

use sleuth_serve::{lock_or_recover, Counter};

/// Live wire metrics (atomic counters, lock only on the label map).
#[derive(Debug, Default)]
pub struct WireMetrics {
    /// Frames written to a socket (after fault fates; a dropped frame
    /// is not counted here).
    pub frames_sent: Counter,
    /// Frames decoded successfully.
    pub frames_received: Counter,
    /// Frames replayed by the reliability layer (nack or ack stall).
    pub frames_resent: Counter,
    /// Bytes written.
    pub bytes_sent: Counter,
    /// Bytes consumed by successful decodes.
    pub bytes_received: Counter,
    /// Frames rejected by the decoder (any [`crate::WireError`]).
    pub frames_rejected: Counter,
    /// Duplicate `Data` frames dropped by receive-side dedup.
    pub duplicates_dropped: Counter,
    /// Out-of-order frames parked and later delivered in order.
    pub reorders_healed: Counter,
    /// `Nack` frames sent.
    pub nacks_sent: Counter,
    /// `Ack` frames sent.
    pub acks_sent: Counter,
    /// Successful reconnects to a peer.
    pub reconnects: Counter,
    /// Reconnects that resumed an existing session.
    pub sessions_resumed: Counter,
    /// Peers declared dead after exhausting reconnect attempts.
    pub peer_deaths: Counter,
    /// Spans routed to a live shard connection.
    pub spans_routed: Counter,
    /// Spans bound for a dead peer (counted rejected; degraded
    /// verdicts are emitted for their traces).
    pub spans_unroutable: Counter,
    /// Degraded verdicts synthesized by the router for unreachable
    /// shards.
    pub degraded_unroutable: Counter,
    /// Heartbeat probes written to peers.
    pub heartbeats_sent: Counter,
    /// Heartbeat acks received from peers.
    pub heartbeat_acks: Counter,
    /// Heartbeat intervals that elapsed without the previous probe
    /// being acked (drives the Suspect/Dead state machine).
    pub heartbeats_missed: Counter,
    /// Dead shards whose keyspace was failed over to survivors.
    pub shard_failovers: Counter,
    /// Traces re-routed to a survivor shard during a failover.
    pub traces_failed_over: Counter,
    /// Verdicts dropped by the router's exactly-once ledger (a trace
    /// already has an accepted verdict — e.g. a respawned shard
    /// replaying its unacked session tail, or a failover re-run).
    pub verdicts_deduped: Counter,
    /// Peer sessions reset because the peer came back without session
    /// state (a fresh process accepted the connection).
    pub sessions_reset: Counter,
    /// Worker processes restarted by a `sleuth-shardd --respawn`
    /// supervisor (incremented by the supervisor, not the router).
    pub respawns_total: Counter,
    rejected_by_reason: Mutex<BTreeMap<&'static str, u64>>,
}

impl WireMetrics {
    /// Count one rejected frame under `reason` (a
    /// [`crate::WireError::label`] value).
    pub fn record_rejected(&self, reason: &'static str) {
        self.frames_rejected.inc();
        *lock_or_recover(&self.rejected_by_reason, None)
            .entry(reason)
            .or_insert(0) += 1;
    }

    /// Freeze every counter.
    pub fn snapshot(&self) -> WireMetricsSnapshot {
        WireMetricsSnapshot {
            frames_sent: self.frames_sent.get(),
            frames_received: self.frames_received.get(),
            frames_resent: self.frames_resent.get(),
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            frames_rejected: self.frames_rejected.get(),
            duplicates_dropped: self.duplicates_dropped.get(),
            reorders_healed: self.reorders_healed.get(),
            nacks_sent: self.nacks_sent.get(),
            acks_sent: self.acks_sent.get(),
            reconnects: self.reconnects.get(),
            sessions_resumed: self.sessions_resumed.get(),
            peer_deaths: self.peer_deaths.get(),
            spans_routed: self.spans_routed.get(),
            spans_unroutable: self.spans_unroutable.get(),
            degraded_unroutable: self.degraded_unroutable.get(),
            heartbeats_sent: self.heartbeats_sent.get(),
            heartbeat_acks: self.heartbeat_acks.get(),
            heartbeats_missed: self.heartbeats_missed.get(),
            shard_failovers: self.shard_failovers.get(),
            traces_failed_over: self.traces_failed_over.get(),
            verdicts_deduped: self.verdicts_deduped.get(),
            sessions_reset: self.sessions_reset.get(),
            respawns_total: self.respawns_total.get(),
            rejected_by_reason: lock_or_recover(&self.rejected_by_reason, None)
                .iter()
                .map(|(&r, &n)| (r.to_string(), n))
                .collect(),
        }
    }
}

/// Frozen wire metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireMetricsSnapshot {
    pub frames_sent: u64,
    pub frames_received: u64,
    pub frames_resent: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub frames_rejected: u64,
    pub duplicates_dropped: u64,
    pub reorders_healed: u64,
    pub nacks_sent: u64,
    pub acks_sent: u64,
    pub reconnects: u64,
    pub sessions_resumed: u64,
    pub peer_deaths: u64,
    pub spans_routed: u64,
    pub spans_unroutable: u64,
    pub degraded_unroutable: u64,
    pub heartbeats_sent: u64,
    pub heartbeat_acks: u64,
    pub heartbeats_missed: u64,
    pub shard_failovers: u64,
    pub traces_failed_over: u64,
    pub verdicts_deduped: u64,
    pub sessions_reset: u64,
    pub respawns_total: u64,
    /// Rejected frames per reason, ascending by reason label.
    pub rejected_by_reason: Vec<(String, u64)>,
}

impl WireMetricsSnapshot {
    /// Rejected-frame count for one reason label.
    pub fn rejected(&self, reason: &str) -> u64 {
        self.rejected_by_reason
            .iter()
            .find(|(r, _)| r == reason)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Prometheus-style exposition text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("sleuth_wire_frames_sent_total", self.frames_sent),
            ("sleuth_wire_frames_received_total", self.frames_received),
            ("sleuth_wire_frames_resent_total", self.frames_resent),
            ("sleuth_wire_bytes_sent_total", self.bytes_sent),
            ("sleuth_wire_bytes_received_total", self.bytes_received),
            ("sleuth_wire_frames_rejected_total", self.frames_rejected),
            (
                "sleuth_wire_duplicates_dropped_total",
                self.duplicates_dropped,
            ),
            ("sleuth_wire_reorders_healed_total", self.reorders_healed),
            ("sleuth_wire_nacks_sent_total", self.nacks_sent),
            ("sleuth_wire_acks_sent_total", self.acks_sent),
            ("sleuth_wire_reconnects_total", self.reconnects),
            ("sleuth_wire_sessions_resumed_total", self.sessions_resumed),
            ("sleuth_wire_peer_deaths_total", self.peer_deaths),
            ("sleuth_wire_spans_routed_total", self.spans_routed),
            ("sleuth_wire_spans_unroutable_total", self.spans_unroutable),
            (
                "sleuth_wire_degraded_unroutable_total",
                self.degraded_unroutable,
            ),
            ("sleuth_wire_heartbeats_sent_total", self.heartbeats_sent),
            ("sleuth_wire_heartbeat_acks_total", self.heartbeat_acks),
            (
                "sleuth_wire_heartbeats_missed_total",
                self.heartbeats_missed,
            ),
            ("sleuth_wire_shard_failovers_total", self.shard_failovers),
            (
                "sleuth_wire_traces_failed_over_total",
                self.traces_failed_over,
            ),
            ("sleuth_wire_verdicts_deduped_total", self.verdicts_deduped),
            ("sleuth_wire_sessions_reset_total", self.sessions_reset),
            ("sleuth_wire_respawns_total", self.respawns_total),
        ] {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (reason, count) in &self.rejected_by_reason {
            out.push_str(&format!(
                "sleuth_wire_frames_rejected_total{{reason=\"{reason}\"}} {count}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejected_reasons_accumulate_and_render() {
        let m = WireMetrics::default();
        m.record_rejected("checksum_mismatch");
        m.record_rejected("checksum_mismatch");
        m.record_rejected("bad_magic");
        m.frames_sent.add(10);
        let s = m.snapshot();
        assert_eq!(s.frames_rejected, 3);
        assert_eq!(s.rejected("checksum_mismatch"), 2);
        assert_eq!(s.rejected("bad_magic"), 1);
        assert_eq!(s.rejected("oversized"), 0);
        let text = s.render_text();
        assert!(text.contains("sleuth_wire_frames_sent_total 10"));
        assert!(text.contains("sleuth_wire_frames_rejected_total{reason=\"checksum_mismatch\"} 2"));
    }
}
