//! The shard-server loop: one single-shard [`ServeRuntime`] behind a
//! socket listener.
//!
//! A `sleuth-shardd` process calls [`serve_shard`], which:
//!
//! * accepts connections through a polling acceptor thread — one
//!   router at a time owns a shard, but a *newer* connection
//!   supersedes the current one (the old socket gets a clean
//!   `Goodbye`) instead of queueing behind a dead session's read
//!   timeouts,
//! * performs the `Hello`/`HelloAck` version negotiation and session
//!   (re)attachment,
//! * runs a **reader loop** on the accept thread — decoding frames,
//!   feeding span batches and control messages into the runtime, and
//!   acking/nacking through the reliability layer — and a **writer
//!   thread** that polls the runtime for verdicts and quarantined
//!   traces at a fixed cadence and streams them back as sequenced
//!   data frames,
//! * on `Shutdown`, drains the runtime and replies with a final
//!   [`ShardFinal`] (metrics + store accounting), then lingers until
//!   the router has acked everything.
//!
//! Sessions (sequence state, unacked frames) survive connection
//! drops: a router reconnecting with `resume: true` gets its session
//! back and both sides replay their unacked tails, which the
//! receive-side dedup makes idempotent. Quarantined traces leave the
//! process stamped with the *global* shard id
//! ([`ShardServerConfig::shard_id`]), not the runtime's internal
//! shard 0, so the router's aggregate attribution is meaningful.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sleuth_core::SleuthPipeline;
use sleuth_serve::inject::FaultInjector;
use sleuth_serve::{lock_or_recover, ServeConfig, ServeRuntime};

use crate::codec::{FrameReader, FrameWriter, WireFaultInjector};
use crate::error::WireError;
use crate::frame::{
    Frame, Msg, ShardFinal, WireQuarantined, DEFAULT_MAX_FRAME_LEN, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crate::metrics::WireMetrics;
use crate::session::{RecvChannel, RecvOutcome, SendChannel};
use crate::transport::{WireListener, WireStream};

/// Tuning for one shard server.
#[derive(Debug, Clone)]
pub struct ShardServerConfig {
    /// Global shard index this process serves (stamped onto outgoing
    /// quarantine entries).
    pub shard_id: usize,
    /// Runtime configuration. `num_shards` is forced to 1: sharding
    /// across traces is the *router's* job in a multi-process
    /// topology.
    pub serve: ServeConfig,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
    /// Cadence at which the writer thread polls the runtime for
    /// verdicts and quarantined traces.
    pub poll_interval: Duration,
    /// OS read timeout on the connection (bounds how stale the
    /// reader's liveness checks can get).
    pub read_timeout: Duration,
    /// Writer polls without ack progress before the unacked tail is
    /// replayed (heals dropped verdict frames).
    pub resend_stall_polls: u32,
    /// Bound on unacked and reorder buffers.
    pub session_cap: usize,
    /// How long to wait for the `Hello` on a fresh connection before
    /// dropping it.
    pub handshake_timeout: Duration,
}

impl ShardServerConfig {
    /// Defaults around a given runtime config and shard id.
    pub fn new(shard_id: usize, serve: ServeConfig) -> Self {
        ShardServerConfig {
            shard_id,
            serve,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            poll_interval: Duration::from_millis(2),
            read_timeout: Duration::from_millis(50),
            resend_stall_polls: 50,
            session_cap: 4096,
            handshake_timeout: Duration::from_secs(10),
        }
    }

    /// Validate with typed errors before any listener work begins (the
    /// builder-validation pattern shared with
    /// [`crate::RouterConfig::validate`]).
    pub fn validate(&self) -> Result<(), WireError> {
        if self.session_cap == 0 {
            return Err(WireError::Config("session_cap must be >= 1".into()));
        }
        if self.poll_interval.is_zero() {
            return Err(WireError::Config("poll_interval must be > 0".into()));
        }
        if self.read_timeout.is_zero() {
            return Err(WireError::Config("read_timeout must be > 0".into()));
        }
        if self.handshake_timeout.is_zero() {
            return Err(WireError::Config("handshake_timeout must be > 0".into()));
        }
        Ok(())
    }
}

/// Reliable-delivery state that outlives individual connections.
struct Session {
    id: u64,
    send: Arc<Mutex<SendChannel>>,
    recv: RecvChannel,
}

/// Why a connection handler returned.
enum ConnEnd {
    /// Peer went away; keep the session and accept again.
    Disconnected,
    /// Shutdown complete and fully acked.
    Finished(Box<ShardFinal>),
    /// A newer connection arrived while this one was being served; it
    /// takes over (the old peer got a clean `Goodbye`).
    Superseded(WireStream),
}

/// What the acceptor thread hands to the serving loop.
enum AcceptEvent {
    /// A new connection, already switched back to blocking mode.
    Conn(WireStream),
    /// The listener failed; serving cannot continue.
    Err(io::Error),
}

/// Stage a message into the session's send channel and write it.
fn stage_and_send(
    send: &Mutex<SendChannel>,
    writer: &Mutex<FrameWriter<WireStream>>,
    msg: Msg,
) -> Result<(), WireError> {
    let frame = lock_or_recover(send, None).stage(msg)?;
    lock_or_recover(writer, None).send(&frame)
}

/// Replay every unacked frame (reconnect resume or ack stall).
fn replay_unacked(
    send: &Mutex<SendChannel>,
    writer: &Mutex<FrameWriter<WireStream>>,
    metrics: &WireMetrics,
) -> Result<(), WireError> {
    let frames = lock_or_recover(send, None).unacked_frames();
    let mut w = lock_or_recover(writer, None);
    for frame in &frames {
        w.send(frame)?;
        metrics.frames_resent.inc();
    }
    w.flush_held()
}

/// Serve one shard until a router drives it through `Shutdown`.
///
/// Blocks the calling thread. Returns the final shard state after a
/// complete drain, or the first unrecoverable listener/config error.
/// Connection failures are *not* unrecoverable: the session is kept
/// and the next accepted connection may resume it.
pub fn serve_shard(
    listener: &WireListener,
    pipeline: Arc<SleuthPipeline>,
    config: ShardServerConfig,
    runtime_faults: Arc<dyn FaultInjector>,
    wire_faults: Arc<dyn WireFaultInjector>,
    metrics: Arc<WireMetrics>,
) -> Result<ShardFinal, WireError> {
    config.validate()?;
    let mut serve_cfg = config.serve.clone();
    serve_cfg.num_shards = 1;
    let runtime = ServeRuntime::start_with_injector(pipeline.clone(), serve_cfg, runtime_faults)
        .map_err(|e| WireError::Config(e.to_string()))?;
    let runtime = Arc::new(Mutex::new(Some(runtime)));
    let mut session: Option<Session> = None;
    let mut done: Option<Box<ShardFinal>> = None;

    // A polling acceptor thread feeds connections through a channel so
    // the reader loop can notice a *newer* connection while the old
    // session is still draining: accept supersedes instead of queueing
    // behind a dead socket's read timeouts.
    listener.set_nonblocking(true)?;
    let stop_accept = AtomicBool::new(false);
    let (conn_tx, conn_rx) = std::sync::mpsc::channel::<AcceptEvent>();
    let accept_poll = config.poll_interval;
    let result = thread::scope(|scope| {
        let acceptor = scope.spawn(|| loop {
            if stop_accept.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok(stream) => {
                    // Accepted sockets can inherit the listener's
                    // non-blocking mode; the codec needs blocking.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    if conn_tx.send(AcceptEvent::Conn(stream)).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(accept_poll),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    let _ = conn_tx.send(AcceptEvent::Err(e));
                    return;
                }
            }
        });
        let out = 'serve: loop {
            let mut next = match conn_rx.recv() {
                Ok(AcceptEvent::Conn(stream)) => stream,
                Ok(AcceptEvent::Err(e)) => break 'serve Err(WireError::from(e)),
                Err(_) => {
                    break 'serve Err(WireError::Config(
                        "shard listener accept loop exited".into(),
                    ))
                }
            };
            loop {
                match handle_conn(
                    next,
                    &conn_rx,
                    &config,
                    &pipeline,
                    &runtime,
                    &mut session,
                    &mut done,
                    &wire_faults,
                    &metrics,
                ) {
                    ConnEnd::Finished(final_state) => break 'serve Ok(*final_state),
                    ConnEnd::Disconnected => break,
                    ConnEnd::Superseded(stream) => next = stream,
                }
            }
        };
        stop_accept.store(true, Ordering::Relaxed);
        let _ = acceptor.join();
        out
    });
    let _ = listener.set_nonblocking(false);
    result
}

#[allow(clippy::too_many_arguments)]
fn handle_conn(
    stream: WireStream,
    conn_rx: &Receiver<AcceptEvent>,
    config: &ShardServerConfig,
    pipeline: &Arc<SleuthPipeline>,
    runtime: &Arc<Mutex<Option<ServeRuntime>>>,
    session: &mut Option<Session>,
    done: &mut Option<Box<ShardFinal>>,
    wire_faults: &Arc<dyn WireFaultInjector>,
    metrics: &Arc<WireMetrics>,
) -> ConnEnd {
    if stream.set_read_timeout(Some(config.read_timeout)).is_err() || stream.set_nodelay().is_err()
    {
        return ConnEnd::Disconnected;
    }
    let Ok(read_half) = stream.try_clone() else {
        return ConnEnd::Disconnected;
    };
    let mut reader = FrameReader::new(read_half, config.max_frame_len, Arc::clone(metrics));
    let writer = FrameWriter::new(
        stream,
        PROTOCOL_VERSION,
        config.shard_id,
        Arc::clone(wire_faults),
        Arc::clone(metrics),
    );
    let writer = Arc::new(Mutex::new(writer));

    // ---- Handshake --------------------------------------------------
    let deadline = Instant::now() + config.handshake_timeout;
    let hello = loop {
        match reader.read_frame() {
            Ok(Frame::Hello {
                min_version,
                max_version,
                session_id,
                resume,
            }) => break (min_version, max_version, session_id, resume),
            Ok(_) => {
                let _ = lock_or_recover(&writer, None).send(&Frame::Error {
                    code: WireError::HandshakeRequired.label().to_string(),
                    detail: "expected Hello".to_string(),
                });
                return ConnEnd::Disconnected;
            }
            // Recoverable errors (timeouts, bad checksums) keep the
            // connection — but only until the handshake deadline, or a
            // client that never sends a valid Hello parks the accept
            // loop forever.
            Err(WireError::Timeout)
            | Err(WireError::ChecksumMismatch { .. })
            | Err(WireError::UnknownFrameType(_))
                if Instant::now() < deadline =>
            {
                continue
            }
            Err(_) => return ConnEnd::Disconnected,
        }
    };
    let (their_min, their_max, session_id, resume) = hello;
    if their_min > PROTOCOL_VERSION || their_max < MIN_PROTOCOL_VERSION {
        let _ = lock_or_recover(&writer, None).send(&Frame::Error {
            code: "unsupported_version".to_string(),
            detail: format!("peer speaks {their_min}..={their_max}, server {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"),
        });
        return ConnEnd::Disconnected;
    }
    let version = their_max.min(PROTOCOL_VERSION);
    let resumed = resume && session.as_ref().map(|s| s.id) == Some(session_id);
    if !resumed {
        *session = Some(Session {
            id: session_id,
            send: Arc::new(Mutex::new(SendChannel::new(config.session_cap))),
            recv: RecvChannel::new(config.session_cap),
        });
    }
    lock_or_recover(&writer, None).set_version(version);
    if lock_or_recover(&writer, None)
        .send(&Frame::HelloAck { version, resumed })
        .is_err()
    {
        return ConnEnd::Disconnected;
    }
    let send = Arc::clone(&session.as_ref().expect("session installed above").send);
    if resumed && replay_unacked(&send, &writer, metrics).is_err() {
        return ConnEnd::Disconnected;
    }

    // ---- Writer thread: poll runtime outputs ------------------------
    let stop = Arc::new(AtomicBool::new(false));
    let conn_failed = Arc::new(AtomicBool::new(false));
    let writer_handle = {
        let stop = Arc::clone(&stop);
        let conn_failed = Arc::clone(&conn_failed);
        let runtime = Arc::clone(runtime);
        let send = Arc::clone(&send);
        let writer = Arc::clone(&writer);
        let metrics = Arc::clone(metrics);
        let poll_interval = config.poll_interval;
        let resend_stall_polls = config.resend_stall_polls;
        let shard_id = config.shard_id;
        thread::spawn(move || {
            let mut stalled_on: Option<u64> = None;
            let mut stall_polls: u32 = 0;
            while !stop.load(Ordering::Relaxed) {
                thread::sleep(poll_interval);
                let (verdicts, quarantined) = {
                    let guard = lock_or_recover(&runtime, None);
                    match guard.as_ref() {
                        Some(rt) => (rt.poll_verdicts(), rt.poll_quarantined()),
                        None => (Vec::new(), Vec::new()),
                    }
                };
                let mut failed = false;
                for v in verdicts {
                    if stage_and_send(&send, &writer, Msg::Verdict(v)).is_err() {
                        failed = true;
                        break;
                    }
                }
                for q in quarantined {
                    if failed {
                        break;
                    }
                    let wq = WireQuarantined::from_entry(&q, shard_id);
                    if stage_and_send(&send, &writer, Msg::Quarantined(wq)).is_err() {
                        failed = true;
                    }
                }
                // Ack-stall detection: the oldest unacked frame not
                // moving for `resend_stall_polls` polls means the frame
                // (or its ack) was lost — replay the tail.
                if !failed {
                    let first = lock_or_recover(&send, None).first_unacked();
                    if first.is_some() && first == stalled_on {
                        stall_polls += 1;
                        if stall_polls >= resend_stall_polls {
                            stall_polls = 0;
                            failed = replay_unacked(&send, &writer, &metrics).is_err();
                        }
                    } else {
                        stalled_on = first;
                        stall_polls = 0;
                    }
                }
                if failed {
                    conn_failed.store(true, Ordering::Relaxed);
                    break;
                }
            }
        })
    };

    // ---- Reader loop ------------------------------------------------
    let end = reader_loop(
        &mut reader,
        conn_rx,
        config,
        pipeline,
        runtime,
        session.as_mut().expect("session installed above"),
        done,
        &writer,
        &conn_failed,
        metrics,
        &stop,
    );
    stop.store(true, Ordering::Relaxed);
    let _ = writer_handle.join();
    end
}

#[allow(clippy::too_many_arguments)]
fn reader_loop(
    reader: &mut FrameReader<WireStream>,
    conn_rx: &Receiver<AcceptEvent>,
    config: &ShardServerConfig,
    pipeline: &Arc<SleuthPipeline>,
    runtime: &Arc<Mutex<Option<ServeRuntime>>>,
    session: &mut Session,
    done: &mut Option<Box<ShardFinal>>,
    writer: &Arc<Mutex<FrameWriter<WireStream>>>,
    conn_failed: &AtomicBool,
    metrics: &Arc<WireMetrics>,
    stop: &AtomicBool,
) -> ConnEnd {
    loop {
        // Checked on *every* iteration (not just read timeouts), so a
        // steady stream of traffic on a soon-to-be-dead connection
        // cannot starve a replacement connection waiting in the queue.
        match conn_rx.try_recv() {
            Ok(AcceptEvent::Conn(new)) => {
                let mut w = lock_or_recover(writer, None);
                let _ = w.send(&Frame::Goodbye {
                    reason: "superseded".to_string(),
                });
                let _ = w.flush_held();
                drop(w);
                return ConnEnd::Superseded(new);
            }
            // A listener failure ends the acceptor; the serving loop
            // surfaces it once this connection finishes.
            Ok(AcceptEvent::Err(_)) => {}
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {}
        }
        if conn_failed.load(Ordering::Relaxed) {
            return ConnEnd::Disconnected;
        }
        if let Some(final_state) = done.as_ref() {
            if lock_or_recover(&session.send, None).unacked_len() == 0 {
                return ConnEnd::Finished(final_state.clone());
            }
        }
        let frame = match reader.read_frame() {
            Ok(frame) => frame,
            Err(WireError::Timeout) => {
                // Post-shutdown the writer thread is gone, so the
                // reader owns resend liveness for the final frames.
                if done.is_some() && replay_unacked(&session.send, writer, metrics).is_err() {
                    return ConnEnd::Disconnected;
                }
                continue;
            }
            Err(e) if !e.is_stream_fatal() => continue,
            Err(_) => return ConnEnd::Disconnected,
        };
        match frame {
            Frame::Ack { upto } => {
                lock_or_recover(&session.send, None).ack(upto);
            }
            Frame::Nack { expected } => {
                let frames = lock_or_recover(&session.send, None).resend_from(expected);
                let mut w = lock_or_recover(writer, None);
                for f in &frames {
                    if w.send(f).is_err() {
                        return ConnEnd::Disconnected;
                    }
                    metrics.frames_resent.inc();
                }
            }
            Frame::Data { seq, msg } => match session.recv.accept(seq, msg) {
                RecvOutcome::Deliver(msgs) => {
                    let mut shutdown_requested = false;
                    for msg in msgs {
                        match apply_msg(msg, config, pipeline, runtime, &session.send, writer) {
                            Ok(false) => {}
                            Ok(true) => shutdown_requested = true,
                            Err(_) => return ConnEnd::Disconnected,
                        }
                    }
                    if send_ack(&session.recv, writer, metrics).is_err() {
                        return ConnEnd::Disconnected;
                    }
                    if shutdown_requested && done.is_none() {
                        // Stop polling, drain the runtime, stream the
                        // residue, and reply with the final state.
                        stop.store(true, Ordering::Relaxed);
                        let report = {
                            let mut guard = lock_or_recover(runtime, None);
                            guard.take().map(|rt| rt.shutdown())
                        };
                        let Some(report) = report else {
                            return ConnEnd::Disconnected;
                        };
                        let final_state = Box::new(ShardFinal {
                            trace_count: report.store.trace_count() as u64,
                            span_count: report.store.span_count() as u64,
                            metrics: report.metrics.clone(),
                        });
                        let mut tail: Vec<Msg> = Vec::new();
                        for v in report.verdicts {
                            tail.push(Msg::Verdict(v));
                        }
                        for q in report.quarantined {
                            tail.push(Msg::Quarantined(WireQuarantined::from_entry(
                                &q,
                                config.shard_id,
                            )));
                        }
                        tail.push(Msg::ShutdownReply(final_state.clone()));
                        *done = Some(final_state);
                        for msg in tail {
                            // Staging must succeed; a write failure is
                            // healed by resume + replay on reconnect.
                            let frame = match lock_or_recover(&session.send, None).stage(msg) {
                                Ok(frame) => frame,
                                Err(_) => return ConnEnd::Disconnected,
                            };
                            let _ = lock_or_recover(writer, None).send(&frame);
                        }
                    }
                }
                RecvOutcome::Duplicate => {
                    metrics.duplicates_dropped.inc();
                    if send_ack(&session.recv, writer, metrics).is_err() {
                        return ConnEnd::Disconnected;
                    }
                }
                RecvOutcome::Gap { expected, .. } => {
                    metrics.nacks_sent.inc();
                    if lock_or_recover(writer, None)
                        .send(&Frame::Nack { expected })
                        .is_err()
                    {
                        return ConnEnd::Disconnected;
                    }
                }
            },
            Frame::Heartbeat { nonce } => {
                // Liveness probe: answer immediately, even while
                // draining a shutdown tail, so a busy-but-healthy
                // shard never reads as dead.
                let mut w = lock_or_recover(writer, None);
                if w.send(&Frame::HeartbeatAck { nonce })
                    .and_then(|_| w.flush_held())
                    .is_err()
                {
                    return ConnEnd::Disconnected;
                }
            }
            Frame::HeartbeatAck { .. } => {}
            // The router is leaving this connection cleanly; keep the
            // session for whoever dials next.
            Frame::Goodbye { .. } => return ConnEnd::Disconnected,
            // A second Hello mid-session or stray handshake frames are
            // protocol noise; ignore rather than kill a healthy link.
            Frame::Hello { .. } | Frame::HelloAck { .. } | Frame::Error { .. } => {}
        }
    }
}

fn send_ack(
    recv: &RecvChannel,
    writer: &Arc<Mutex<FrameWriter<WireStream>>>,
    metrics: &WireMetrics,
) -> Result<(), WireError> {
    if let Some(upto) = recv.ack_level() {
        metrics.acks_sent.inc();
        let mut w = lock_or_recover(writer, None);
        w.send(&Frame::Ack { upto })?;
        w.flush_held()?;
    }
    Ok(())
}

/// Apply one delivered message to the runtime. Returns `Ok(true)` when
/// the message was `Shutdown`.
fn apply_msg(
    msg: Msg,
    config: &ShardServerConfig,
    pipeline: &Arc<SleuthPipeline>,
    runtime: &Arc<Mutex<Option<ServeRuntime>>>,
    send: &Arc<Mutex<SendChannel>>,
    writer: &Arc<Mutex<FrameWriter<WireStream>>>,
) -> Result<bool, WireError> {
    let guard = lock_or_recover(runtime, None);
    let Some(rt) = guard.as_ref() else {
        // Post-shutdown only duplicates should arrive (and dedup
        // catches those); anything else is ignored.
        return Ok(matches!(msg, Msg::Shutdown));
    };
    match msg {
        Msg::SpanBatch { now_us, spans } => {
            rt.submit_batch(spans, now_us);
        }
        Msg::Tick { now_us } => rt.tick(now_us),
        Msg::Publish | Msg::RefreshBaselines => {
            // Republish the held pipeline: a hot-swap drill that bumps
            // the version and exercises the registry drain.
            let version = rt.publish(Arc::clone(pipeline));
            drop(guard);
            stage_and_send(send, writer, Msg::PublishReply { version: version.0 })?;
        }
        Msg::MetricsRequest => {
            let snapshot = rt.metrics().snapshot();
            drop(guard);
            stage_and_send(send, writer, Msg::MetricsReply(Box::new(snapshot)))?;
        }
        Msg::QuarantineDrain => {
            let entries = rt.poll_quarantined();
            drop(guard);
            for q in entries {
                let wq = WireQuarantined::from_entry(&q, config.shard_id);
                stage_and_send(send, writer, Msg::Quarantined(wq))?;
            }
        }
        Msg::Shutdown => return Ok(true),
        // Shard-bound streams never carry these; ignore.
        Msg::Verdict(_)
        | Msg::Quarantined(_)
        | Msg::MetricsReply(_)
        | Msg::PublishReply { .. }
        | Msg::ShutdownReply(_) => {}
    }
    Ok(false)
}
