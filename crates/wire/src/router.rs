//! The front-end router: hash-routes span batches to shard servers
//! and merges their verdict, quarantine, and metric streams.
//!
//! [`RouterClient`] owns one connection (and one reliable-delivery
//! session) per shard endpoint. Routing uses the *same*
//! [`shard_of`] as the single-process runtime, so a trace lands on
//! global shard `shard_of(trace_id, num_peers)` whether the shards
//! are threads or processes — that identity is what makes the
//! multi-process verdict set comparable bit-for-bit to the
//! single-process one.
//!
//! Threading model: all writes and all protocol decisions happen on
//! the caller's thread; one background reader thread per peer only
//! decodes frames and forwards them (tagged with a connection
//! generation) into an event queue, which the caller drains on every
//! API call ([`RouterClient::poll_verdicts`] etc.). Peer death is
//! healed with bounded, backed-off reconnects that resume the
//! session and replay the unacked tail.
//!
//! Self-healing (see [`crate::health`]): every live peer is probed
//! with heartbeats on a configurable interval, so a stalled process
//! (SIGSTOP: socket open, nothing moving) is detected in bounded time
//! instead of never. A peer that misses its threshold — or exhausts
//! reconnects — is declared dead and its *retained traces fail over*:
//! the router keeps a bounded per-peer buffer of every trace it
//! routed, and re-routes the dead shard's buffer to survivors chosen
//! by rendezvous hashing (only the dead shard's keys move). A shard
//! that comes back as a fresh process gets its session reset and its
//! buffer replayed. Both replays can re-produce verdicts the dead
//! incarnation already delivered; the bounded per-trace
//! [`VerdictLedger`] drops those duplicates, making delivery
//! exactly-once across restarts. Only when *no* shard is live does a
//! trace get one synthetic degraded [`Verdict`], so downstream
//! consumers see an explicit signal instead of silence.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sleuth_serve::{shard_of, MetricsSnapshot, ModelVersion, QuarantinedTrace, Verdict};
use sleuth_trace::Span;

use crate::codec::{FrameReader, FrameWriter, NoWireFaults, WireFaultInjector};
use crate::error::WireError;
use crate::frame::{
    Frame, Msg, ShardFinal, DEFAULT_MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::health::{rendezvous_owner, HeartbeatConfig, HeartbeatState, PeerHealth, VerdictLedger};
use crate::metrics::{WireMetrics, WireMetricsSnapshot};
use crate::session::{RecvChannel, RecvOutcome, SendChannel};
use crate::transport::{Endpoint, WireStream};

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// One endpoint per global shard, in shard order.
    pub endpoints: Vec<Endpoint>,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
    /// OS read timeout for reader threads.
    pub read_timeout: Duration,
    /// Reconnect attempts per incident before a peer is declared
    /// dead (0 = never reconnect: first failure is fatal for the
    /// peer).
    pub reconnect_attempts: u32,
    /// Base reconnect backoff (doubles per attempt).
    pub reconnect_backoff: Duration,
    /// Backoff ceiling.
    pub reconnect_backoff_max: Duration,
    /// Bound on unacked and reorder buffers.
    pub session_cap: usize,
    /// Deadline for blocking request/reply calls (metrics fetch,
    /// publish, shutdown drain).
    pub response_timeout: Duration,
    /// Resend cadence while waiting inside a blocking call.
    pub resend_interval: Duration,
    /// Seed for session ids (distinct per peer; deterministic for
    /// reproducible tests).
    pub session_seed: u64,
    /// Heartbeat failure detection (probe interval + miss threshold).
    pub heartbeat: HeartbeatConfig,
    /// Whether traces owned by a dead shard fail over to survivors
    /// (rendezvous-hashed) and fresh-process reconnects replay the
    /// retained buffer. When false the router keeps the pre-failover
    /// behaviour: dead-peer traces get degraded verdicts only.
    pub failover_enabled: bool,
    /// Per-peer bound on traces retained for failover/restage replay
    /// (oldest evicted first).
    pub failover_buffer_cap: usize,
    /// Bound on the exactly-once verdict ledger (trace ids with an
    /// accepted verdict; oldest evicted first).
    pub ledger_cap: usize,
}

impl RouterConfig {
    /// Defaults for a set of endpoints.
    pub fn new(endpoints: Vec<Endpoint>) -> Self {
        RouterConfig {
            endpoints,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_millis(50),
            reconnect_attempts: 5,
            reconnect_backoff: Duration::from_millis(10),
            reconnect_backoff_max: Duration::from_millis(500),
            session_cap: 4096,
            response_timeout: Duration::from_secs(30),
            resend_interval: Duration::from_millis(100),
            session_seed: 0x5eed,
            heartbeat: HeartbeatConfig::default(),
            failover_enabled: true,
            failover_buffer_cap: 4096,
            ledger_cap: 65536,
        }
    }

    /// Validate the configuration with typed errors before any socket
    /// is dialed (the builder-validation pattern: a config that could
    /// never detect failures is rejected up front).
    pub fn validate(&self) -> Result<(), WireError> {
        if self.endpoints.is_empty() {
            return Err(WireError::Config(
                "router needs at least one endpoint".into(),
            ));
        }
        if self.session_cap == 0 {
            return Err(WireError::Config("session_cap must be >= 1".into()));
        }
        if self.failover_enabled && self.failover_buffer_cap == 0 {
            return Err(WireError::Config(
                "failover_buffer_cap must be >= 1 when failover is enabled".into(),
            ));
        }
        if self.ledger_cap == 0 {
            return Err(WireError::Config("ledger_cap must be >= 1".into()));
        }
        self.heartbeat.validate(self.response_timeout)?;
        Ok(())
    }
}

/// Bounded per-peer record of every trace routed to a peer, replayed
/// wholesale when the peer dies (failover) or comes back as a fresh
/// process (restage). Evicts whole traces, oldest first.
struct FailoverBuffer {
    spans: HashMap<u64, Vec<Span>>,
    order: VecDeque<u64>,
    cap: usize,
}

impl FailoverBuffer {
    fn new(cap: usize) -> Self {
        FailoverBuffer {
            spans: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    fn record(&mut self, span: &Span) {
        if let Some(existing) = self.spans.get_mut(&span.trace_id) {
            existing.push(span.clone());
            return;
        }
        self.spans.insert(span.trace_id, vec![span.clone()]);
        self.order.push_back(span.trace_id);
        if self.order.len() > self.cap {
            if let Some(evicted) = self.order.pop_front() {
                self.spans.remove(&evicted);
            }
        }
    }

    /// Clone every retained trace, oldest first (restage keeps the
    /// buffer: the peer still owns these traces).
    fn entries(&self) -> Vec<(u64, Vec<Span>)> {
        self.order
            .iter()
            .filter_map(|id| self.spans.get(id).map(|s| (*id, s.clone())))
            .collect()
    }

    /// Take every retained trace, oldest first, leaving the buffer
    /// empty (failover moves ownership to the survivors).
    fn drain_all(&mut self) -> Vec<(u64, Vec<Span>)> {
        let order = std::mem::take(&mut self.order);
        let mut spans = std::mem::take(&mut self.spans);
        order
            .into_iter()
            .filter_map(|id| spans.remove(&id).map(|s| (id, s)))
            .collect()
    }
}

/// Everything the router hands back after a clean shutdown.
#[derive(Debug)]
pub struct RouterReport {
    /// Every verdict received (real ones from shards plus synthetic
    /// degraded ones for unroutable traces), in arrival order.
    pub verdicts: Vec<Verdict>,
    /// Quarantined entries from every shard, `origin_shard` rewritten
    /// to the global shard index.
    pub quarantined: Vec<QuarantinedTrace>,
    /// Final state per shard (`None` for peers that died without
    /// delivering a `ShutdownReply`).
    pub shard_finals: Vec<Option<ShardFinal>>,
    /// All shard metrics folded through
    /// [`MetricsSnapshot::merge`] — the audited aggregation path, so
    /// span conservation balances across processes.
    pub metrics: MetricsSnapshot,
    /// Router-side wire metrics.
    pub wire: WireMetricsSnapshot,
    /// Peers that were dead at shutdown.
    pub dead_peers: Vec<usize>,
}

enum Event {
    Frame(usize, u64, Frame),
    Dead(usize, u64, WireError),
}

struct Peer {
    idx: usize,
    endpoint: Endpoint,
    session_id: u64,
    alive: bool,
    generation: u64,
    writer: Option<FrameWriter<WireStream>>,
    stream: Option<WireStream>,
    reader_handle: Option<JoinHandle<()>>,
    send: SendChannel,
    recv: RecvChannel,
    ever_connected: bool,
    final_state: Option<Box<ShardFinal>>,
    last_metrics: Option<Box<MetricsSnapshot>>,
    publish_version: Option<u64>,
    degraded_traces: HashSet<u64>,
    hb: HeartbeatState,
    buffer: FailoverBuffer,
    needs_restage: bool,
    restaging: bool,
}

/// A client connection to a fleet of shard servers.
pub struct RouterClient {
    peers: Vec<Peer>,
    config: RouterConfig,
    injector: Arc<dyn WireFaultInjector>,
    metrics: Arc<WireMetrics>,
    events_tx: Sender<Event>,
    events_rx: Receiver<Event>,
    verdicts: Vec<Verdict>,
    quarantined: Vec<QuarantinedTrace>,
    ledger: VerdictLedger,
    closing: bool,
    started: Instant,
    last_now_us: u64,
}

impl RouterClient {
    /// Connect to every endpoint with no fault injection.
    pub fn connect(config: RouterConfig) -> Result<RouterClient, WireError> {
        RouterClient::connect_with_injector(config, Arc::new(NoWireFaults))
    }

    /// Connect to every endpoint, threading `injector` into every
    /// frame writer (the chaos seam). Fails only when *no* shard is
    /// reachable or the config is empty; individual unreachable
    /// shards start out dead and get degraded-verdict treatment.
    pub fn connect_with_injector(
        config: RouterConfig,
        injector: Arc<dyn WireFaultInjector>,
    ) -> Result<RouterClient, WireError> {
        config.validate()?;
        let (events_tx, events_rx) = std::sync::mpsc::channel();
        let metrics = Arc::new(WireMetrics::default());
        let peers = config
            .endpoints
            .iter()
            .enumerate()
            .map(|(idx, endpoint)| Peer {
                idx,
                endpoint: endpoint.clone(),
                session_id: config
                    .session_seed
                    .wrapping_add(idx as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    | 1,
                alive: false,
                generation: 0,
                writer: None,
                stream: None,
                reader_handle: None,
                send: SendChannel::new(config.session_cap),
                recv: RecvChannel::new(config.session_cap),
                ever_connected: false,
                final_state: None,
                last_metrics: None,
                publish_version: None,
                degraded_traces: HashSet::new(),
                hb: HeartbeatState::default(),
                buffer: FailoverBuffer::new(config.failover_buffer_cap),
                needs_restage: false,
                restaging: false,
            })
            .collect();
        let ledger_cap = config.ledger_cap;
        let mut client = RouterClient {
            peers,
            config,
            injector,
            metrics,
            events_tx,
            events_rx,
            verdicts: Vec::new(),
            quarantined: Vec::new(),
            ledger: VerdictLedger::new(ledger_cap),
            closing: false,
            started: Instant::now(),
            last_now_us: 0,
        };
        for idx in 0..client.peers.len() {
            if !client.dial(idx, false) {
                client.kill_peer(idx);
            }
        }
        if client.peers.iter().any(|p| p.alive) {
            Ok(client)
        } else {
            Err(WireError::PeerDead { peer: 0 })
        }
    }

    /// Number of shards (dead or alive) this router fans out over.
    pub fn num_shards(&self) -> usize {
        self.peers.len()
    }

    /// Indices of peers currently declared dead.
    pub fn dead_peers(&self) -> Vec<usize> {
        self.peers
            .iter()
            .filter(|p| !p.alive)
            .map(|p| p.idx)
            .collect()
    }

    /// Router-side wire metrics.
    pub fn wire_metrics(&self) -> WireMetricsSnapshot {
        self.metrics.snapshot()
    }

    // ---- Connection management --------------------------------------

    /// Dial peer `idx`. `resume` asks the server to reattach the
    /// existing session; on success unacked frames are replayed.
    fn dial(&mut self, idx: usize, resume: bool) -> bool {
        let attempts = self
            .config
            .reconnect_attempts
            .max(if resume { 0 } else { 1 });
        if resume && self.config.reconnect_attempts == 0 {
            return false;
        }
        let mut backoff = self.config.reconnect_backoff;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.config.reconnect_backoff_max);
            }
            if let Some(delay) = self.injector.connect_delay(idx, attempt) {
                std::thread::sleep(delay);
            }
            if self.try_dial_once(idx, resume) {
                if resume {
                    self.metrics.reconnects.inc();
                }
                return true;
            }
        }
        false
    }

    fn try_dial_once(&mut self, idx: usize, resume: bool) -> bool {
        let endpoint = self.peers[idx].endpoint.clone();
        let session_id = self.peers[idx].session_id;
        let Ok(stream) = WireStream::connect(&endpoint) else {
            return false;
        };
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
            || stream.set_nodelay().is_err()
        {
            return false;
        }
        let Ok(read_half) = stream.try_clone() else {
            return false;
        };
        let mut reader = FrameReader::new(
            read_half,
            self.config.max_frame_len,
            Arc::clone(&self.metrics),
        );
        let Ok(write_half) = stream.try_clone() else {
            return false;
        };
        let mut writer = FrameWriter::new(
            write_half,
            PROTOCOL_VERSION,
            idx,
            Arc::clone(&self.injector),
            Arc::clone(&self.metrics),
        );
        if writer
            .send(&Frame::Hello {
                min_version: MIN_PROTOCOL_VERSION,
                max_version: PROTOCOL_VERSION,
                session_id,
                resume,
            })
            .is_err()
        {
            return false;
        }
        // Synchronous handshake: wait for HelloAck on this thread.
        let deadline = Instant::now() + self.config.response_timeout;
        let (version, resumed) = loop {
            match reader.read_frame() {
                Ok(Frame::HelloAck { version, resumed }) => break (version, resumed),
                Ok(Frame::Error { .. }) => return false,
                Ok(_) => continue, // stale replayed frames: reader thread's job
                Err(WireError::Timeout) if Instant::now() < deadline => continue,
                Err(e) if !e.is_stream_fatal() => continue,
                Err(_) => return false,
            }
        };
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            return false;
        }
        writer.set_version(version);
        let peer = &mut self.peers[idx];
        if resume && !resumed {
            // The server lost the session: a fresh process accepted
            // the connection. With failover on, reset both channels
            // and replay the retained trace buffer once the dial
            // completes — the verdict ledger absorbs any duplicates
            // the dead incarnation already delivered. Otherwise any
            // unacked state is unrecoverable and only a pristine
            // channel may continue safely.
            if self.config.failover_enabled && !self.closing {
                peer.send = SendChannel::new(self.config.session_cap);
                peer.recv = RecvChannel::new(self.config.session_cap);
                peer.needs_restage = true;
                self.metrics.sessions_reset.inc();
            } else if peer.send.unacked_len() > 0 || peer.recv.expected() > 1 {
                return false;
            }
        }
        if resumed {
            self.metrics.sessions_resumed.inc();
        }
        peer.generation += 1;
        peer.hb.reset_probe();
        let generation = peer.generation;
        peer.writer = Some(writer);
        peer.stream = Some(stream);
        peer.alive = true;
        peer.ever_connected = true;
        let events = self.events_tx.clone();
        let handle = std::thread::spawn(move || loop {
            match reader.read_frame() {
                Ok(frame) => {
                    if events.send(Event::Frame(idx, generation, frame)).is_err() {
                        return;
                    }
                }
                Err(WireError::Timeout) => continue,
                Err(e) if !e.is_stream_fatal() => continue,
                Err(e) => {
                    let _ = events.send(Event::Dead(idx, generation, e));
                    return;
                }
            }
        });
        if let Some(old) = self.peers[idx].reader_handle.replace(handle) {
            // The previous generation's reader exits on its own once
            // its (shut-down) socket errors out.
            drop(old);
        }
        // Replay anything the old connection never got acked.
        self.replay_unacked(idx)
    }

    fn replay_unacked(&mut self, idx: usize) -> bool {
        let frames = self.peers[idx].send.unacked_frames();
        if frames.is_empty() {
            return true;
        }
        let Some(writer) = self.peers[idx].writer.as_mut() else {
            return false;
        };
        for frame in &frames {
            if writer.send(frame).is_err() {
                return false;
            }
            self.metrics.frames_resent.inc();
        }
        writer.flush_held().is_ok()
    }

    /// Declare a peer dead: close its socket, count it, and fail its
    /// retained traces over to the survivors.
    fn kill_peer(&mut self, idx: usize) {
        let peer = &mut self.peers[idx];
        if let Some(stream) = peer.stream.take() {
            stream.shutdown_both();
        }
        peer.writer = None;
        if peer.alive || !peer.ever_connected {
            self.metrics.peer_deaths.inc();
        }
        peer.alive = false;
        peer.hb.health = PeerHealth::Dead;
        self.fail_over(idx);
    }

    /// Recover a failed connection: dial with resume, replaying the
    /// unacked tail (or, when the peer came back as a fresh process,
    /// restaging its retained traces). On failure the peer is dead.
    fn recover(&mut self, idx: usize) -> bool {
        if let Some(stream) = self.peers[idx].stream.take() {
            stream.shutdown_both();
        }
        self.peers[idx].writer = None;
        self.peers[idx].alive = false;
        if self.dial(idx, true) {
            if std::mem::take(&mut self.peers[idx].needs_restage) {
                self.restage(idx);
            }
            true
        } else {
            self.kill_peer(idx);
            false
        }
    }

    /// Re-route everything a dead peer retained to survivors chosen by
    /// rendezvous hashing, or synthesize degraded verdicts when no
    /// shard is left. The drained buffer makes re-entry (a survivor
    /// dying mid-failover) terminate: each peer's traces move at most
    /// once per incident.
    fn fail_over(&mut self, idx: usize) {
        if !self.config.failover_enabled || self.closing {
            return;
        }
        let entries = self.peers[idx].buffer.drain_all();
        if entries.is_empty() {
            return;
        }
        self.metrics.shard_failovers.inc();
        let now_us = self.last_now_us;
        for (trace_id, spans) in entries {
            match self.route_of(trace_id) {
                Some(target) => {
                    for span in &spans {
                        self.peers[target].buffer.record(span);
                    }
                    self.metrics.traces_failed_over.inc();
                    self.send_msg(target, Msg::SpanBatch { now_us, spans });
                }
                None => self.degrade_trace(idx, trace_id),
            }
        }
    }

    /// Replay a fresh-process peer's retained traces over its reset
    /// session. The buffer is kept (the peer still owns these traces);
    /// duplicate verdicts die at the ledger.
    fn restage(&mut self, idx: usize) {
        if self.peers[idx].restaging {
            return;
        }
        self.peers[idx].restaging = true;
        let now_us = self.last_now_us;
        for (_, spans) in self.peers[idx].buffer.entries() {
            if !self.peers[idx].alive {
                break;
            }
            self.send_msg(idx, Msg::SpanBatch { now_us, spans });
        }
        self.peers[idx].restaging = false;
    }

    /// Where a trace goes right now: its static owner while that peer
    /// is live, else a rendezvous-hashed survivor (failover only).
    fn route_of(&self, trace_id: u64) -> Option<usize> {
        let owner = shard_of(trace_id, self.peers.len());
        if self.peers[owner].alive {
            return Some(owner);
        }
        if !self.config.failover_enabled {
            return None;
        }
        let live: Vec<usize> = self
            .peers
            .iter()
            .filter(|p| p.alive)
            .map(|p| p.idx)
            .collect();
        rendezvous_owner(trace_id, &live)
    }

    /// Probe live peers whose heartbeat interval has elapsed, and kill
    /// the ones that crossed the miss threshold. Runs on the caller
    /// thread from [`RouterClient::pump`], so detection advances on
    /// every API call and inside every blocking wait.
    fn tick_health(&mut self) {
        if self.closing {
            // During shutdown a shard legitimately goes quiet while
            // draining; socket errors still catch real deaths.
            return;
        }
        let interval_us = self.config.heartbeat.interval.as_micros() as u64;
        let miss_threshold = self.config.heartbeat.miss_threshold;
        let now_us = self.started.elapsed().as_micros() as u64;
        let mut dead = Vec::new();
        let mut failed = Vec::new();
        for idx in 0..self.peers.len() {
            let peer = &mut self.peers[idx];
            if !peer.alive || now_us.saturating_sub(peer.hb.last_sent_us) < interval_us {
                continue;
            }
            if peer.hb.outstanding.is_some() {
                self.metrics.heartbeats_missed.inc();
                if peer.hb.on_miss(miss_threshold) == PeerHealth::Dead {
                    dead.push(idx);
                    continue;
                }
            }
            let nonce = peer.hb.on_send(now_us);
            let Some(writer) = peer.writer.as_mut() else {
                continue;
            };
            if writer
                .send(&Frame::Heartbeat { nonce })
                .and_then(|_| writer.flush_held())
                .is_ok()
            {
                self.metrics.heartbeats_sent.inc();
            } else {
                failed.push(idx);
            }
        }
        for idx in dead {
            // No redial: a SIGSTOP'd process would accept the
            // connection and stall the handshake; failover now,
            // bounded, beats maybe-recovery later.
            self.kill_peer(idx);
        }
        for idx in failed {
            self.recover(idx);
        }
    }

    /// Stage `msg` to peer `idx` and write it, recovering the
    /// connection once on failure (the staged frame rides the resume
    /// replay). Returns whether the message is staged on a live peer.
    fn send_msg(&mut self, idx: usize, msg: Msg) -> bool {
        if !self.peers[idx].alive {
            return false;
        }
        let frame = match self.peers[idx].send.stage(msg) {
            Ok(frame) => frame,
            Err(_) => {
                self.kill_peer(idx);
                return false;
            }
        };
        let result = {
            let writer = self.peers[idx]
                .writer
                .as_mut()
                .expect("alive peer has a writer");
            writer.send(&frame)
        };
        match result {
            Ok(()) => true,
            Err(_) => self.recover(idx),
        }
    }

    // ---- Event pump --------------------------------------------------

    fn pump(&mut self) {
        // Drain queued frames first so an ack that already arrived is
        // credited before the heartbeat pass judges the peer.
        while let Ok(event) = self.events_rx.try_recv() {
            self.handle_event(event);
        }
        self.tick_health();
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::Frame(idx, generation, frame) => {
                if self.peers[idx].generation != generation {
                    return; // stale connection
                }
                self.handle_frame(idx, frame);
            }
            Event::Dead(idx, generation, _err) => {
                if self.peers[idx].generation != generation || !self.peers[idx].alive {
                    return;
                }
                // A peer that already delivered its final state has
                // nothing left to say: the socket closing is the
                // expected end of a clean shutdown, not a failure —
                // reconnecting would stall the event loop dialing a
                // process that has exited.
                if self.peers[idx].final_state.is_some() {
                    let peer = &mut self.peers[idx];
                    if let Some(stream) = peer.stream.take() {
                        stream.shutdown_both();
                    }
                    peer.writer = None;
                    peer.alive = false;
                    return;
                }
                self.recover(idx);
            }
        }
    }

    fn handle_frame(&mut self, idx: usize, frame: Frame) {
        match frame {
            Frame::Ack { upto } => {
                self.peers[idx].send.ack(upto);
            }
            Frame::Nack { expected } => {
                let frames = self.peers[idx].send.resend_from(expected);
                let mut failed = false;
                if let Some(writer) = self.peers[idx].writer.as_mut() {
                    for frame in &frames {
                        if writer.send(frame).is_err() {
                            failed = true;
                            break;
                        }
                        self.metrics.frames_resent.inc();
                    }
                } else {
                    failed = true;
                }
                if failed {
                    self.recover(idx);
                }
            }
            Frame::Data { seq, msg } => match self.peers[idx].recv.accept(seq, msg) {
                RecvOutcome::Deliver(msgs) => {
                    let healed = msgs.len() > 1;
                    if healed {
                        self.metrics.reorders_healed.add((msgs.len() - 1) as u64);
                    }
                    for msg in msgs {
                        self.handle_msg(idx, msg);
                    }
                    self.ack_peer(idx);
                }
                RecvOutcome::Duplicate => {
                    self.metrics.duplicates_dropped.inc();
                    self.ack_peer(idx);
                }
                RecvOutcome::Gap { expected, .. } => {
                    self.metrics.nacks_sent.inc();
                    let mut failed = false;
                    if let Some(writer) = self.peers[idx].writer.as_mut() {
                        failed = writer.send(&Frame::Nack { expected }).is_err();
                    }
                    if failed {
                        self.recover(idx);
                    }
                }
            },
            Frame::HeartbeatAck { nonce } => {
                if self.peers[idx].hb.on_ack(nonce) {
                    self.metrics.heartbeat_acks.inc();
                }
            }
            Frame::Heartbeat { nonce } => {
                // A peer probing us: answer immediately.
                let mut failed = false;
                if let Some(writer) = self.peers[idx].writer.as_mut() {
                    failed = writer
                        .send(&Frame::HeartbeatAck { nonce })
                        .and_then(|_| writer.flush_held())
                        .is_err();
                }
                if failed {
                    self.recover(idx);
                }
            }
            Frame::Goodbye { .. } => {
                // Clean close from the server (our session was
                // superseded by a newer connection): don't dial back.
                self.kill_peer(idx);
            }
            Frame::Hello { .. } | Frame::HelloAck { .. } | Frame::Error { .. } => {}
        }
    }

    fn ack_peer(&mut self, idx: usize) {
        let Some(upto) = self.peers[idx].recv.ack_level() else {
            return;
        };
        let mut failed = false;
        if let Some(writer) = self.peers[idx].writer.as_mut() {
            self.metrics.acks_sent.inc();
            failed = writer
                .send(&Frame::Ack { upto })
                .and_then(|_| writer.flush_held())
                .is_err();
        }
        if failed {
            self.recover(idx);
        }
    }

    fn handle_msg(&mut self, idx: usize, msg: Msg) {
        match msg {
            Msg::Verdict(v) => {
                // Exactly-once across restarts: a trace that already
                // produced an accepted verdict (then got replayed by a
                // respawned shard or re-run by a failover) is dropped
                // here, not double-emitted.
                if self.ledger.insert(v.trace_id) {
                    self.verdicts.push(v);
                } else {
                    self.metrics.verdicts_deduped.inc();
                }
            }
            Msg::Quarantined(q) => {
                let mut entry = q.into_entry();
                // Rewrite local → global shard attribution. Servers
                // already stamp their configured global id; fall back
                // to the peer index for older entries.
                entry.origin_shard = entry.origin_shard.or(Some(idx));
                self.quarantined.push(entry);
            }
            Msg::MetricsReply(m) => self.peers[idx].last_metrics = Some(m),
            Msg::PublishReply { version } => self.peers[idx].publish_version = Some(version),
            Msg::ShutdownReply(f) => {
                self.peers[idx].last_metrics = Some(Box::new(f.metrics.clone()));
                self.peers[idx].final_state = Some(f);
            }
            // Router-bound streams never carry these.
            Msg::SpanBatch { .. }
            | Msg::Tick { .. }
            | Msg::Publish
            | Msg::RefreshBaselines
            | Msg::MetricsRequest
            | Msg::QuarantineDrain
            | Msg::Shutdown => {}
        }
    }

    /// Block on the event queue until `pred(self)` or the deadline,
    /// replaying unacked frames at `resend_interval` so a dropped
    /// request cannot stall the wait.
    fn await_until(&mut self, deadline: Instant, pred: impl Fn(&RouterClient) -> bool) -> bool {
        let mut next_resend = Instant::now() + self.config.resend_interval;
        loop {
            self.pump();
            if pred(self) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if now >= next_resend {
                next_resend = now + self.config.resend_interval;
                for idx in 0..self.peers.len() {
                    if self.peers[idx].alive && self.peers[idx].send.unacked_len() > 0 {
                        self.replay_unacked(idx);
                    }
                }
            }
            let wait = deadline.min(next_resend).saturating_duration_since(now);
            match self
                .events_rx
                .recv_timeout(wait.max(Duration::from_millis(1)))
            {
                Ok(event) => self.handle_event(event),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return pred(self),
            }
        }
    }

    // ---- Public API --------------------------------------------------

    /// Route one span batch. Whole traces go to
    /// `shard_of(trace_id, num_shards)` while that peer is live; a
    /// dead owner's traces fail over to a rendezvous-hashed survivor.
    /// Only when no shard is live does a trace get counted unroutable
    /// and one synthetic degraded verdict.
    pub fn submit_batch(&mut self, spans: Vec<Span>, now_us: u64) -> sleuth_serve::SubmitReport {
        self.last_now_us = self.last_now_us.max(now_us);
        self.pump();
        let num_shards = self.peers.len();
        let mut report = sleuth_serve::SubmitReport::default();
        let mut routed: Vec<Vec<Span>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut unroutable: Vec<Vec<u64>> = (0..num_shards).map(|_| Vec::new()).collect();
        for span in spans {
            let owner = shard_of(span.trace_id, num_shards);
            match self.route_of(span.trace_id) {
                Some(target) => routed[target].push(span),
                None => unroutable[owner].push(span.trace_id),
            }
        }
        for (idx, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let count = batch.len();
            let trace_ids: Vec<u64> = batch.iter().map(|s| s.trace_id).collect();
            if self.config.failover_enabled {
                for span in &batch {
                    self.peers[idx].buffer.record(span);
                }
            }
            let sent = self.send_msg(
                idx,
                Msg::SpanBatch {
                    now_us,
                    spans: batch,
                },
            );
            if sent || (self.config.failover_enabled && self.peers.iter().any(|p| p.alive)) {
                // Either staged on a live peer, or the peer died
                // mid-send and kill_peer already failed its buffer —
                // these spans included — over to a survivor.
                self.metrics.spans_routed.add(count as u64);
                report.enqueued += count;
            } else {
                self.mark_unroutable(idx, &trace_ids, &mut report);
            }
        }
        for (idx, ids) in unroutable.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            self.mark_unroutable(idx, &ids, &mut report);
        }
        report
    }

    fn mark_unroutable(
        &mut self,
        idx: usize,
        trace_ids: &[u64],
        report: &mut sleuth_serve::SubmitReport,
    ) {
        report.rejected += trace_ids.len();
        self.metrics.spans_unroutable.add(trace_ids.len() as u64);
        for &trace_id in trace_ids {
            self.degrade_trace(idx, trace_id);
        }
    }

    /// One synthetic degraded verdict per trace that no shard can
    /// answer for — unless a real verdict already covers it.
    fn degrade_trace(&mut self, idx: usize, trace_id: u64) {
        if self.ledger.contains(trace_id) {
            return;
        }
        if self.peers[idx].degraded_traces.insert(trace_id) {
            self.metrics.degraded_unroutable.inc();
            self.verdicts.push(Verdict {
                trace_id,
                services: Vec::new(),
                cluster: None,
                rca_latency_us: 0,
                model_version: ModelVersion(0),
                degraded: true,
            });
        }
    }

    /// Advance every live shard's logical clock.
    pub fn tick(&mut self, now_us: u64) {
        self.last_now_us = self.last_now_us.max(now_us);
        self.pump();
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::Tick { now_us });
        }
    }

    /// Verdicts received since the last call (including synthetic
    /// degraded verdicts for unroutable traces).
    pub fn poll_verdicts(&mut self) -> Vec<Verdict> {
        self.pump();
        std::mem::take(&mut self.verdicts)
    }

    /// Quarantined entries received since the last call, with global
    /// shard attribution.
    pub fn poll_quarantined(&mut self) -> Vec<QuarantinedTrace> {
        self.pump();
        std::mem::take(&mut self.quarantined)
    }

    /// Ask every live shard to republish its pipeline; block until
    /// each replies with its new version (or the deadline passes).
    /// Returns per-shard versions (`None` = dead or no reply).
    pub fn publish_all(&mut self) -> Vec<Option<u64>> {
        self.pump();
        for peer in &mut self.peers {
            peer.publish_version = None;
        }
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::Publish);
        }
        let deadline = Instant::now() + self.config.response_timeout;
        self.await_until(deadline, |c| {
            c.peers
                .iter()
                .all(|p| !p.alive || p.publish_version.is_some())
        });
        self.peers.iter().map(|p| p.publish_version).collect()
    }

    /// Fetch a fresh metrics snapshot from every live shard
    /// (blocking). Returns per-shard snapshots (`None` = dead or no
    /// reply).
    pub fn fetch_metrics(&mut self) -> Vec<Option<MetricsSnapshot>> {
        self.pump();
        for peer in &mut self.peers {
            peer.last_metrics = None;
        }
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::MetricsRequest);
        }
        let deadline = Instant::now() + self.config.response_timeout;
        self.await_until(deadline, |c| {
            c.peers.iter().all(|p| !p.alive || p.last_metrics.is_some())
        });
        self.peers
            .iter()
            .map(|p| p.last_metrics.as_deref().cloned())
            .collect()
    }

    /// Ask every live shard to flush its quarantine now; entries
    /// arrive via [`RouterClient::poll_quarantined`].
    pub fn drain_quarantine(&mut self) {
        self.pump();
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::QuarantineDrain);
        }
    }

    /// Drive every live shard through shutdown, drain all residual
    /// verdicts and quarantine entries, and merge final metrics.
    pub fn shutdown(mut self) -> RouterReport {
        self.closing = true;
        self.pump();
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::Shutdown);
        }
        let deadline = Instant::now() + self.config.response_timeout;
        self.await_until(deadline, |c| {
            c.peers.iter().all(|p| !p.alive || p.final_state.is_some())
        });
        // Whoever still has no final state is effectively dead.
        for idx in 0..self.peers.len() {
            if self.peers[idx].final_state.is_none() {
                self.kill_peer(idx);
            }
        }
        // Give the last acks a moment to flush, then close.
        self.pump();
        for peer in &mut self.peers {
            if let Some(stream) = peer.stream.take() {
                stream.shutdown_both();
            }
            peer.writer = None;
            peer.alive = false;
        }
        for peer in &mut self.peers {
            if let Some(handle) = peer.reader_handle.take() {
                let _ = handle.join();
            }
        }
        let mut merged = MetricsSnapshot::default();
        let mut shard_finals = Vec::with_capacity(self.peers.len());
        for peer in &mut self.peers {
            let final_state = peer.final_state.take().map(|b| *b);
            if let Some(f) = &final_state {
                merged.merge(&f.metrics);
            }
            shard_finals.push(final_state);
        }
        let dead_peers = shard_finals
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| i)
            .collect();
        RouterReport {
            verdicts: std::mem::take(&mut self.verdicts),
            quarantined: std::mem::take(&mut self.quarantined),
            shard_finals,
            metrics: merged,
            wire: self.metrics.snapshot(),
            dead_peers,
        }
    }
}
