//! The front-end router: hash-routes span batches to shard servers
//! and merges their verdict, quarantine, and metric streams.
//!
//! [`RouterClient`] owns one connection (and one reliable-delivery
//! session) per shard endpoint. Routing uses the *same*
//! [`shard_of`] as the single-process runtime, so a trace lands on
//! global shard `shard_of(trace_id, num_peers)` whether the shards
//! are threads or processes — that identity is what makes the
//! multi-process verdict set comparable bit-for-bit to the
//! single-process one.
//!
//! Threading model: all writes and all protocol decisions happen on
//! the caller's thread; one background reader thread per peer only
//! decodes frames and forwards them (tagged with a connection
//! generation) into an event queue, which the caller drains on every
//! API call ([`RouterClient::poll_verdicts`] etc.). Peer death is
//! healed with bounded, backed-off reconnects that resume the
//! session and replay the unacked tail; a peer that stays dead gets
//! its spans counted unroutable and one synthetic degraded
//! [`Verdict`] per affected trace, so downstream consumers see an
//! explicit signal instead of silence.

use std::collections::HashSet;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sleuth_serve::{shard_of, MetricsSnapshot, ModelVersion, QuarantinedTrace, Verdict};
use sleuth_trace::Span;

use crate::codec::{FrameReader, FrameWriter, NoWireFaults, WireFaultInjector};
use crate::error::WireError;
use crate::frame::{
    Frame, Msg, ShardFinal, DEFAULT_MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::metrics::{WireMetrics, WireMetricsSnapshot};
use crate::session::{RecvChannel, RecvOutcome, SendChannel};
use crate::transport::{Endpoint, WireStream};

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// One endpoint per global shard, in shard order.
    pub endpoints: Vec<Endpoint>,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
    /// OS read timeout for reader threads.
    pub read_timeout: Duration,
    /// Reconnect attempts per incident before a peer is declared
    /// dead (0 = never reconnect: first failure is fatal for the
    /// peer).
    pub reconnect_attempts: u32,
    /// Base reconnect backoff (doubles per attempt).
    pub reconnect_backoff: Duration,
    /// Backoff ceiling.
    pub reconnect_backoff_max: Duration,
    /// Bound on unacked and reorder buffers.
    pub session_cap: usize,
    /// Deadline for blocking request/reply calls (metrics fetch,
    /// publish, shutdown drain).
    pub response_timeout: Duration,
    /// Resend cadence while waiting inside a blocking call.
    pub resend_interval: Duration,
    /// Seed for session ids (distinct per peer; deterministic for
    /// reproducible tests).
    pub session_seed: u64,
}

impl RouterConfig {
    /// Defaults for a set of endpoints.
    pub fn new(endpoints: Vec<Endpoint>) -> Self {
        RouterConfig {
            endpoints,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_millis(50),
            reconnect_attempts: 5,
            reconnect_backoff: Duration::from_millis(10),
            reconnect_backoff_max: Duration::from_millis(500),
            session_cap: 4096,
            response_timeout: Duration::from_secs(30),
            resend_interval: Duration::from_millis(100),
            session_seed: 0x5eed,
        }
    }
}

/// Everything the router hands back after a clean shutdown.
#[derive(Debug)]
pub struct RouterReport {
    /// Every verdict received (real ones from shards plus synthetic
    /// degraded ones for unroutable traces), in arrival order.
    pub verdicts: Vec<Verdict>,
    /// Quarantined entries from every shard, `origin_shard` rewritten
    /// to the global shard index.
    pub quarantined: Vec<QuarantinedTrace>,
    /// Final state per shard (`None` for peers that died without
    /// delivering a `ShutdownReply`).
    pub shard_finals: Vec<Option<ShardFinal>>,
    /// All shard metrics folded through
    /// [`MetricsSnapshot::merge`] — the audited aggregation path, so
    /// span conservation balances across processes.
    pub metrics: MetricsSnapshot,
    /// Router-side wire metrics.
    pub wire: WireMetricsSnapshot,
    /// Peers that were dead at shutdown.
    pub dead_peers: Vec<usize>,
}

enum Event {
    Frame(usize, u64, Frame),
    Dead(usize, u64, WireError),
}

struct Peer {
    idx: usize,
    endpoint: Endpoint,
    session_id: u64,
    alive: bool,
    generation: u64,
    writer: Option<FrameWriter<WireStream>>,
    stream: Option<WireStream>,
    reader_handle: Option<JoinHandle<()>>,
    send: SendChannel,
    recv: RecvChannel,
    ever_connected: bool,
    final_state: Option<Box<ShardFinal>>,
    last_metrics: Option<Box<MetricsSnapshot>>,
    publish_version: Option<u64>,
    degraded_traces: HashSet<u64>,
}

/// A client connection to a fleet of shard servers.
pub struct RouterClient {
    peers: Vec<Peer>,
    config: RouterConfig,
    injector: Arc<dyn WireFaultInjector>,
    metrics: Arc<WireMetrics>,
    events_tx: Sender<Event>,
    events_rx: Receiver<Event>,
    verdicts: Vec<Verdict>,
    quarantined: Vec<QuarantinedTrace>,
}

impl RouterClient {
    /// Connect to every endpoint with no fault injection.
    pub fn connect(config: RouterConfig) -> Result<RouterClient, WireError> {
        RouterClient::connect_with_injector(config, Arc::new(NoWireFaults))
    }

    /// Connect to every endpoint, threading `injector` into every
    /// frame writer (the chaos seam). Fails only when *no* shard is
    /// reachable or the config is empty; individual unreachable
    /// shards start out dead and get degraded-verdict treatment.
    pub fn connect_with_injector(
        config: RouterConfig,
        injector: Arc<dyn WireFaultInjector>,
    ) -> Result<RouterClient, WireError> {
        if config.endpoints.is_empty() {
            return Err(WireError::Config(
                "router needs at least one endpoint".into(),
            ));
        }
        let (events_tx, events_rx) = std::sync::mpsc::channel();
        let metrics = Arc::new(WireMetrics::default());
        let peers = config
            .endpoints
            .iter()
            .enumerate()
            .map(|(idx, endpoint)| Peer {
                idx,
                endpoint: endpoint.clone(),
                session_id: config
                    .session_seed
                    .wrapping_add(idx as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    | 1,
                alive: false,
                generation: 0,
                writer: None,
                stream: None,
                reader_handle: None,
                send: SendChannel::new(config.session_cap),
                recv: RecvChannel::new(config.session_cap),
                ever_connected: false,
                final_state: None,
                last_metrics: None,
                publish_version: None,
                degraded_traces: HashSet::new(),
            })
            .collect();
        let mut client = RouterClient {
            peers,
            config,
            injector,
            metrics,
            events_tx,
            events_rx,
            verdicts: Vec::new(),
            quarantined: Vec::new(),
        };
        for idx in 0..client.peers.len() {
            if !client.dial(idx, false) {
                client.kill_peer(idx);
            }
        }
        if client.peers.iter().any(|p| p.alive) {
            Ok(client)
        } else {
            Err(WireError::PeerDead { peer: 0 })
        }
    }

    /// Number of shards (dead or alive) this router fans out over.
    pub fn num_shards(&self) -> usize {
        self.peers.len()
    }

    /// Indices of peers currently declared dead.
    pub fn dead_peers(&self) -> Vec<usize> {
        self.peers
            .iter()
            .filter(|p| !p.alive)
            .map(|p| p.idx)
            .collect()
    }

    /// Router-side wire metrics.
    pub fn wire_metrics(&self) -> WireMetricsSnapshot {
        self.metrics.snapshot()
    }

    // ---- Connection management --------------------------------------

    /// Dial peer `idx`. `resume` asks the server to reattach the
    /// existing session; on success unacked frames are replayed.
    fn dial(&mut self, idx: usize, resume: bool) -> bool {
        let attempts = self
            .config
            .reconnect_attempts
            .max(if resume { 0 } else { 1 });
        if resume && self.config.reconnect_attempts == 0 {
            return false;
        }
        let mut backoff = self.config.reconnect_backoff;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.config.reconnect_backoff_max);
            }
            if let Some(delay) = self.injector.connect_delay(idx, attempt) {
                std::thread::sleep(delay);
            }
            if self.try_dial_once(idx, resume) {
                if resume {
                    self.metrics.reconnects.inc();
                }
                return true;
            }
        }
        false
    }

    fn try_dial_once(&mut self, idx: usize, resume: bool) -> bool {
        let endpoint = self.peers[idx].endpoint.clone();
        let session_id = self.peers[idx].session_id;
        let Ok(stream) = WireStream::connect(&endpoint) else {
            return false;
        };
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
            || stream.set_nodelay().is_err()
        {
            return false;
        }
        let Ok(read_half) = stream.try_clone() else {
            return false;
        };
        let mut reader = FrameReader::new(
            read_half,
            self.config.max_frame_len,
            Arc::clone(&self.metrics),
        );
        let Ok(write_half) = stream.try_clone() else {
            return false;
        };
        let mut writer = FrameWriter::new(
            write_half,
            PROTOCOL_VERSION,
            idx,
            Arc::clone(&self.injector),
            Arc::clone(&self.metrics),
        );
        if writer
            .send(&Frame::Hello {
                min_version: MIN_PROTOCOL_VERSION,
                max_version: PROTOCOL_VERSION,
                session_id,
                resume,
            })
            .is_err()
        {
            return false;
        }
        // Synchronous handshake: wait for HelloAck on this thread.
        let deadline = Instant::now() + self.config.response_timeout;
        let (version, resumed) = loop {
            match reader.read_frame() {
                Ok(Frame::HelloAck { version, resumed }) => break (version, resumed),
                Ok(Frame::Error { .. }) => return false,
                Ok(_) => continue, // stale replayed frames: reader thread's job
                Err(WireError::Timeout) if Instant::now() < deadline => continue,
                Err(e) if !e.is_stream_fatal() => continue,
                Err(_) => return false,
            }
        };
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            return false;
        }
        writer.set_version(version);
        let peer = &mut self.peers[idx];
        if resume && !resumed {
            // The server lost the session (process restart). Any
            // unacked state is unrecoverable; only a pristine channel
            // may continue safely.
            if peer.send.unacked_len() > 0 || peer.recv.expected() > 1 {
                return false;
            }
        }
        if resumed {
            self.metrics.sessions_resumed.inc();
        }
        peer.generation += 1;
        let generation = peer.generation;
        peer.writer = Some(writer);
        peer.stream = Some(stream);
        peer.alive = true;
        peer.ever_connected = true;
        let events = self.events_tx.clone();
        let handle = std::thread::spawn(move || loop {
            match reader.read_frame() {
                Ok(frame) => {
                    if events.send(Event::Frame(idx, generation, frame)).is_err() {
                        return;
                    }
                }
                Err(WireError::Timeout) => continue,
                Err(e) if !e.is_stream_fatal() => continue,
                Err(e) => {
                    let _ = events.send(Event::Dead(idx, generation, e));
                    return;
                }
            }
        });
        if let Some(old) = self.peers[idx].reader_handle.replace(handle) {
            // The previous generation's reader exits on its own once
            // its (shut-down) socket errors out.
            drop(old);
        }
        // Replay anything the old connection never got acked.
        self.replay_unacked(idx)
    }

    fn replay_unacked(&mut self, idx: usize) -> bool {
        let frames = self.peers[idx].send.unacked_frames();
        if frames.is_empty() {
            return true;
        }
        let Some(writer) = self.peers[idx].writer.as_mut() else {
            return false;
        };
        for frame in &frames {
            if writer.send(frame).is_err() {
                return false;
            }
            self.metrics.frames_resent.inc();
        }
        writer.flush_held().is_ok()
    }

    /// Declare a peer dead: close its socket, count it, and leave its
    /// future spans to the unroutable path.
    fn kill_peer(&mut self, idx: usize) {
        let peer = &mut self.peers[idx];
        if let Some(stream) = peer.stream.take() {
            stream.shutdown_both();
        }
        peer.writer = None;
        if peer.alive || !peer.ever_connected {
            self.metrics.peer_deaths.inc();
        }
        peer.alive = false;
    }

    /// Recover a failed connection: dial with resume, replaying the
    /// unacked tail. On failure the peer is dead.
    fn recover(&mut self, idx: usize) -> bool {
        if let Some(stream) = self.peers[idx].stream.take() {
            stream.shutdown_both();
        }
        self.peers[idx].writer = None;
        self.peers[idx].alive = false;
        if self.dial(idx, true) {
            true
        } else {
            self.kill_peer(idx);
            false
        }
    }

    /// Stage `msg` to peer `idx` and write it, recovering the
    /// connection once on failure (the staged frame rides the resume
    /// replay). Returns whether the message is staged on a live peer.
    fn send_msg(&mut self, idx: usize, msg: Msg) -> bool {
        if !self.peers[idx].alive {
            return false;
        }
        let frame = match self.peers[idx].send.stage(msg) {
            Ok(frame) => frame,
            Err(_) => {
                self.kill_peer(idx);
                return false;
            }
        };
        let result = {
            let writer = self.peers[idx]
                .writer
                .as_mut()
                .expect("alive peer has a writer");
            writer.send(&frame)
        };
        match result {
            Ok(()) => true,
            Err(_) => self.recover(idx),
        }
    }

    // ---- Event pump --------------------------------------------------

    fn pump(&mut self) {
        while let Ok(event) = self.events_rx.try_recv() {
            self.handle_event(event);
        }
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::Frame(idx, generation, frame) => {
                if self.peers[idx].generation != generation {
                    return; // stale connection
                }
                self.handle_frame(idx, frame);
            }
            Event::Dead(idx, generation, _err) => {
                if self.peers[idx].generation != generation || !self.peers[idx].alive {
                    return;
                }
                // A peer that already delivered its final state has
                // nothing left to say: the socket closing is the
                // expected end of a clean shutdown, not a failure —
                // reconnecting would stall the event loop dialing a
                // process that has exited.
                if self.peers[idx].final_state.is_some() {
                    let peer = &mut self.peers[idx];
                    if let Some(stream) = peer.stream.take() {
                        stream.shutdown_both();
                    }
                    peer.writer = None;
                    peer.alive = false;
                    return;
                }
                self.recover(idx);
            }
        }
    }

    fn handle_frame(&mut self, idx: usize, frame: Frame) {
        match frame {
            Frame::Ack { upto } => {
                self.peers[idx].send.ack(upto);
            }
            Frame::Nack { expected } => {
                let frames = self.peers[idx].send.resend_from(expected);
                let mut failed = false;
                if let Some(writer) = self.peers[idx].writer.as_mut() {
                    for frame in &frames {
                        if writer.send(frame).is_err() {
                            failed = true;
                            break;
                        }
                        self.metrics.frames_resent.inc();
                    }
                } else {
                    failed = true;
                }
                if failed {
                    self.recover(idx);
                }
            }
            Frame::Data { seq, msg } => match self.peers[idx].recv.accept(seq, msg) {
                RecvOutcome::Deliver(msgs) => {
                    let healed = msgs.len() > 1;
                    if healed {
                        self.metrics.reorders_healed.add((msgs.len() - 1) as u64);
                    }
                    for msg in msgs {
                        self.handle_msg(idx, msg);
                    }
                    self.ack_peer(idx);
                }
                RecvOutcome::Duplicate => {
                    self.metrics.duplicates_dropped.inc();
                    self.ack_peer(idx);
                }
                RecvOutcome::Gap { expected, .. } => {
                    self.metrics.nacks_sent.inc();
                    let mut failed = false;
                    if let Some(writer) = self.peers[idx].writer.as_mut() {
                        failed = writer.send(&Frame::Nack { expected }).is_err();
                    }
                    if failed {
                        self.recover(idx);
                    }
                }
            },
            Frame::Hello { .. } | Frame::HelloAck { .. } | Frame::Error { .. } => {}
        }
    }

    fn ack_peer(&mut self, idx: usize) {
        let Some(upto) = self.peers[idx].recv.ack_level() else {
            return;
        };
        let mut failed = false;
        if let Some(writer) = self.peers[idx].writer.as_mut() {
            self.metrics.acks_sent.inc();
            failed = writer
                .send(&Frame::Ack { upto })
                .and_then(|_| writer.flush_held())
                .is_err();
        }
        if failed {
            self.recover(idx);
        }
    }

    fn handle_msg(&mut self, idx: usize, msg: Msg) {
        match msg {
            Msg::Verdict(v) => self.verdicts.push(v),
            Msg::Quarantined(q) => {
                let mut entry = q.into_entry();
                // Rewrite local → global shard attribution. Servers
                // already stamp their configured global id; fall back
                // to the peer index for older entries.
                entry.origin_shard = entry.origin_shard.or(Some(idx));
                self.quarantined.push(entry);
            }
            Msg::MetricsReply(m) => self.peers[idx].last_metrics = Some(m),
            Msg::PublishReply { version } => self.peers[idx].publish_version = Some(version),
            Msg::ShutdownReply(f) => {
                self.peers[idx].last_metrics = Some(Box::new(f.metrics.clone()));
                self.peers[idx].final_state = Some(f);
            }
            // Router-bound streams never carry these.
            Msg::SpanBatch { .. }
            | Msg::Tick { .. }
            | Msg::Publish
            | Msg::RefreshBaselines
            | Msg::MetricsRequest
            | Msg::QuarantineDrain
            | Msg::Shutdown => {}
        }
    }

    /// Block on the event queue until `pred(self)` or the deadline,
    /// replaying unacked frames at `resend_interval` so a dropped
    /// request cannot stall the wait.
    fn await_until(&mut self, deadline: Instant, pred: impl Fn(&RouterClient) -> bool) -> bool {
        let mut next_resend = Instant::now() + self.config.resend_interval;
        loop {
            self.pump();
            if pred(self) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if now >= next_resend {
                next_resend = now + self.config.resend_interval;
                for idx in 0..self.peers.len() {
                    if self.peers[idx].alive && self.peers[idx].send.unacked_len() > 0 {
                        self.replay_unacked(idx);
                    }
                }
            }
            let wait = deadline.min(next_resend).saturating_duration_since(now);
            match self
                .events_rx
                .recv_timeout(wait.max(Duration::from_millis(1)))
            {
                Ok(event) => self.handle_event(event),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return pred(self),
            }
        }
    }

    // ---- Public API --------------------------------------------------

    /// Route one span batch. Whole traces go to
    /// `shard_of(trace_id, num_shards)`; spans bound for dead peers
    /// are counted unroutable and their traces get one synthetic
    /// degraded verdict each.
    pub fn submit_batch(&mut self, spans: Vec<Span>, now_us: u64) -> sleuth_serve::SubmitReport {
        self.pump();
        let num_shards = self.peers.len();
        let mut report = sleuth_serve::SubmitReport::default();
        let mut routed: Vec<Vec<Span>> = (0..num_shards).map(|_| Vec::new()).collect();
        for span in spans {
            routed[shard_of(span.trace_id, num_shards)].push(span);
        }
        for (idx, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let count = batch.len();
            let trace_ids: Vec<u64> = batch.iter().map(|s| s.trace_id).collect();
            if self.send_msg(
                idx,
                Msg::SpanBatch {
                    now_us,
                    spans: batch,
                },
            ) {
                self.metrics.spans_routed.add(count as u64);
                report.enqueued += count;
            } else {
                self.mark_unroutable(idx, &trace_ids, &mut report);
            }
        }
        report
    }

    fn mark_unroutable(
        &mut self,
        idx: usize,
        trace_ids: &[u64],
        report: &mut sleuth_serve::SubmitReport,
    ) {
        report.rejected += trace_ids.len();
        self.metrics.spans_unroutable.add(trace_ids.len() as u64);
        for &trace_id in trace_ids {
            if self.peers[idx].degraded_traces.insert(trace_id) {
                self.metrics.degraded_unroutable.inc();
                self.verdicts.push(Verdict {
                    trace_id,
                    services: Vec::new(),
                    cluster: None,
                    rca_latency_us: 0,
                    model_version: ModelVersion(0),
                    degraded: true,
                });
            }
        }
    }

    /// Advance every live shard's logical clock.
    pub fn tick(&mut self, now_us: u64) {
        self.pump();
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::Tick { now_us });
        }
    }

    /// Verdicts received since the last call (including synthetic
    /// degraded verdicts for unroutable traces).
    pub fn poll_verdicts(&mut self) -> Vec<Verdict> {
        self.pump();
        std::mem::take(&mut self.verdicts)
    }

    /// Quarantined entries received since the last call, with global
    /// shard attribution.
    pub fn poll_quarantined(&mut self) -> Vec<QuarantinedTrace> {
        self.pump();
        std::mem::take(&mut self.quarantined)
    }

    /// Ask every live shard to republish its pipeline; block until
    /// each replies with its new version (or the deadline passes).
    /// Returns per-shard versions (`None` = dead or no reply).
    pub fn publish_all(&mut self) -> Vec<Option<u64>> {
        self.pump();
        for peer in &mut self.peers {
            peer.publish_version = None;
        }
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::Publish);
        }
        let deadline = Instant::now() + self.config.response_timeout;
        self.await_until(deadline, |c| {
            c.peers
                .iter()
                .all(|p| !p.alive || p.publish_version.is_some())
        });
        self.peers.iter().map(|p| p.publish_version).collect()
    }

    /// Fetch a fresh metrics snapshot from every live shard
    /// (blocking). Returns per-shard snapshots (`None` = dead or no
    /// reply).
    pub fn fetch_metrics(&mut self) -> Vec<Option<MetricsSnapshot>> {
        self.pump();
        for peer in &mut self.peers {
            peer.last_metrics = None;
        }
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::MetricsRequest);
        }
        let deadline = Instant::now() + self.config.response_timeout;
        self.await_until(deadline, |c| {
            c.peers.iter().all(|p| !p.alive || p.last_metrics.is_some())
        });
        self.peers
            .iter()
            .map(|p| p.last_metrics.as_deref().cloned())
            .collect()
    }

    /// Ask every live shard to flush its quarantine now; entries
    /// arrive via [`RouterClient::poll_quarantined`].
    pub fn drain_quarantine(&mut self) {
        self.pump();
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::QuarantineDrain);
        }
    }

    /// Drive every live shard through shutdown, drain all residual
    /// verdicts and quarantine entries, and merge final metrics.
    pub fn shutdown(mut self) -> RouterReport {
        self.pump();
        for idx in 0..self.peers.len() {
            self.send_msg(idx, Msg::Shutdown);
        }
        let deadline = Instant::now() + self.config.response_timeout;
        self.await_until(deadline, |c| {
            c.peers.iter().all(|p| !p.alive || p.final_state.is_some())
        });
        // Whoever still has no final state is effectively dead.
        for idx in 0..self.peers.len() {
            if self.peers[idx].final_state.is_none() {
                self.kill_peer(idx);
            }
        }
        // Give the last acks a moment to flush, then close.
        self.pump();
        for peer in &mut self.peers {
            if let Some(stream) = peer.stream.take() {
                stream.shutdown_both();
            }
            peer.writer = None;
            peer.alive = false;
        }
        for peer in &mut self.peers {
            if let Some(handle) = peer.reader_handle.take() {
                let _ = handle.join();
            }
        }
        let mut merged = MetricsSnapshot::default();
        let mut shard_finals = Vec::with_capacity(self.peers.len());
        for peer in &mut self.peers {
            let final_state = peer.final_state.take().map(|b| *b);
            if let Some(f) = &final_state {
                merged.merge(&f.metrics);
            }
            shard_finals.push(final_state);
        }
        let dead_peers = shard_finals
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_none())
            .map(|(i, _)| i)
            .collect();
        RouterReport {
            verdicts: std::mem::take(&mut self.verdicts),
            quarantined: std::mem::take(&mut self.quarantined),
            shard_finals,
            metrics: merged,
            wire: self.metrics.snapshot(),
            dead_peers,
        }
    }
}
