//! The `sleuth-wire` frame grammar.
//!
//! Every frame on the wire is a 20-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "SLWR"
//!      4     2  version      u16 LE, protocol version of the sender
//!      6     1  frame_type   u8 tag (see the `tag::` constants)
//!      7     1  flags        u8, must be zero in version 1
//!      8     4  payload_len  u32 LE, bytes of payload that follow
//!     12     8  checksum     u64 LE, FNV-1a-64 over frame_type ++ payload
//! ```
//!
//! Control frames (`Hello`, `HelloAck`, `Ack`, `Nack`, `Error`,
//! `Heartbeat`, `HeartbeatAck`, `Goodbye`) are
//! unsequenced; application messages travel inside `Data { seq, msg }`
//! frames whose sequence numbers drive the reliable-delivery layer in
//! [`crate::session`]. Decoding is total: any byte string either
//! parses into exactly one [`Frame`] or yields a structured
//! [`WireError`] — never a panic — and the work done before rejecting
//! a frame is bounded by the frame's own declared (and capped) length.

use sleuth_serve::metrics::HISTOGRAM_BUCKETS;
use sleuth_serve::{
    HistogramSnapshot, MetricsSnapshot, ModelVersion, QuarantineReason, QuarantinedTrace, Verdict,
};
use sleuth_trace::{IStr, Span, SpanKind, StatusCode};

use crate::bytes::{ByteReader, ByteWriter};
use crate::error::WireError;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SLWR";
/// Highest protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;
/// Lowest protocol version this build accepts.
pub const MIN_PROTOCOL_VERSION: u16 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Default bound on a single frame's payload.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Frame-type tags. Control frames sit below 16, application
/// messages at 16 and above so new control frames never collide.
pub(crate) mod tag {
    pub const HELLO: u8 = 1;
    pub const HELLO_ACK: u8 = 2;
    pub const ACK: u8 = 3;
    pub const NACK: u8 = 4;
    pub const ERROR: u8 = 5;
    pub const HEARTBEAT: u8 = 6;
    pub const HEARTBEAT_ACK: u8 = 7;
    pub const GOODBYE: u8 = 8;
    pub const SPAN_BATCH: u8 = 16;
    pub const TICK: u8 = 17;
    pub const PUBLISH: u8 = 18;
    pub const REFRESH_BASELINES: u8 = 19;
    pub const METRICS_REQUEST: u8 = 20;
    pub const QUARANTINE_DRAIN: u8 = 21;
    pub const SHUTDOWN: u8 = 22;
    pub const VERDICT: u8 = 23;
    pub const QUARANTINED: u8 = 24;
    pub const METRICS_REPLY: u8 = 25;
    pub const PUBLISH_REPLY: u8 = 26;
    pub const SHUTDOWN_REPLY: u8 = 27;
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free, and adequate
/// for detecting the random corruption the chaos layer injects (it is
/// an integrity check, not an authenticity one).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_fold(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a64_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The per-frame checksum: FNV-1a-64 over the frame-type byte followed
/// by the payload. Including the type byte means a bit-flip in the
/// (otherwise unprotected) `frame_type` header field cannot alias two
/// frame types that happen to share a payload encoding.
pub fn frame_checksum(frame_type: u8, payload: &[u8]) -> u64 {
    fnv1a64_fold(fnv1a64(&[frame_type]), payload)
}

/// A quarantine entry as it travels the wire. The assembled trace (an
/// `Arc<Trace>` in-process) is deliberately *not* serialized — the
/// router needs attribution and accounting, not the poison payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireQuarantined {
    /// Trace id, when known.
    pub trace_id: Option<u64>,
    /// Spans involved, for conservation accounting.
    pub span_count: u64,
    /// Why the shard gave up.
    pub reason: QuarantineReason,
    /// Originating shard (global index once stamped by the server).
    pub origin_shard: Option<u64>,
}

impl WireQuarantined {
    /// Project a runtime quarantine entry onto the wire, dropping the
    /// trace payload and stamping `origin_shard` with `global_shard`.
    pub fn from_entry(entry: &QuarantinedTrace, global_shard: usize) -> Self {
        WireQuarantined {
            trace_id: entry.trace_id,
            span_count: entry.span_count as u64,
            reason: entry.reason.clone(),
            origin_shard: Some(global_shard as u64),
        }
    }

    /// Rehydrate into the runtime type (without the trace payload).
    pub fn into_entry(self) -> QuarantinedTrace {
        QuarantinedTrace {
            trace_id: self.trace_id,
            span_count: self.span_count as usize,
            reason: self.reason,
            origin_shard: self.origin_shard.map(|s| s as usize),
            trace: None,
        }
    }
}

/// What a shard server hands back in its `ShutdownReply`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardFinal {
    /// The shard process's final metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Traces in the shard's store at shutdown.
    pub trace_count: u64,
    /// Spans in the shard's store at shutdown.
    pub span_count: u64,
}

/// An application message carried inside a sequenced `Data` frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Router → shard: spans observed at logical `now_us`.
    SpanBatch {
        /// Logical observation time, microseconds.
        now_us: u64,
        /// The spans (already routed to this shard).
        spans: Vec<Span>,
    },
    /// Router → shard: advance the logical clock.
    Tick {
        /// New logical time, microseconds.
        now_us: u64,
    },
    /// Router → shard: republish the pipeline (hot-swap drill).
    Publish,
    /// Router → shard: fold pending traces into refreshed baselines.
    RefreshBaselines,
    /// Router → shard: reply with a metrics snapshot.
    MetricsRequest,
    /// Router → shard: flush quarantined entries now.
    QuarantineDrain,
    /// Router → shard: drain, reply `ShutdownReply`, and exit.
    Shutdown,
    /// Shard → router: one root-cause verdict.
    Verdict(Verdict),
    /// Shard → router: one quarantined entry.
    Quarantined(WireQuarantined),
    /// Shard → router: metrics snapshot (boxed: it is large).
    MetricsReply(Box<MetricsSnapshot>),
    /// Shard → router: version now being served after a publish.
    PublishReply {
        /// The new model version.
        version: u64,
    },
    /// Shard → router: final state; the connection ends after this.
    ShutdownReply(Box<ShardFinal>),
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::SpanBatch { .. } => tag::SPAN_BATCH,
            Msg::Tick { .. } => tag::TICK,
            Msg::Publish => tag::PUBLISH,
            Msg::RefreshBaselines => tag::REFRESH_BASELINES,
            Msg::MetricsRequest => tag::METRICS_REQUEST,
            Msg::QuarantineDrain => tag::QUARANTINE_DRAIN,
            Msg::Shutdown => tag::SHUTDOWN,
            Msg::Verdict(_) => tag::VERDICT,
            Msg::Quarantined(_) => tag::QUARANTINED,
            Msg::MetricsReply(_) => tag::METRICS_REPLY,
            Msg::PublishReply { .. } => tag::PUBLISH_REPLY,
            Msg::ShutdownReply(_) => tag::SHUTDOWN_REPLY,
        }
    }
}

/// One wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection opener. The receiver picks `min(max_version,
    /// PROTOCOL_VERSION)` if the ranges overlap, else rejects.
    Hello {
        /// Lowest version the sender speaks.
        min_version: u16,
        /// Highest version the sender speaks.
        max_version: u16,
        /// Random id naming the sender's reliable-delivery session.
        session_id: u64,
        /// Whether the sender is reconnecting and wants its session
        /// (sequence state) back.
        resume: bool,
    },
    /// Handshake reply.
    HelloAck {
        /// Negotiated protocol version.
        version: u16,
        /// Whether the requested session was found and resumed.
        resumed: bool,
    },
    /// Cumulative acknowledgement: every `Data` frame with
    /// `seq <= upto` is delivered; the sender may forget them.
    Ack {
        /// Highest contiguously delivered sequence number.
        upto: u64,
    },
    /// Gap report: the receiver is missing `expected`; resend from it.
    Nack {
        /// First sequence number the receiver has not seen.
        expected: u64,
    },
    /// Terminal protocol error report (sent before closing).
    Error {
        /// Stable reason label (a [`WireError::label`] value).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Liveness probe. The receiver must reply [`Frame::HeartbeatAck`]
    /// with the same nonce immediately — even while draining — so the
    /// sender can bound failure-detection time. Heartbeats are
    /// unsequenced and exempt from chaos fates, like every control
    /// frame.
    Heartbeat {
        /// Echo token correlating the probe with its ack.
        nonce: u64,
    },
    /// Reply to a [`Frame::Heartbeat`], echoing its nonce.
    HeartbeatAck {
        /// The nonce from the probe being answered.
        nonce: u64,
    },
    /// Clean end-of-connection notice: the sender is closing this
    /// socket on purpose (e.g. a shard server superseding an old
    /// session with a newly accepted connection). The receiver should
    /// not treat the close as a peer failure.
    Goodbye {
        /// Stable, human-readable reason (e.g. `"superseded"`).
        reason: String,
    },
    /// A sequenced application message.
    Data {
        /// Sequence number, starting at 1 per session.
        seq: u64,
        /// The message.
        msg: Msg,
    },
}

impl Frame {
    /// The frame-type tag written into the header.
    pub(crate) fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello { .. } => tag::HELLO,
            Frame::HelloAck { .. } => tag::HELLO_ACK,
            Frame::Ack { .. } => tag::ACK,
            Frame::Nack { .. } => tag::NACK,
            Frame::Error { .. } => tag::ERROR,
            Frame::Heartbeat { .. } => tag::HEARTBEAT,
            Frame::HeartbeatAck { .. } => tag::HEARTBEAT_ACK,
            Frame::Goodbye { .. } => tag::GOODBYE,
            Frame::Data { msg, .. } => msg.tag(),
        }
    }
}

/// Parsed (and validated) header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sender's protocol version.
    pub version: u16,
    /// Frame-type tag.
    pub frame_type: u8,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Declared FNV-1a-64 payload checksum.
    pub checksum: u64,
}

/// Parse and validate a 20-byte header. `max_frame_len` bounds the
/// declared payload length, so the caller learns a frame is oversized
/// before allocating anything for it.
pub fn parse_header(
    bytes: &[u8; HEADER_LEN],
    max_frame_len: u32,
) -> Result<FrameHeader, WireError> {
    let magic: [u8; 4] = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion {
            got: version,
            min: MIN_PROTOCOL_VERSION,
            max: PROTOCOL_VERSION,
        });
    }
    let frame_type = bytes[6];
    let flags = bytes[7];
    if flags != 0 {
        return Err(WireError::InvalidPayload("nonzero flags in version 1"));
    }
    let payload_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if payload_len > max_frame_len {
        return Err(WireError::Oversized {
            declared: payload_len,
            max: max_frame_len,
        });
    }
    let checksum = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    Ok(FrameHeader {
        version,
        frame_type,
        payload_len,
        checksum,
    })
}

/// Encode `frame` into header + payload bytes, stamping `version`.
pub fn encode_frame(frame: &Frame, version: u16) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(frame.frame_type());
    out.push(0); // flags
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(frame.frame_type(), &payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode a frame from a validated header and its payload bytes,
/// verifying the checksum first.
pub fn decode_frame(header: &FrameHeader, payload: &[u8]) -> Result<Frame, WireError> {
    let actual = frame_checksum(header.frame_type, payload);
    if actual != header.checksum {
        return Err(WireError::ChecksumMismatch {
            expected: header.checksum,
            actual,
        });
    }
    let mut r = ByteReader::new(payload);
    let frame = decode_body(header.frame_type, &mut r)?;
    r.finish()?;
    Ok(frame)
}

/// Decode a complete frame (header + payload) from one byte slice —
/// the offline entry point used by property tests. Never panics.
pub fn decode_frame_bytes(bytes: &[u8], max_frame_len: u32) -> Result<Frame, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let mut head = [0u8; HEADER_LEN];
    head.copy_from_slice(&bytes[..HEADER_LEN]);
    let header = parse_header(&head, max_frame_len)?;
    let rest = &bytes[HEADER_LEN..];
    if rest.len() < header.payload_len as usize {
        return Err(WireError::Truncated {
            needed: header.payload_len as usize,
            available: rest.len(),
        });
    }
    if rest.len() > header.payload_len as usize {
        return Err(WireError::TrailingBytes {
            unread: rest.len() - header.payload_len as usize,
        });
    }
    decode_frame(&header, rest)
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match frame {
        Frame::Hello {
            min_version,
            max_version,
            session_id,
            resume,
        } => {
            w.put_u16(*min_version);
            w.put_u16(*max_version);
            w.put_u64(*session_id);
            w.put_bool(*resume);
        }
        Frame::HelloAck { version, resumed } => {
            w.put_u16(*version);
            w.put_bool(*resumed);
        }
        Frame::Ack { upto } => w.put_u64(*upto),
        Frame::Nack { expected } => w.put_u64(*expected),
        Frame::Error { code, detail } => {
            w.put_str(code);
            w.put_str(detail);
        }
        Frame::Heartbeat { nonce } => w.put_u64(*nonce),
        Frame::HeartbeatAck { nonce } => w.put_u64(*nonce),
        Frame::Goodbye { reason } => w.put_str(reason),
        Frame::Data { seq, msg } => {
            w.put_u64(*seq);
            encode_msg(&mut w, msg);
        }
    }
    w.into_vec()
}

fn decode_body(frame_type: u8, r: &mut ByteReader<'_>) -> Result<Frame, WireError> {
    Ok(match frame_type {
        tag::HELLO => Frame::Hello {
            min_version: r.get_u16()?,
            max_version: r.get_u16()?,
            session_id: r.get_u64()?,
            resume: r.get_bool()?,
        },
        tag::HELLO_ACK => Frame::HelloAck {
            version: r.get_u16()?,
            resumed: r.get_bool()?,
        },
        tag::ACK => Frame::Ack { upto: r.get_u64()? },
        tag::NACK => Frame::Nack {
            expected: r.get_u64()?,
        },
        tag::ERROR => Frame::Error {
            code: r.get_str()?,
            detail: r.get_str()?,
        },
        tag::HEARTBEAT => Frame::Heartbeat {
            nonce: r.get_u64()?,
        },
        tag::HEARTBEAT_ACK => Frame::HeartbeatAck {
            nonce: r.get_u64()?,
        },
        tag::GOODBYE => Frame::Goodbye {
            reason: r.get_str()?,
        },
        t if (tag::SPAN_BATCH..=tag::SHUTDOWN_REPLY).contains(&t) => {
            let seq = r.get_u64()?;
            Frame::Data {
                seq,
                msg: decode_msg(t, r)?,
            }
        }
        other => return Err(WireError::UnknownFrameType(other)),
    })
}

fn encode_msg(w: &mut ByteWriter, msg: &Msg) {
    match msg {
        Msg::SpanBatch { now_us, spans } => {
            w.put_u64(*now_us);
            w.put_count(spans.len());
            for span in spans {
                encode_span(w, span);
            }
        }
        Msg::Tick { now_us } => w.put_u64(*now_us),
        Msg::Publish
        | Msg::RefreshBaselines
        | Msg::MetricsRequest
        | Msg::QuarantineDrain
        | Msg::Shutdown => {}
        Msg::Verdict(v) => encode_verdict(w, v),
        Msg::Quarantined(q) => encode_quarantined(w, q),
        Msg::MetricsReply(m) => encode_metrics(w, m),
        Msg::PublishReply { version } => w.put_u64(*version),
        Msg::ShutdownReply(f) => {
            encode_metrics(w, &f.metrics);
            w.put_u64(f.trace_count);
            w.put_u64(f.span_count);
        }
    }
}

fn decode_msg(frame_type: u8, r: &mut ByteReader<'_>) -> Result<Msg, WireError> {
    Ok(match frame_type {
        tag::SPAN_BATCH => {
            let now_us = r.get_u64()?;
            let (n, hint) = r.get_count()?;
            let mut spans = Vec::with_capacity(hint);
            for _ in 0..n {
                spans.push(decode_span(r)?);
            }
            Msg::SpanBatch { now_us, spans }
        }
        tag::TICK => Msg::Tick {
            now_us: r.get_u64()?,
        },
        tag::PUBLISH => Msg::Publish,
        tag::REFRESH_BASELINES => Msg::RefreshBaselines,
        tag::METRICS_REQUEST => Msg::MetricsRequest,
        tag::QUARANTINE_DRAIN => Msg::QuarantineDrain,
        tag::SHUTDOWN => Msg::Shutdown,
        tag::VERDICT => Msg::Verdict(decode_verdict(r)?),
        tag::QUARANTINED => Msg::Quarantined(decode_quarantined(r)?),
        tag::METRICS_REPLY => Msg::MetricsReply(Box::new(decode_metrics(r)?)),
        tag::PUBLISH_REPLY => Msg::PublishReply {
            version: r.get_u64()?,
        },
        tag::SHUTDOWN_REPLY => {
            let metrics = decode_metrics(r)?;
            Msg::ShutdownReply(Box::new(ShardFinal {
                metrics,
                trace_count: r.get_u64()?,
                span_count: r.get_u64()?,
            }))
        }
        other => return Err(WireError::UnknownFrameType(other)),
    })
}

fn encode_span(w: &mut ByteWriter, span: &Span) {
    w.put_u64(span.trace_id);
    w.put_u64(span.span_id);
    w.put_opt_u64(span.parent_span_id);
    w.put_str(&span.service);
    w.put_str(&span.name);
    w.put_u8(span.kind.index() as u8);
    w.put_u64(span.start_us);
    w.put_u64(span.end_us);
    w.put_u8(match span.status {
        StatusCode::Unset => 0,
        StatusCode::Ok => 1,
        StatusCode::Error => 2,
    });
    w.put_str(&span.pod);
    w.put_str(&span.node);
}

fn decode_span(r: &mut ByteReader<'_>) -> Result<Span, WireError> {
    let trace_id = r.get_u64()?;
    let span_id = r.get_u64()?;
    let parent_span_id = r.get_opt_u64()?;
    let service = r.get_str()?;
    let name = r.get_str()?;
    let kind = match r.get_u8()? {
        i if (i as usize) < SpanKind::ALL.len() => SpanKind::ALL[i as usize],
        _ => return Err(WireError::InvalidPayload("span kind tag out of range")),
    };
    let start_us = r.get_u64()?;
    let end_us = r.get_u64()?;
    let status = match r.get_u8()? {
        0 => StatusCode::Unset,
        1 => StatusCode::Ok,
        2 => StatusCode::Error,
        _ => return Err(WireError::InvalidPayload("status tag out of range")),
    };
    let pod = r.get_str()?;
    let node = r.get_str()?;
    // Re-intern on the receiving side: symbols are process-local dense
    // ids and never travel on the wire. Interning also pools the
    // identifier text, so a decoded span holds no owned strings.
    Ok(Span {
        service: IStr::intern(&service),
        name: IStr::intern(&name),
        trace_id,
        span_id,
        parent_span_id,
        kind,
        start_us,
        end_us,
        status,
        pod: IStr::intern(&pod),
        node: IStr::intern(&node),
    })
}

fn encode_verdict(w: &mut ByteWriter, v: &Verdict) {
    w.put_u64(v.trace_id);
    w.put_count(v.services.len());
    for s in &v.services {
        w.put_str(s);
    }
    match v.cluster {
        Some(c) => {
            w.put_u8(1);
            w.put_i64(c as i64);
        }
        None => w.put_u8(0),
    }
    w.put_u64(v.rca_latency_us);
    w.put_u64(v.model_version.0);
    w.put_bool(v.degraded);
}

fn decode_verdict(r: &mut ByteReader<'_>) -> Result<Verdict, WireError> {
    let trace_id = r.get_u64()?;
    let (n, hint) = r.get_count()?;
    let mut services = Vec::with_capacity(hint);
    for _ in 0..n {
        services.push(r.get_str()?);
    }
    let cluster = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_i64()? as isize),
        _ => return Err(WireError::InvalidPayload("cluster option tag not 0/1")),
    };
    Ok(Verdict {
        trace_id,
        services,
        cluster,
        rca_latency_us: r.get_u64()?,
        model_version: ModelVersion(r.get_u64()?),
        degraded: r.get_bool()?,
    })
}

fn encode_quarantined(w: &mut ByteWriter, q: &WireQuarantined) {
    w.put_opt_u64(q.trace_id);
    w.put_u64(q.span_count);
    match &q.reason {
        QuarantineReason::Assembly(msg) => {
            w.put_u8(0);
            w.put_str(msg);
        }
        QuarantineReason::RcaPanic { worker, attempts } => {
            w.put_u8(1);
            w.put_u64(*worker as u64);
            w.put_u32(*attempts);
        }
        QuarantineReason::ShardPanic { shard } => {
            w.put_u8(2);
            w.put_u64(*shard as u64);
        }
    }
    w.put_opt_u64(q.origin_shard);
}

fn decode_quarantined(r: &mut ByteReader<'_>) -> Result<WireQuarantined, WireError> {
    let trace_id = r.get_opt_u64()?;
    let span_count = r.get_u64()?;
    let reason = match r.get_u8()? {
        0 => QuarantineReason::Assembly(r.get_str()?),
        1 => QuarantineReason::RcaPanic {
            worker: r.get_u64()? as usize,
            attempts: r.get_u32()?,
        },
        2 => QuarantineReason::ShardPanic {
            shard: r.get_u64()? as usize,
        },
        _ => return Err(WireError::InvalidPayload("quarantine reason tag unknown")),
    };
    Ok(WireQuarantined {
        trace_id,
        span_count,
        reason,
        origin_shard: r.get_opt_u64()?,
    })
}

fn encode_histogram(w: &mut ByteWriter, h: &HistogramSnapshot) {
    for b in &h.buckets {
        w.put_u64(*b);
    }
    w.put_u64(h.count);
    w.put_u64(h.sum);
}

fn decode_histogram(r: &mut ByteReader<'_>) -> Result<HistogramSnapshot, WireError> {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    for b in &mut buckets {
        *b = r.get_u64()?;
    }
    Ok(HistogramSnapshot {
        buckets,
        count: r.get_u64()?,
        sum: r.get_u64()?,
    })
}

fn encode_metrics(w: &mut ByteWriter, m: &MetricsSnapshot) {
    for v in [
        m.spans_submitted,
        m.spans_enqueued,
        m.spans_rejected,
        m.spans_shed,
        m.spans_evicted,
        m.spans_deduped,
        m.spans_stored,
        m.traces_completed,
        m.traces_malformed,
        m.traces_anomalous,
        m.verdicts_emitted,
        m.model_swaps,
        m.baseline_refreshes,
        m.refresh_traces_folded,
        m.refresh_traces_shed,
        m.lock_poisoned,
        m.poison_traces,
        m.quarantine_dropped,
        m.spans_quarantined,
        m.verdicts_degraded,
        m.breaker_trips,
    ] {
        w.put_u64(v);
    }
    encode_histogram(w, &m.rca_latency_us);
    encode_histogram(w, &m.queue_depth);
    encode_histogram(w, &m.swap_drain_us);
    encode_histogram(w, &m.refresh_staleness_traces);
    w.put_count(m.verdicts_by_version.len());
    for (v, n) in &m.verdicts_by_version {
        w.put_u64(*v);
        w.put_u64(*n);
    }
    w.put_count(m.rca_worker_latency_us.len());
    for (worker, h) in &m.rca_worker_latency_us {
        w.put_u64(*worker as u64);
        encode_histogram(w, h);
    }
    w.put_count(m.worker_panics.len());
    for (stage, worker, n) in &m.worker_panics {
        w.put_str(stage);
        w.put_u64(*worker as u64);
        w.put_u64(*n);
    }
    w.put_count(m.worker_restarts.len());
    for (stage, worker, n) in &m.worker_restarts {
        w.put_str(stage);
        w.put_u64(*worker as u64);
        w.put_u64(*n);
    }
    for series in [
        &m.spans_rejected_by_reason,
        &m.degraded_by_reason,
        &m.quarantined_by_reason,
    ] {
        w.put_count(series.len());
        for (reason, n) in series.iter() {
            w.put_str(reason);
            w.put_u64(*n);
        }
    }
}

fn decode_metrics(r: &mut ByteReader<'_>) -> Result<MetricsSnapshot, WireError> {
    let mut m = MetricsSnapshot::default();
    for field in [
        &mut m.spans_submitted,
        &mut m.spans_enqueued,
        &mut m.spans_rejected,
        &mut m.spans_shed,
        &mut m.spans_evicted,
        &mut m.spans_deduped,
        &mut m.spans_stored,
        &mut m.traces_completed,
        &mut m.traces_malformed,
        &mut m.traces_anomalous,
        &mut m.verdicts_emitted,
        &mut m.model_swaps,
        &mut m.baseline_refreshes,
        &mut m.refresh_traces_folded,
        &mut m.refresh_traces_shed,
        &mut m.lock_poisoned,
        &mut m.poison_traces,
        &mut m.quarantine_dropped,
        &mut m.spans_quarantined,
        &mut m.verdicts_degraded,
        &mut m.breaker_trips,
    ] {
        *field = r.get_u64()?;
    }
    m.rca_latency_us = decode_histogram(r)?;
    m.queue_depth = decode_histogram(r)?;
    m.swap_drain_us = decode_histogram(r)?;
    m.refresh_staleness_traces = decode_histogram(r)?;
    let (n, hint) = r.get_count()?;
    m.verdicts_by_version = Vec::with_capacity(hint);
    for _ in 0..n {
        m.verdicts_by_version.push((r.get_u64()?, r.get_u64()?));
    }
    let (n, hint) = r.get_count()?;
    m.rca_worker_latency_us = Vec::with_capacity(hint);
    for _ in 0..n {
        let worker = r.get_u64()? as usize;
        m.rca_worker_latency_us.push((worker, decode_histogram(r)?));
    }
    let (n, hint) = r.get_count()?;
    m.worker_panics = Vec::with_capacity(hint);
    for _ in 0..n {
        m.worker_panics
            .push((r.get_str()?, r.get_u64()? as usize, r.get_u64()?));
    }
    let (n, hint) = r.get_count()?;
    m.worker_restarts = Vec::with_capacity(hint);
    for _ in 0..n {
        m.worker_restarts
            .push((r.get_str()?, r.get_u64()? as usize, r.get_u64()?));
    }
    for series in [
        &mut m.spans_rejected_by_reason,
        &mut m.degraded_by_reason,
        &mut m.quarantined_by_reason,
    ] {
        let (n, hint) = r.get_count()?;
        *series = Vec::with_capacity(hint);
        for _ in 0..n {
            series.push((r.get_str()?, r.get_u64()?));
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span(trace_id: u64, span_id: u64) -> Span {
        Span::builder(trace_id, span_id, "checkout", "charge")
            .parent(span_id.wrapping_sub(1))
            .kind(SpanKind::Client)
            .time(100, 250)
            .status(StatusCode::Error)
            .placement("pod-3", "node-b")
            .build()
    }

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame, PROTOCOL_VERSION);
        let decoded = decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn control_frames_round_trip() {
        roundtrip(Frame::Hello {
            min_version: 1,
            max_version: 3,
            session_id: 0xdead_beef,
            resume: true,
        });
        roundtrip(Frame::HelloAck {
            version: 1,
            resumed: false,
        });
        roundtrip(Frame::Ack { upto: u64::MAX });
        roundtrip(Frame::Nack { expected: 42 });
        roundtrip(Frame::Error {
            code: "oversized".to_string(),
            detail: "declared 1 GiB".to_string(),
        });
        roundtrip(Frame::Heartbeat { nonce: 0x1234 });
        roundtrip(Frame::HeartbeatAck { nonce: u64::MAX });
        roundtrip(Frame::Goodbye {
            reason: "superseded".to_string(),
        });
    }

    #[test]
    fn data_frames_round_trip() {
        roundtrip(Frame::Data {
            seq: 1,
            msg: Msg::SpanBatch {
                now_us: 123,
                spans: vec![sample_span(1, 2), sample_span(1, 3)],
            },
        });
        roundtrip(Frame::Data {
            seq: 2,
            msg: Msg::Tick { now_us: 456 },
        });
        for msg in [
            Msg::Publish,
            Msg::RefreshBaselines,
            Msg::MetricsRequest,
            Msg::QuarantineDrain,
            Msg::Shutdown,
        ] {
            roundtrip(Frame::Data { seq: 3, msg });
        }
        roundtrip(Frame::Data {
            seq: 4,
            msg: Msg::Verdict(Verdict {
                trace_id: 9,
                services: vec!["cart".to_string(), "db".to_string()],
                cluster: Some(-1),
                rca_latency_us: 777,
                model_version: ModelVersion(3),
                degraded: true,
            }),
        });
        roundtrip(Frame::Data {
            seq: 5,
            msg: Msg::Quarantined(WireQuarantined {
                trace_id: Some(11),
                span_count: 4,
                reason: QuarantineReason::RcaPanic {
                    worker: 2,
                    attempts: 3,
                },
                origin_shard: Some(1),
            }),
        });
        roundtrip(Frame::Data {
            seq: 6,
            msg: Msg::PublishReply { version: 2 },
        });
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let mut m = MetricsSnapshot {
            spans_submitted: 100,
            spans_stored: 90,
            spans_rejected: 10,
            verdicts_emitted: 5,
            ..MetricsSnapshot::default()
        };
        m.rca_latency_us.buckets[3] = 7;
        m.rca_latency_us.count = 7;
        m.rca_latency_us.sum = 63;
        m.verdicts_by_version = vec![(1, 3), (2, 2)];
        m.rca_worker_latency_us = vec![(0, m.rca_latency_us.clone())];
        m.worker_panics = vec![("rca".to_string(), 1, 2)];
        m.worker_restarts = vec![("shard".to_string(), 0, 1)];
        m.spans_rejected_by_reason = vec![("queue_full".to_string(), 10)];
        m.degraded_by_reason = vec![("deadline".to_string(), 1)];
        m.quarantined_by_reason = vec![("assembly".to_string(), 2)];
        roundtrip(Frame::Data {
            seq: 7,
            msg: Msg::MetricsReply(Box::new(m.clone())),
        });
        roundtrip(Frame::Data {
            seq: 8,
            msg: Msg::ShutdownReply(Box::new(ShardFinal {
                metrics: m,
                trace_count: 12,
                span_count: 90,
            })),
        });
    }

    #[test]
    fn corrupt_payload_is_checksum_mismatch() {
        let mut bytes = encode_frame(
            &Frame::Data {
                seq: 1,
                msg: Msg::Tick { now_us: 7 },
            },
            PROTOCOL_VERSION,
        );
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode_frame(&Frame::Ack { upto: 1 }, PROTOCOL_VERSION);
        bytes[0] = b'X';
        assert!(matches!(
            decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN),
            Err(WireError::BadMagic(_))
        ));
        let mut bytes = encode_frame(&Frame::Ack { upto: 1 }, PROTOCOL_VERSION);
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        assert!(matches!(
            decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN),
            Err(WireError::UnsupportedVersion { got: 0xffff, .. })
        ));
    }

    #[test]
    fn oversized_is_detected_from_header_alone() {
        let mut bytes = encode_frame(&Frame::Ack { upto: 1 }, PROTOCOL_VERSION);
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame_bytes(&bytes, 1024),
            Err(WireError::Oversized {
                declared: u32::MAX,
                max: 1024
            })
        );
    }

    #[test]
    fn truncated_prefixes_error_not_panic() {
        let bytes = encode_frame(
            &Frame::Data {
                seq: 1,
                msg: Msg::SpanBatch {
                    now_us: 5,
                    spans: vec![sample_span(1, 2)],
                },
            },
            PROTOCOL_VERSION,
        );
        for cut in 0..bytes.len() {
            let err = decode_frame_bytes(&bytes[..cut], DEFAULT_MAX_FRAME_LEN).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn unknown_frame_type_is_recoverable() {
        // A well-formed frame of a type this version doesn't know —
        // what a newer-version peer would send. The checksum is
        // correct (it covers the type byte), so this is recoverable
        // skip-and-continue, not corruption.
        let payload = 7u64.to_le_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        bytes.push(0xee);
        bytes.push(0);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&frame_checksum(0xee, &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let err = decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err, WireError::UnknownFrameType(0xee));
        assert!(!err.is_stream_fatal());
    }

    #[test]
    fn flipped_type_byte_is_checksum_mismatch() {
        // The type byte is inside the checksum: a bit-flip there can
        // never alias another frame type with the same payload bytes.
        let mut bytes = encode_frame(&Frame::Ack { upto: 1 }, PROTOCOL_VERSION);
        bytes[6] = tag::NACK;
        let err = decode_frame_bytes(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap_err();
        assert!(matches!(err, WireError::ChecksumMismatch { .. }), "{err:?}");
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
