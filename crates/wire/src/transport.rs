//! Blocking stream transports: TCP and (on Unix) Unix-domain sockets.
//!
//! Endpoints are spelled `tcp:HOST:PORT` or `unix:/path/to.sock`;
//! [`WireListener`] / [`WireStream`] erase the difference so the
//! server and router code is transport-agnostic. Everything is
//! std-only blocking I/O — reader threads use OS read timeouts
//! ([`WireStream::set_read_timeout`]) instead of an async runtime.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use crate::error::WireError;

/// A parsed listen/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// `tcp:HOST:PORT`.
    Tcp(String),
    /// `unix:/path/to.sock` (Unix-domain socket).
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse `tcp:HOST:PORT` or `unix:/path`. A bare `HOST:PORT`
    /// (containing `:` but no known scheme) is taken as TCP.
    pub fn parse(s: &str) -> Result<Endpoint, WireError> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err(WireError::InvalidPayload("empty tcp endpoint"));
            }
            return Ok(Endpoint::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("unix:") {
            if rest.is_empty() {
                return Err(WireError::InvalidPayload("empty unix endpoint"));
            }
            return Ok(Endpoint::Unix(PathBuf::from(rest)));
        }
        if s.contains(':') {
            return Ok(Endpoint::Tcp(s.to_string()));
        }
        Err(WireError::InvalidPayload(
            "endpoint must be tcp:HOST:PORT or unix:/path",
        ))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound listener on either transport.
#[derive(Debug)]
pub enum WireListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener (plus its socket path, for `Display`).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl WireListener {
    /// Bind `endpoint`. A stale Unix socket file left by a previous
    /// (crashed) process is removed before binding.
    pub fn bind(endpoint: &Endpoint) -> io::Result<WireListener> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(WireListener::Tcp(TcpListener::bind(addr.as_str())?)),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(WireListener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets unavailable on this platform",
            )),
        }
    }

    /// Accept one connection (blocking).
    pub fn accept(&self) -> io::Result<WireStream> {
        match self {
            WireListener::Tcp(l) => l.accept().map(|(s, _)| WireStream::Tcp(s)),
            #[cfg(unix)]
            WireListener::Unix(l, _) => l.accept().map(|(s, _)| WireStream::Unix(s)),
        }
    }

    /// Toggle non-blocking accepts. A polling acceptor thread uses
    /// this so it can notice a stop flag between `accept` attempts
    /// instead of parking in the kernel forever.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            WireListener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            WireListener::Unix(l, _) => l.set_nonblocking(nonblocking),
        }
    }

    /// The endpoint this listener is bound to (TCP reports the actual
    /// local address, useful after binding port 0).
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            WireListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            WireListener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }
}

/// A connected stream on either transport.
#[derive(Debug)]
pub enum WireStream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl WireStream {
    /// Connect to `endpoint` (blocking).
    pub fn connect(endpoint: &Endpoint) -> io::Result<WireStream> {
        match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(WireStream::Tcp),
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path).map(WireStream::Unix),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets unavailable on this platform",
            )),
        }
    }

    /// A second handle on the same connection (reader/writer split).
    pub fn try_clone(&self) -> io::Result<WireStream> {
        match self {
            WireStream::Tcp(s) => s.try_clone().map(WireStream::Tcp),
            #[cfg(unix)]
            WireStream::Unix(s) => s.try_clone().map(WireStream::Unix),
        }
    }

    /// Bound the time a blocking read may wait.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            WireStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Toggle non-blocking mode. A stream accepted from a
    /// non-blocking listener inherits that mode on some platforms, so
    /// the acceptor explicitly switches accepted streams back to
    /// blocking before handing them to the frame codec.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            WireStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Disable Nagle batching on TCP (no-op for Unix sockets); frame
    /// latency matters more than syscall count here.
    pub fn set_nodelay(&self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_nodelay(true),
            #[cfg(unix)]
            WireStream::Unix(_) => Ok(()),
        }
    }

    /// Shut down both directions, waking any blocked reader on the
    /// other handle. Errors are ignored: the peer may already be gone.
    pub fn shutdown_both(&self) {
        match self {
            WireStream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            WireStream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            WireStream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:9000").unwrap(),
            Endpoint::Tcp("127.0.0.1:9000".to_string())
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:9000").unwrap(),
            Endpoint::Tcp("127.0.0.1:9000".to_string())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert!(Endpoint::parse("nonsense").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("unix:").is_err());
    }

    #[test]
    fn endpoint_display_round_trips() {
        for s in ["tcp:127.0.0.1:9000", "unix:/tmp/x.sock"] {
            assert_eq!(Endpoint::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn tcp_loopback_connects_and_clones() {
        let listener = WireListener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(&buf).unwrap();
        });
        let mut client = WireStream::connect(&ep).unwrap();
        client.set_nodelay().unwrap();
        let mut echo_rx = client.try_clone().unwrap();
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        echo_rx.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        handle.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_loopback_rebinds_over_stale_socket() {
        let dir = std::env::temp_dir().join(format!("sleuth-wire-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sock");
        let ep = Endpoint::Unix(path.clone());
        let first = WireListener::bind(&ep).unwrap();
        drop(first); // leaves the socket file behind
        let listener = WireListener::bind(&ep).unwrap();
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 2];
            conn.read_exact(&mut buf).unwrap();
            buf
        });
        let mut client = WireStream::connect(&ep).unwrap();
        client.write_all(b"ok").unwrap();
        assert_eq!(&handle.join().unwrap(), b"ok");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
