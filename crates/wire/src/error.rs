//! Structured wire-protocol errors.
//!
//! Every way a peer can misbehave — wrong magic, an unsupported
//! protocol version, a frame larger than the negotiated bound, a
//! truncated stream, a checksum mismatch — maps to a distinct
//! [`WireError`] variant. Decoding untrusted bytes never panics; it
//! returns one of these. The key split is
//! [`WireError::is_stream_fatal`]: a checksum mismatch (or a frame
//! type from a newer protocol) leaves the stream *framing* intact, so
//! the receiver can skip the frame, count it, and keep reading; every
//! other error means the byte stream can no longer be trusted and the
//! connection must be torn down and re-established.

use std::fmt;
use std::io;

/// Everything that can go wrong on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// A read or write timed out (`WouldBlock`/`TimedOut`). The
    /// decoder's partial state is preserved; retry the call.
    Timeout,
    /// Underlying I/O failure (kind + display form).
    Io(io::ErrorKind, String),
    /// The first four bytes of a header were not [`crate::MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's protocol version is outside the range this build
    /// speaks.
    UnsupportedVersion {
        /// Version carried by the offending frame.
        got: u16,
        /// Lowest version this build accepts.
        min: u16,
        /// Highest version this build accepts.
        max: u16,
    },
    /// The header declared a payload larger than the configured bound.
    /// Detected *before* any payload allocation.
    Oversized {
        /// Declared payload length.
        declared: u32,
        /// Configured maximum.
        max: u32,
    },
    /// The stream ended (or the payload ran out) before a complete
    /// value was read.
    Truncated {
        /// Bytes still required.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum did not match the header. Framing is
    /// intact: the bad frame was fully consumed and the stream can
    /// continue.
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum computed over the received payload.
        actual: u64,
    },
    /// A frame type this build does not know. The payload was
    /// consumed, so the stream can continue (forward compatibility).
    UnknownFrameType(u8),
    /// A payload decoded cleanly but left unread bytes behind.
    TrailingBytes {
        /// Unconsumed byte count.
        unread: usize,
    },
    /// A payload field held an invalid value (bad UTF-8, unknown
    /// enum tag, …).
    InvalidPayload(&'static str),
    /// The first frame on a connection was not `Hello`.
    HandshakeRequired,
    /// The unacked-frame buffer hit its bound; the peer is not acking.
    ResendOverflow {
        /// Configured buffer capacity.
        cap: usize,
    },
    /// A peer was declared dead after exhausting reconnect attempts.
    PeerDead {
        /// Index of the dead peer.
        peer: usize,
    },
    /// The serving configuration failed validation.
    Config(String),
    /// A protocol-state violation (frame legal but unexpected here).
    Protocol(&'static str),
}

impl WireError {
    /// Whether this error poisons the byte stream. Non-fatal errors
    /// (`ChecksumMismatch`, `UnknownFrameType`) consumed exactly one
    /// whole frame, so the reader may continue; fatal ones require
    /// closing the connection and reconnecting.
    pub fn is_stream_fatal(&self) -> bool {
        !matches!(
            self,
            WireError::ChecksumMismatch { .. } | WireError::UnknownFrameType(_)
        )
    }

    /// Stable label for the `frames_rejected{reason=…}` metric series.
    pub fn label(&self) -> &'static str {
        match self {
            WireError::Closed => "closed",
            WireError::Timeout => "timeout",
            WireError::Io(..) => "io",
            WireError::BadMagic(_) => "bad_magic",
            WireError::UnsupportedVersion { .. } => "unsupported_version",
            WireError::Oversized { .. } => "oversized",
            WireError::Truncated { .. } => "truncated",
            WireError::ChecksumMismatch { .. } => "checksum_mismatch",
            WireError::UnknownFrameType(_) => "unknown_frame_type",
            WireError::TrailingBytes { .. } => "trailing_bytes",
            WireError::InvalidPayload(_) => "invalid_payload",
            WireError::HandshakeRequired => "handshake_required",
            WireError::ResendOverflow { .. } => "resend_overflow",
            WireError::PeerDead { .. } => "peer_dead",
            WireError::Config(_) => "config",
            WireError::Protocol(_) => "protocol",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Timeout => write!(f, "read timed out"),
            WireError::Io(kind, msg) => write!(f, "i/o error ({kind:?}): {msg}"),
            WireError::BadMagic(m) => write!(f, "bad magic bytes {m:02x?}"),
            WireError::UnsupportedVersion { got, min, max } => {
                write!(
                    f,
                    "unsupported protocol version {got} (speak {min}..={max})"
                )
            }
            WireError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} payload bytes, max is {max}")
            }
            WireError::Truncated { needed, available } => {
                write!(f, "truncated: needed {needed} bytes, had {available}")
            }
            WireError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#x}, payload {actual:#x}"
                )
            }
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::TrailingBytes { unread } => {
                write!(f, "payload decoded with {unread} trailing bytes")
            }
            WireError::InvalidPayload(what) => write!(f, "invalid payload: {what}"),
            WireError::HandshakeRequired => write!(f, "first frame was not Hello"),
            WireError::ResendOverflow { cap } => {
                write!(f, "unacked buffer overflow (cap {cap}); peer not acking")
            }
            WireError::PeerDead { peer } => write!(f, "peer {peer} is dead"),
            WireError::Config(msg) => write!(f, "invalid serve config: {msg}"),
            WireError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(err: io::Error) -> Self {
        match err.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => WireError::Timeout,
            kind => WireError::Io(kind, err.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_and_unknown_type_are_recoverable() {
        assert!(!WireError::ChecksumMismatch {
            expected: 1,
            actual: 2
        }
        .is_stream_fatal());
        assert!(!WireError::UnknownFrameType(99).is_stream_fatal());
        assert!(WireError::BadMagic([0; 4]).is_stream_fatal());
        assert!(WireError::Truncated {
            needed: 4,
            available: 0
        }
        .is_stream_fatal());
        assert!(WireError::Oversized {
            declared: 1,
            max: 0
        }
        .is_stream_fatal());
    }

    #[test]
    fn io_timeouts_map_to_timeout() {
        let e: WireError = io::Error::from(io::ErrorKind::WouldBlock).into();
        assert_eq!(e, WireError::Timeout);
        let e: WireError = io::Error::from(io::ErrorKind::TimedOut).into();
        assert_eq!(e, WireError::Timeout);
        let e: WireError = io::Error::from(io::ErrorKind::BrokenPipe).into();
        assert!(matches!(e, WireError::Io(io::ErrorKind::BrokenPipe, _)));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            WireError::ChecksumMismatch {
                expected: 0,
                actual: 1
            }
            .label(),
            "checksum_mismatch"
        );
        assert_eq!(WireError::BadMagic([0; 4]).label(), "bad_magic");
        assert_eq!(WireError::UnknownFrameType(7).label(), "unknown_frame_type");
    }
}
