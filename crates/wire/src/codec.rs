//! Stream codec: an incremental [`FrameReader`] and a fault-injectable
//! [`FrameWriter`].
//!
//! The reader is a resumable state machine over a blocking `Read`: a
//! read timeout returns [`WireError::Timeout`] with all partial bytes
//! retained, so OS-level read timeouts never desynchronize the frame
//! stream. Decode work is bounded by each frame's declared — and
//! capped — payload length: an oversized header is rejected before
//! any payload is read, and every allocation inside the payload is
//! clamped by the bytes actually present.
//!
//! The writer is where the network chaos seam lives: every outgoing
//! `Data` frame is assigned a [`FrameFate`] by the installed
//! [`WireFaultInjector`] (deliver / drop / duplicate / hold-for-
//! reorder / corrupt / truncate / kill). Control frames (handshake,
//! acks) are exempt so a test plan cannot deadlock the protocol
//! before it starts — the reliability layer in [`crate::session`]
//! must heal everything the injector does to data frames.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use crate::error::WireError;
use crate::frame::{decode_frame, encode_frame, parse_header, Frame, FrameHeader, HEADER_LEN};
use crate::metrics::WireMetrics;

/// What the chaos layer decided to do with one outgoing data frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Write the frame normally.
    Deliver,
    /// Silently discard the frame (the peer sees a sequence gap).
    Drop,
    /// Write the frame twice (the peer must dedup).
    Duplicate,
    /// Hold the frame and emit it *after* the next written frame
    /// (a one-slot reorder).
    HoldUntilNext,
    /// Flip a payload byte before writing (the peer's checksum must
    /// catch it).
    Corrupt,
    /// Write only a prefix of the frame, then kill the connection
    /// (the peer sees a mid-frame EOF).
    Truncate,
    /// Write nothing and kill the connection.
    Kill,
}

/// The network-boundary fault seam. `sleuth-chaos` provides the
/// seeded, budgeted implementation; the default is fault-free.
pub trait WireFaultInjector: Send + Sync {
    /// Fate of the `counter`-th data frame written to `peer` on the
    /// current connection.
    fn frame_fate(&self, peer: usize, counter: u64) -> FrameFate {
        let _ = (peer, counter);
        FrameFate::Deliver
    }

    /// Extra delay to impose before connect attempt `attempt` to
    /// `peer` (a connect stall).
    fn connect_delay(&self, peer: usize, attempt: u32) -> Option<Duration> {
        let _ = (peer, attempt);
        None
    }
}

/// The no-op injector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoWireFaults;

impl WireFaultInjector for NoWireFaults {}

enum ReadStage {
    Header,
    Payload(FrameHeader),
}

/// Incremental frame decoder over a blocking reader.
pub struct FrameReader<R: Read> {
    inner: R,
    max_frame_len: u32,
    buf: Vec<u8>,
    stage: ReadStage,
    metrics: Arc<WireMetrics>,
}

impl<R: Read> FrameReader<R> {
    /// Decoder bounding frames at `max_frame_len` payload bytes.
    pub fn new(inner: R, max_frame_len: u32, metrics: Arc<WireMetrics>) -> Self {
        FrameReader {
            inner,
            max_frame_len,
            buf: Vec::new(),
            stage: ReadStage::Header,
            metrics,
        }
    }

    /// Pull bytes until at least `need` are buffered. A timeout
    /// surfaces as [`WireError::Timeout`] with the partial bytes kept;
    /// EOF is [`WireError::Closed`] only at a frame boundary with an
    /// empty buffer, otherwise [`WireError::Truncated`].
    fn fill_to(&mut self, need: usize) -> Result<(), WireError> {
        let mut chunk = [0u8; 8192];
        while self.buf.len() < need {
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Err(
                        if self.buf.is_empty() && matches!(self.stage, ReadStage::Header) {
                            WireError::Closed
                        } else {
                            WireError::Truncated {
                                needed: need,
                                available: self.buf.len(),
                            }
                        },
                    )
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Read the next frame. Non-fatal errors (`ChecksumMismatch`,
    /// `UnknownFrameType`) consume the offending frame, so the caller
    /// may simply call again; [`WireError::Timeout`] preserves all
    /// partial state; any other error poisons the stream.
    ///
    /// Every rejection is counted in `frames_rejected{reason}` (but
    /// timeouts and clean closes are not rejections).
    pub fn read_frame(&mut self) -> Result<Frame, WireError> {
        let result = self.read_frame_inner();
        if let Err(err) = &result {
            if !matches!(err, WireError::Timeout | WireError::Closed) {
                self.metrics.record_rejected(err.label());
            }
        }
        result
    }

    fn read_frame_inner(&mut self) -> Result<Frame, WireError> {
        loop {
            match self.stage {
                ReadStage::Header => {
                    self.fill_to(HEADER_LEN)?;
                    let mut head = [0u8; HEADER_LEN];
                    head.copy_from_slice(&self.buf[..HEADER_LEN]);
                    let header = parse_header(&head, self.max_frame_len)?;
                    // Only consume the header once it validated: a
                    // fatal header error leaves the stream poisoned
                    // anyway, but the bytes stay inspectable.
                    self.buf.drain(..HEADER_LEN);
                    self.stage = ReadStage::Payload(header);
                }
                ReadStage::Payload(header) => {
                    let len = header.payload_len as usize;
                    self.fill_to(len)?;
                    let payload: Vec<u8> = self.buf.drain(..len).collect();
                    self.stage = ReadStage::Header;
                    let frame = decode_frame(&header, &payload)?;
                    self.metrics.frames_received.inc();
                    self.metrics.bytes_received.add((HEADER_LEN + len) as u64);
                    return Ok(frame);
                }
            }
        }
    }
}

/// Frame encoder over a blocking writer, with the chaos seam applied
/// to data frames.
pub struct FrameWriter<W: Write> {
    inner: W,
    version: u16,
    peer: usize,
    data_counter: u64,
    held: Option<Vec<u8>>,
    dead: bool,
    injector: Arc<dyn WireFaultInjector>,
    metrics: Arc<WireMetrics>,
}

impl<W: Write> FrameWriter<W> {
    /// Writer stamping `version` into headers, identified as `peer`
    /// for the injector's keying.
    pub fn new(
        inner: W,
        version: u16,
        peer: usize,
        injector: Arc<dyn WireFaultInjector>,
        metrics: Arc<WireMetrics>,
    ) -> Self {
        FrameWriter {
            inner,
            version,
            peer,
            data_counter: 0,
            held: None,
            dead: false,
            injector,
            metrics,
        }
    }

    /// Update the stamped protocol version (after negotiation).
    pub fn set_version(&mut self, version: u16) {
        self.version = version;
    }

    /// Whether a `Truncate`/`Kill` fate (or an I/O error) has ended
    /// this connection.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if let Err(e) = self.inner.write_all(bytes).and_then(|_| self.inner.flush()) {
            self.dead = true;
            return Err(e.into());
        }
        self.metrics.frames_sent.inc();
        self.metrics.bytes_sent.add(bytes.len() as u64);
        Ok(())
    }

    /// Encode and write one frame, applying the injector's fate when
    /// it is a `Data` frame. Returns `Ok(())` for `Drop` (the loss is
    /// invisible to the sender, exactly like a lossy network) and
    /// an error for `Truncate`/`Kill`, which also mark the writer
    /// dead.
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        if self.dead {
            return Err(WireError::Io(
                std::io::ErrorKind::NotConnected,
                "connection already failed".to_string(),
            ));
        }
        let mut bytes = encode_frame(frame, self.version);
        let fate = if matches!(frame, Frame::Data { .. }) {
            self.data_counter += 1;
            self.injector.frame_fate(self.peer, self.data_counter)
        } else {
            FrameFate::Deliver
        };
        match fate {
            FrameFate::Deliver => self.write_bytes(&bytes)?,
            FrameFate::Drop => {}
            FrameFate::Duplicate => {
                self.write_bytes(&bytes)?;
                self.write_bytes(&bytes)?;
            }
            FrameFate::HoldUntilNext => {
                // One-slot reorder: park this frame; it goes out right
                // after the next write. A second hold while one is
                // parked delivers immediately (no unbounded holding).
                if self.held.is_none() {
                    self.held = Some(bytes);
                    return Ok(());
                }
                self.write_bytes(&bytes)?;
            }
            FrameFate::Corrupt => {
                // Flip a payload byte (or a checksum byte when the
                // payload is empty) so the receiver's checksum — not
                // its framing — must catch the damage.
                let idx = if bytes.len() > HEADER_LEN {
                    HEADER_LEN + (self.data_counter as usize % (bytes.len() - HEADER_LEN))
                } else {
                    HEADER_LEN - 1
                };
                bytes[idx] ^= 0x55;
                self.write_bytes(&bytes)?;
            }
            FrameFate::Truncate => {
                let cut = (bytes.len() / 2).max(1);
                let _ = self.inner.write_all(&bytes[..cut]);
                let _ = self.inner.flush();
                self.dead = true;
                return Err(WireError::Io(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected frame truncation".to_string(),
                ));
            }
            FrameFate::Kill => {
                self.dead = true;
                return Err(WireError::Io(
                    std::io::ErrorKind::ConnectionAborted,
                    "injected connection kill".to_string(),
                ));
            }
        }
        if let Some(held) = self.held.take() {
            self.write_bytes(&held)?;
        }
        Ok(())
    }

    /// Flush any frame parked by a `HoldUntilNext` fate (call before
    /// blocking on a reply).
    pub fn flush_held(&mut self) -> Result<(), WireError> {
        if let Some(held) = self.held.take() {
            self.write_bytes(&held)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Msg;
    use std::sync::Mutex;

    fn metrics() -> Arc<WireMetrics> {
        Arc::new(WireMetrics::default())
    }

    fn tick_frame(seq: u64) -> Frame {
        Frame::Data {
            seq,
            msg: Msg::Tick { now_us: seq },
        }
    }

    /// Reader replaying a script: each `Ok` entry is a byte chunk,
    /// each `Err` a `WouldBlock` timeout; EOF after the script ends.
    struct ChunkedReader {
        script: Vec<Result<Vec<u8>, ()>>,
    }

    impl ChunkedReader {
        fn new(script: Vec<Result<Vec<u8>, ()>>) -> Self {
            ChunkedReader { script }
        }

        fn bytes(chunks: Vec<Vec<u8>>) -> Self {
            ChunkedReader::new(chunks.into_iter().map(Ok).collect())
        }
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.script.is_empty() {
                return Ok(0);
            }
            match self.script.remove(0) {
                Err(()) => Err(std::io::ErrorKind::WouldBlock.into()),
                Ok(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.script.insert(0, Ok(chunk[n..].to_vec()));
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn reader_survives_timeouts_mid_frame() {
        let bytes = encode_frame(&tick_frame(1), crate::PROTOCOL_VERSION);
        let source = ChunkedReader::bytes(vec![bytes[..7].to_vec(), bytes[7..].to_vec()]);
        let mut reader = FrameReader::new(source, crate::DEFAULT_MAX_FRAME_LEN, metrics());
        assert_eq!(reader.read_frame().unwrap(), tick_frame(1));

        // A timeout strikes mid-frame, after 7 header bytes arrived:
        // the partial state is preserved and the next call finishes
        // decoding the same frame.
        let source = ChunkedReader::new(vec![
            Ok(bytes[..7].to_vec()),
            Err(()),
            Ok(bytes[7..].to_vec()),
        ]);
        let mut reader = FrameReader::new(source, crate::DEFAULT_MAX_FRAME_LEN, metrics());
        assert_eq!(reader.read_frame(), Err(WireError::Timeout));
        assert_eq!(reader.read_frame().unwrap(), tick_frame(1));
    }

    #[test]
    fn reader_reports_closed_only_at_boundary() {
        let m = metrics();
        let mut reader = FrameReader::new(ChunkedReader::bytes(vec![]), 1024, Arc::clone(&m));
        assert_eq!(reader.read_frame(), Err(WireError::Closed));
        assert_eq!(m.snapshot().frames_rejected, 0);

        let bytes = encode_frame(&tick_frame(1), crate::PROTOCOL_VERSION);
        let mut reader = FrameReader::new(
            ChunkedReader::bytes(vec![bytes[..10].to_vec()]),
            1024,
            Arc::clone(&m),
        );
        assert!(matches!(
            reader.read_frame(),
            Err(WireError::Truncated { .. })
        ));
        assert_eq!(m.snapshot().rejected("truncated"), 1);
    }

    #[test]
    fn reader_skips_corrupt_frame_and_continues() {
        let mut first = encode_frame(&tick_frame(1), crate::PROTOCOL_VERSION);
        let last = first.len() - 1;
        first[last] ^= 0xff;
        let second = encode_frame(&tick_frame(2), crate::PROTOCOL_VERSION);
        let mut stream = first;
        stream.extend_from_slice(&second);
        let m = metrics();
        let mut reader = FrameReader::new(
            ChunkedReader::bytes(vec![stream]),
            crate::DEFAULT_MAX_FRAME_LEN,
            Arc::clone(&m),
        );
        let err = reader.read_frame().unwrap_err();
        assert!(!err.is_stream_fatal());
        assert_eq!(reader.read_frame().unwrap(), tick_frame(2));
        assert_eq!(m.snapshot().rejected("checksum_mismatch"), 1);
        assert_eq!(m.snapshot().frames_received, 1);
    }

    /// Injector scripting one fate per data-frame counter.
    struct ScriptedFates(Vec<FrameFate>);

    impl WireFaultInjector for ScriptedFates {
        fn frame_fate(&self, _peer: usize, counter: u64) -> FrameFate {
            self.0
                .get((counter - 1) as usize)
                .copied()
                .unwrap_or(FrameFate::Deliver)
        }
    }

    fn decode_all(bytes: &[u8]) -> Vec<Frame> {
        let mut reader = FrameReader::new(
            ChunkedReader::bytes(vec![bytes.to_vec()]),
            crate::DEFAULT_MAX_FRAME_LEN,
            metrics(),
        );
        let mut out = Vec::new();
        loop {
            match reader.read_frame() {
                Ok(f) => out.push(f),
                Err(WireError::Closed) => break,
                Err(e) if !e.is_stream_fatal() => continue,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        out
    }

    /// Shared sink so the writer and the test can both see the bytes.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_fates_shape_the_stream() {
        let sink = SharedSink::default();
        let injector = Arc::new(ScriptedFates(vec![
            FrameFate::Deliver,
            FrameFate::Drop,
            FrameFate::Duplicate,
            FrameFate::HoldUntilNext,
            FrameFate::Deliver,
            FrameFate::Corrupt,
        ]));
        let mut writer = FrameWriter::new(
            sink.clone(),
            crate::PROTOCOL_VERSION,
            0,
            injector,
            metrics(),
        );
        for seq in 1..=6u64 {
            writer.send(&tick_frame(seq)).unwrap();
        }
        let frames = decode_all(&sink.0.lock().unwrap());
        // 1 delivered; 2 dropped; 3 twice; 4 held then released after
        // 5; 6 corrupted (skipped by the reader).
        let seqs: Vec<u64> = frames
            .iter()
            .map(|f| match f {
                Frame::Data { seq, .. } => *seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![1, 3, 3, 5, 4]);
    }

    #[test]
    fn control_frames_are_exempt_from_fates() {
        let sink = SharedSink::default();
        // Every data frame dies, but control frames still go through.
        struct AlwaysKill;
        impl WireFaultInjector for AlwaysKill {
            fn frame_fate(&self, _: usize, _: u64) -> FrameFate {
                FrameFate::Kill
            }
        }
        let mut writer = FrameWriter::new(
            sink.clone(),
            crate::PROTOCOL_VERSION,
            0,
            Arc::new(AlwaysKill),
            metrics(),
        );
        writer.send(&Frame::Ack { upto: 3 }).unwrap();
        assert!(!writer.is_dead());
        let err = writer.send(&tick_frame(1)).unwrap_err();
        assert!(err.is_stream_fatal());
        assert!(writer.is_dead());
        // After death every send fails.
        assert!(writer.send(&Frame::Ack { upto: 4 }).is_err());
        let frames = decode_all(&sink.0.lock().unwrap());
        assert_eq!(frames, vec![Frame::Ack { upto: 3 }]);
    }

    #[test]
    fn truncate_fate_writes_prefix_then_dies() {
        let sink = SharedSink::default();
        let mut writer = FrameWriter::new(
            sink.clone(),
            crate::PROTOCOL_VERSION,
            0,
            Arc::new(ScriptedFates(vec![FrameFate::Truncate])),
            metrics(),
        );
        assert!(writer.send(&tick_frame(1)).is_err());
        let written = sink.0.lock().unwrap().clone();
        let full = encode_frame(&tick_frame(1), crate::PROTOCOL_VERSION);
        assert!(!written.is_empty() && written.len() < full.len());
        assert_eq!(written[..], full[..written.len()]);
    }
}
