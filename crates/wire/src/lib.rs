//! `sleuth-wire`: the multi-process serving layer.
//!
//! Everything `sleuth-serve` does in one process — sharded ingest,
//! RCA, quarantine, metrics — this crate distributes across
//! processes: a front-end **router** hash-routes span batches (with
//! the same [`sleuth_serve::shard_of`] used in-process, so the
//! partition is identical) to N **shard servers**, each wrapping a
//! single-shard [`sleuth_serve::ServeRuntime`] behind a TCP or
//! Unix-domain socket listener.
//!
//! The pieces, bottom-up:
//!
//! * [`frame`] — a compact length-prefixed binary frame format with
//!   magic bytes, protocol-version negotiation, and per-frame FNV-1a
//!   checksums. Decoding untrusted bytes is total: it returns a
//!   structured [`WireError`], never panics, and does work bounded by
//!   the frame's declared (and capped) length.
//! * [`session`] — sequence numbers, cumulative acks, nacks, a
//!   bounded reorder buffer, and resend-on-gap give exactly-once,
//!   in-order delivery of data frames over a lossy connection, and
//!   sessions survive reconnects.
//! * [`codec`] — the incremental [`FrameReader`] (timeout-safe) and
//!   the [`FrameWriter`], which hosts the network chaos seam
//!   ([`WireFaultInjector`]): outgoing data frames can be dropped,
//!   duplicated, reordered, corrupted, or truncated, and the
//!   connection killed, by a seeded and budgeted plan.
//! * [`transport`] — `tcp:HOST:PORT` / `unix:/path` endpoints behind
//!   one blocking-stream type.
//! * [`health`] — the cluster failure model: heartbeat-driven
//!   Live/Suspect/Dead peer state, rendezvous (highest-random-weight)
//!   ownership for failover, and the exactly-once [`VerdictLedger`].
//! * [`server`] — [`serve_shard`]: the shard-server loop a
//!   `sleuth-shardd` process runs, with an acceptor that supersedes a
//!   dead session when a new router connection arrives.
//! * [`router`] — [`RouterClient`]: connects to every shard, routes
//!   batches, merges verdict/quarantine/metric streams, heals from
//!   peer death with bounded reconnects, detects dead or stalled
//!   shards via heartbeats, fails their traces over to survivors, and
//!   emits degraded verdicts only when no shard is left.
//!
//! The contract that makes the whole construction testable:
//! **fault transparency**. For any budgeted [`WireFaultInjector`]
//! plan, the verdict set coming out of a multi-process run equals the
//! fault-free multi-process run, which equals the single-process
//! [`sleuth_serve::ServeRuntime`] run on the same input.

mod bytes;

pub mod codec;
pub mod error;
pub mod frame;
pub mod health;
pub mod metrics;
pub mod router;
pub mod server;
pub mod session;
pub mod transport;

pub use codec::{FrameFate, FrameReader, FrameWriter, NoWireFaults, WireFaultInjector};
pub use error::WireError;
pub use frame::{
    decode_frame_bytes, encode_frame, fnv1a64, frame_checksum, Frame, FrameHeader, Msg, ShardFinal,
    WireQuarantined, DEFAULT_MAX_FRAME_LEN, HEADER_LEN, MAGIC, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
pub use health::{
    rendezvous_owner, HealthConfigError, HeartbeatConfig, HeartbeatState, PeerHealth, VerdictLedger,
};
pub use metrics::{WireMetrics, WireMetricsSnapshot};
pub use router::{RouterClient, RouterConfig, RouterReport};
pub use server::{serve_shard, ShardServerConfig};
pub use session::{RecvChannel, RecvOutcome, SendChannel};
pub use transport::{Endpoint, WireListener, WireStream};
