//! In-process trace storage engine.
//!
//! The production Sleuth deployment (§4 of the paper) stores traces in a
//! distributed engine with SQL-like queries and offloads
//! computation-heavy data engineering (feature extraction, exclusive
//! duration/error calculation, baseline statistics) to store-side
//! operators. This crate is the single-node stand-in exercising the same
//! pattern:
//!
//! * [`TraceStore`] — a columnar span store with string interning,
//!   indexed by trace id and time,
//! * [`query`] — predicate scans and group-by aggregation over spans,
//! * [`ops`] — store-side feature operators: bulk exclusive
//!   duration/error computation and per-operation baseline statistics
//!   ([`ops::BaselineStats`]) that the RCA pipeline uses as the "normal
//!   state" for counterfactual restoration.
//!
//! # Example
//!
//! ```
//! use sleuth_store::TraceStore;
//! use sleuth_trace::{Span, SpanKind};
//!
//! let mut store = TraceStore::new();
//! store.insert_span(Span::builder(1, 1, "frontend", "GET /").time(0, 500).build());
//! store.insert_span(
//!     Span::builder(1, 2, "db", "query").parent(1).time(100, 300).build(),
//! );
//! assert_eq!(store.span_count(), 2);
//! let trace = store.trace(1).expect("assembles");
//! assert_eq!(trace.len(), 2);
//! ```

pub mod collector;
pub mod ops;
pub mod query;
pub mod store;

pub use collector::{Collector, CollectorCaps};
pub use ops::BaselineStats;
pub use query::{GroupKey, Query};
pub use store::TraceStore;
