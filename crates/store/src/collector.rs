//! Span collector with windowed trace completion (§4).
//!
//! Production collectors receive spans out of order, across network
//! batches, and without an end-of-trace marker. This collector buffers
//! spans per trace and declares a trace *complete* once it has been
//! idle (no new spans) for a configurable window, handing the batch to
//! the storage engine.

use std::collections::{HashMap, HashSet};

use sleuth_trace::{Span, TraceId};

use crate::store::TraceStore;

/// Buffering collector: spans in, completed trace batches out.
#[derive(Debug, Clone)]
pub struct Collector {
    idle_timeout_us: u64,
    pending: HashMap<TraceId, PendingTrace>,
    completed: usize,
    caps: CollectorCaps,
    buffered_spans: usize,
    evicted_traces: usize,
    evicted_spans: usize,
    deduped_spans: usize,
}

/// Bounds on collector buffering. When a cap is exceeded the
/// *oldest* pending trace (smallest `last_seen_us`) is evicted whole:
/// a trace that has been quiet longest is the most likely to already
/// be complete, and partial traces are worthless downstream.
#[derive(Debug, Clone, Copy)]
pub struct CollectorCaps {
    /// Maximum distinct traces buffering at once (`usize::MAX` = unbounded).
    pub max_pending_traces: usize,
    /// Maximum spans buffering across all traces (`usize::MAX` = unbounded).
    pub max_buffered_spans: usize,
}

impl Default for CollectorCaps {
    fn default() -> Self {
        CollectorCaps {
            max_pending_traces: usize::MAX,
            max_buffered_spans: usize::MAX,
        }
    }
}

#[derive(Debug, Clone)]
struct PendingTrace {
    spans: Vec<Span>,
    span_ids: HashSet<u64>,
    last_seen_us: u64,
}

impl Collector {
    /// A collector that completes traces after `idle_timeout_us` of
    /// inactivity.
    pub fn new(idle_timeout_us: u64) -> Self {
        Collector {
            idle_timeout_us,
            pending: HashMap::new(),
            completed: 0,
            caps: CollectorCaps::default(),
            buffered_spans: 0,
            evicted_traces: 0,
            evicted_spans: 0,
            deduped_spans: 0,
        }
    }

    /// Bound pending traces / buffered spans (builder style).
    pub fn with_caps(mut self, caps: CollectorCaps) -> Self {
        self.caps = caps;
        self
    }

    /// Ingest one span observed at wall-clock `now_us`.
    pub fn ingest(&mut self, span: Span, now_us: u64) {
        let trace_id = span.trace_id;
        // Admitting a span to a *new* trace may exceed the trace cap.
        if !self.pending.contains_key(&trace_id)
            && self.pending.len() >= self.caps.max_pending_traces
        {
            self.evict_oldest();
        }
        let entry = self
            .pending
            .entry(trace_id)
            .or_insert_with(|| PendingTrace {
                spans: Vec::new(),
                span_ids: HashSet::new(),
                last_seen_us: now_us,
            });
        // A retransmitted span id still signals trace liveness but is
        // buffered only once (assembly rejects duplicates).
        entry.last_seen_us = now_us;
        if !entry.span_ids.insert(span.span_id) {
            self.deduped_spans += 1;
            return;
        }
        entry.spans.push(span);
        self.buffered_spans += 1;
        while self.buffered_spans > self.caps.max_buffered_spans && self.pending.len() > 1 {
            self.evict_oldest();
        }
    }

    /// Drop the pending trace idle the longest; the current trace is
    /// only evicted when it is the sole one left (span cap smaller
    /// than a single trace).
    fn evict_oldest(&mut self) {
        let victim = self
            .pending
            .iter()
            .min_by_key(|(&id, p)| (p.last_seen_us, id))
            .map(|(&id, _)| id);
        if let Some(id) = victim {
            let p = self.pending.remove(&id).expect("listed above");
            self.buffered_spans -= p.spans.len();
            self.evicted_traces += 1;
            self.evicted_spans += p.spans.len();
        }
    }

    /// Ingest a batch (spans may belong to different traces and arrive
    /// in any order).
    pub fn ingest_batch<I: IntoIterator<Item = Span>>(&mut self, spans: I, now_us: u64) {
        for s in spans {
            self.ingest(s, now_us);
        }
    }

    /// Pop every trace idle since before `now_us − idle_timeout_us`.
    pub fn poll_complete(&mut self, now_us: u64) -> Vec<Vec<Span>> {
        // `last_seen + timeout <= now`, saturating on the *addition*:
        // subtracting from `now` would saturate to a zero cutoff while
        // `now < timeout` and complete fresh traces seen at t=0.
        let done: Vec<TraceId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.last_seen_us.saturating_add(self.idle_timeout_us) <= now_us)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(done.len());
        for id in done {
            let p = self.pending.remove(&id).expect("listed above");
            self.buffered_spans -= p.spans.len();
            out.push(p.spans);
        }
        self.completed += out.len();
        out
    }

    /// Drain everything regardless of idleness (shutdown).
    pub fn flush(&mut self) -> Vec<Vec<Span>> {
        let mut ids: Vec<TraceId> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        let out: Vec<Vec<Span>> = ids
            .into_iter()
            .map(|id| self.pending.remove(&id).expect("listed").spans)
            .collect();
        self.buffered_spans = 0;
        self.completed += out.len();
        out
    }

    /// Traces still buffering.
    pub fn pending_traces(&self) -> usize {
        self.pending.len()
    }

    /// Spans still buffering.
    pub fn pending_spans(&self) -> usize {
        self.buffered_spans
    }

    /// Traces completed so far.
    pub fn completed_traces(&self) -> usize {
        self.completed
    }

    /// Whole traces dropped by cap-triggered eviction.
    pub fn evicted_traces(&self) -> usize {
        self.evicted_traces
    }

    /// Spans dropped inside evicted traces.
    pub fn evicted_spans(&self) -> usize {
        self.evicted_spans
    }

    /// Retransmitted spans discarded as duplicates.
    pub fn deduped_spans(&self) -> usize {
        self.deduped_spans
    }

    /// Poll completed traces into a [`TraceStore`], returning how many
    /// traces were forwarded.
    pub fn drain_into(&mut self, store: &mut TraceStore, now_us: u64) -> usize {
        let batches = self.poll_complete(now_us);
        let n = batches.len();
        for batch in batches {
            store.extend(batch);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::Trace;

    fn span(trace: TraceId, id: u64, parent: Option<u64>) -> Span {
        let b = Span::builder(trace, id, "svc", "op").time(id * 10, id * 10 + 5);
        match parent {
            Some(p) => b.parent(p).build(),
            None => b.build(),
        }
    }

    #[test]
    fn trace_completes_after_idle_window() {
        let mut c = Collector::new(1_000);
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(1, 2, Some(1)), 500);
        // Not yet idle long enough.
        assert!(c.poll_complete(1_200).is_empty());
        assert_eq!(c.pending_traces(), 1);
        // Idle past the window.
        let done = c.poll_complete(1_600);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].len(), 2);
        assert_eq!(c.pending_traces(), 0);
        assert_eq!(c.completed_traces(), 1);
    }

    #[test]
    fn late_span_reopens_window() {
        let mut c = Collector::new(1_000);
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(1, 2, Some(1)), 900);
        // A late span at t=1800 keeps the trace pending at t=1900.
        c.ingest(span(1, 3, Some(1)), 1_800);
        assert!(c.poll_complete(1_900).is_empty());
        let done = c.poll_complete(2_900);
        assert_eq!(done[0].len(), 3);
    }

    #[test]
    fn out_of_order_spans_still_assemble() {
        let mut c = Collector::new(100);
        // Child before parent, interleaved traces.
        c.ingest(span(7, 2, Some(1)), 0);
        c.ingest(span(8, 1, None), 0);
        c.ingest(span(7, 1, None), 10);
        let mut done = c.poll_complete(10_000);
        done.sort_by_key(|b| b[0].trace_id);
        assert_eq!(done.len(), 2);
        let t7 = done.iter().find(|b| b[0].trace_id == 7).unwrap();
        assert!(Trace::assemble(t7.clone()).is_ok());
    }

    #[test]
    fn flush_drains_everything() {
        let mut c = Collector::new(1_000_000);
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(2, 1, None), 0);
        assert_eq!(c.pending_spans(), 2);
        let done = c.flush();
        assert_eq!(done.len(), 2);
        assert_eq!(c.pending_traces(), 0);
    }

    #[test]
    fn duplicate_spans_buffered_once() {
        let mut c = Collector::new(1_000);
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(1, 2, Some(1)), 100);
        // Retransmission of span 2: discarded, but keeps the trace live.
        c.ingest(span(1, 2, Some(1)), 900);
        assert_eq!(c.pending_spans(), 2);
        assert_eq!(c.deduped_spans(), 1);
        assert!(c.poll_complete(1_500).is_empty(), "retransmit refreshed window");
        let done = c.poll_complete(2_000);
        assert_eq!(done[0].len(), 2);
        assert!(Trace::assemble(done.into_iter().next().unwrap()).is_ok());
    }

    #[test]
    fn trace_cap_evicts_oldest_pending() {
        let mut c = Collector::new(1_000).with_caps(CollectorCaps {
            max_pending_traces: 2,
            max_buffered_spans: usize::MAX,
        });
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(2, 1, None), 100);
        // Trace 3 exceeds the cap: trace 1 (idle longest) is dropped.
        c.ingest(span(3, 1, None), 200);
        assert_eq!(c.pending_traces(), 2);
        assert_eq!(c.evicted_traces(), 1);
        assert_eq!(c.evicted_spans(), 1);
        let mut done = c.poll_complete(10_000);
        done.sort_by_key(|b| b[0].trace_id);
        let ids: Vec<TraceId> = done.iter().map(|b| b[0].trace_id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn span_cap_evicts_but_keeps_current_trace() {
        let mut c = Collector::new(1_000).with_caps(CollectorCaps {
            max_pending_traces: usize::MAX,
            max_buffered_spans: 3,
        });
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(1, 2, Some(1)), 10);
        c.ingest(span(2, 1, None), 20);
        assert_eq!(c.evicted_traces(), 0);
        // 4th span: trace 1 (2 spans, oldest) is evicted.
        c.ingest(span(2, 2, Some(1)), 30);
        assert_eq!(c.evicted_traces(), 1);
        assert_eq!(c.evicted_spans(), 2);
        assert_eq!(c.pending_spans(), 2);
        // A single trace larger than the cap is never self-evicted.
        for i in 3..10 {
            c.ingest(span(2, i, Some(1)), 40 + i);
        }
        assert_eq!(c.evicted_traces(), 1);
        assert_eq!(c.pending_traces(), 1);
    }

    #[test]
    fn eviction_accounting_balances() {
        let mut c = Collector::new(100).with_caps(CollectorCaps {
            max_pending_traces: 4,
            max_buffered_spans: usize::MAX,
        });
        let total: usize = 40;
        for i in 0..total as u64 {
            c.ingest(span(i, 1, None), i * 10);
        }
        let completed = c.flush().iter().map(Vec::len).sum::<usize>();
        assert_eq!(completed + c.evicted_spans(), total);
        assert_eq!(c.pending_spans(), 0);
    }

    #[test]
    fn drain_into_store() {
        let mut c = Collector::new(100);
        let mut store = TraceStore::new();
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(1, 2, Some(1)), 1);
        assert_eq!(c.drain_into(&mut store, 10_000), 1);
        assert_eq!(store.trace_count(), 1);
        assert!(store.trace(1).is_some());
    }
}
