//! Span collector with windowed trace completion (§4).
//!
//! Production collectors receive spans out of order, across network
//! batches, and without an end-of-trace marker. This collector buffers
//! spans per trace and declares a trace *complete* once it has been
//! idle (no new spans) for a configurable window, handing the batch to
//! the storage engine.

use std::collections::HashMap;

use sleuth_trace::{Span, TraceId};

use crate::store::TraceStore;

/// Buffering collector: spans in, completed trace batches out.
#[derive(Debug, Clone)]
pub struct Collector {
    idle_timeout_us: u64,
    pending: HashMap<TraceId, PendingTrace>,
    completed: usize,
}

#[derive(Debug, Clone)]
struct PendingTrace {
    spans: Vec<Span>,
    last_seen_us: u64,
}

impl Collector {
    /// A collector that completes traces after `idle_timeout_us` of
    /// inactivity.
    pub fn new(idle_timeout_us: u64) -> Self {
        Collector {
            idle_timeout_us,
            pending: HashMap::new(),
            completed: 0,
        }
    }

    /// Ingest one span observed at wall-clock `now_us`.
    pub fn ingest(&mut self, span: Span, now_us: u64) {
        let entry = self
            .pending
            .entry(span.trace_id)
            .or_insert_with(|| PendingTrace {
                spans: Vec::new(),
                last_seen_us: now_us,
            });
        entry.spans.push(span);
        entry.last_seen_us = now_us;
    }

    /// Ingest a batch (spans may belong to different traces and arrive
    /// in any order).
    pub fn ingest_batch<I: IntoIterator<Item = Span>>(&mut self, spans: I, now_us: u64) {
        for s in spans {
            self.ingest(s, now_us);
        }
    }

    /// Pop every trace idle since before `now_us − idle_timeout_us`.
    pub fn poll_complete(&mut self, now_us: u64) -> Vec<Vec<Span>> {
        let cutoff = now_us.saturating_sub(self.idle_timeout_us);
        let done: Vec<TraceId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.last_seen_us <= cutoff)
            .map(|(&id, _)| id)
            .collect();
        let mut out = Vec::with_capacity(done.len());
        for id in done {
            let p = self.pending.remove(&id).expect("listed above");
            out.push(p.spans);
        }
        self.completed += out.len();
        out
    }

    /// Drain everything regardless of idleness (shutdown).
    pub fn flush(&mut self) -> Vec<Vec<Span>> {
        let mut ids: Vec<TraceId> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        let out: Vec<Vec<Span>> = ids
            .into_iter()
            .map(|id| self.pending.remove(&id).expect("listed").spans)
            .collect();
        self.completed += out.len();
        out
    }

    /// Traces still buffering.
    pub fn pending_traces(&self) -> usize {
        self.pending.len()
    }

    /// Spans still buffering.
    pub fn pending_spans(&self) -> usize {
        self.pending.values().map(|p| p.spans.len()).sum()
    }

    /// Traces completed so far.
    pub fn completed_traces(&self) -> usize {
        self.completed
    }

    /// Poll completed traces into a [`TraceStore`], returning how many
    /// traces were forwarded.
    pub fn drain_into(&mut self, store: &mut TraceStore, now_us: u64) -> usize {
        let batches = self.poll_complete(now_us);
        let n = batches.len();
        for batch in batches {
            store.extend(batch);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::Trace;

    fn span(trace: TraceId, id: u64, parent: Option<u64>) -> Span {
        let b = Span::builder(trace, id, "svc", "op").time(id * 10, id * 10 + 5);
        match parent {
            Some(p) => b.parent(p).build(),
            None => b.build(),
        }
    }

    #[test]
    fn trace_completes_after_idle_window() {
        let mut c = Collector::new(1_000);
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(1, 2, Some(1)), 500);
        // Not yet idle long enough.
        assert!(c.poll_complete(1_200).is_empty());
        assert_eq!(c.pending_traces(), 1);
        // Idle past the window.
        let done = c.poll_complete(1_600);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].len(), 2);
        assert_eq!(c.pending_traces(), 0);
        assert_eq!(c.completed_traces(), 1);
    }

    #[test]
    fn late_span_reopens_window() {
        let mut c = Collector::new(1_000);
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(1, 2, Some(1)), 900);
        // A late span at t=1800 keeps the trace pending at t=1900.
        c.ingest(span(1, 3, Some(1)), 1_800);
        assert!(c.poll_complete(1_900).is_empty());
        let done = c.poll_complete(2_900);
        assert_eq!(done[0].len(), 3);
    }

    #[test]
    fn out_of_order_spans_still_assemble() {
        let mut c = Collector::new(100);
        // Child before parent, interleaved traces.
        c.ingest(span(7, 2, Some(1)), 0);
        c.ingest(span(8, 1, None), 0);
        c.ingest(span(7, 1, None), 10);
        let mut done = c.poll_complete(10_000);
        done.sort_by_key(|b| b[0].trace_id);
        assert_eq!(done.len(), 2);
        let t7 = done.iter().find(|b| b[0].trace_id == 7).unwrap();
        assert!(Trace::assemble(t7.clone()).is_ok());
    }

    #[test]
    fn flush_drains_everything() {
        let mut c = Collector::new(1_000_000);
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(2, 1, None), 0);
        assert_eq!(c.pending_spans(), 2);
        let done = c.flush();
        assert_eq!(done.len(), 2);
        assert_eq!(c.pending_traces(), 0);
    }

    #[test]
    fn drain_into_store() {
        let mut c = Collector::new(100);
        let mut store = TraceStore::new();
        c.ingest(span(1, 1, None), 0);
        c.ingest(span(1, 2, Some(1)), 1);
        assert_eq!(c.drain_into(&mut store, 10_000), 1);
        assert_eq!(store.trace_count(), 1);
        assert!(store.trace(1).is_some());
    }
}
