//! Columnar span storage keyed by globally interned symbols.
//!
//! String columns (`service`, `name`, `pod`, `node`) hold
//! [`Symbol`]s from the process-global
//! [`Interner`](sleuth_trace::Interner) rather than a store-private
//! string table. Because every span already carries its interned
//! symbols from [`SpanBuilder::build`](sleuth_trace::SpanBuilder),
//! insertion pushes plain `u32`s (no hashing, no string copies), and
//! [`TraceStore::merge`] between sharded stores is a column append —
//! symbols mean the same thing in every store of the process.

use std::collections::HashMap;

use sleuth_trace::{AssembleTraceError, IStr, Interner, Span, SpanKind, StatusCode, Symbol, Trace, TraceId};

/// Columnar storage of spans: one vector per attribute, plus a per-trace
/// row index. Strings (`service`, `name`, `pod`, `node`) are stored as
/// globally interned [`Symbol`]s.
#[derive(Debug, Default, Clone)]
pub struct TraceStore {
    trace_id: Vec<TraceId>,
    span_id: Vec<u64>,
    parent_span_id: Vec<Option<u64>>,
    service: Vec<Symbol>,
    name: Vec<Symbol>,
    kind: Vec<SpanKind>,
    start_us: Vec<u64>,
    end_us: Vec<u64>,
    status: Vec<StatusCode>,
    pod: Vec<Symbol>,
    node: Vec<Symbol>,
    rows_by_trace: HashMap<TraceId, Vec<usize>>,
}

impl TraceStore {
    /// Create an empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// The interner whose symbols this store's string columns hold —
    /// the process-global table, shared with every [`Span`].
    pub fn interner(&self) -> &'static Interner {
        Interner::global()
    }

    /// Number of spans stored.
    pub fn span_count(&self) -> usize {
        self.trace_id.len()
    }

    /// Number of distinct traces stored.
    pub fn trace_count(&self) -> usize {
        self.rows_by_trace.len()
    }

    /// Whether the store holds no spans.
    pub fn is_empty(&self) -> bool {
        self.trace_id.is_empty()
    }

    /// Insert one span. Every identifier column takes the span's
    /// pre-interned symbols — columnar storage of a span allocates
    /// nothing.
    pub fn insert_span(&mut self, span: Span) {
        let row = self.span_count();
        self.trace_id.push(span.trace_id);
        self.span_id.push(span.span_id);
        self.parent_span_id.push(span.parent_span_id);
        self.service.push(span.service_sym());
        self.name.push(span.name_sym());
        self.kind.push(span.kind);
        self.start_us.push(span.start_us);
        self.end_us.push(span.end_us);
        self.status.push(span.status);
        self.pod.push(span.pod.sym());
        self.node.push(span.node.sym());
        self.rows_by_trace.entry(span.trace_id).or_default().push(row);
    }

    /// Insert every span of an assembled trace.
    pub fn insert_trace(&mut self, trace: &Trace) {
        for (_, span) in trace.iter() {
            self.insert_span(span.clone());
        }
    }

    /// Bulk-insert spans.
    pub fn extend<I: IntoIterator<Item = Span>>(&mut self, spans: I) {
        for s in spans {
            self.insert_span(s);
        }
    }

    /// Absorb every span of `other`. Because both stores share the
    /// process-global interner, this is a plain column append — no
    /// string re-interning and no span materialisation. Lets sharded
    /// stores (one per serving worker) be folded into a single
    /// queryable store after drain.
    pub fn merge(&mut self, other: &TraceStore) {
        let base = self.span_count();
        self.trace_id.extend_from_slice(&other.trace_id);
        self.span_id.extend_from_slice(&other.span_id);
        self.parent_span_id.extend_from_slice(&other.parent_span_id);
        self.service.extend_from_slice(&other.service);
        self.name.extend_from_slice(&other.name);
        self.kind.extend_from_slice(&other.kind);
        self.start_us.extend_from_slice(&other.start_us);
        self.end_us.extend_from_slice(&other.end_us);
        self.status.extend_from_slice(&other.status);
        self.pod.extend_from_slice(&other.pod);
        self.node.extend_from_slice(&other.node);
        for (&tid, rows) in &other.rows_by_trace {
            let entry = self.rows_by_trace.entry(tid).or_default();
            entry.extend(rows.iter().map(|&r| base + r));
            entry.sort_unstable();
        }
    }

    /// Materialise the span at a storage row.
    pub(crate) fn span_at(&self, row: usize) -> Span {
        Span {
            trace_id: self.trace_id[row],
            span_id: self.span_id[row],
            parent_span_id: self.parent_span_id[row],
            service: IStr::from_symbol(self.service[row]),
            name: IStr::from_symbol(self.name[row]),
            kind: self.kind[row],
            start_us: self.start_us[row],
            end_us: self.end_us[row],
            status: self.status[row],
            pod: IStr::from_symbol(self.pod[row]),
            node: IStr::from_symbol(self.node[row]),
        }
    }

    /// All trace ids present, in insertion order of first span.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<(usize, TraceId)> = self
            .rows_by_trace
            .iter()
            .map(|(&tid, rows)| (rows[0], tid))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, t)| t).collect()
    }

    /// Assemble the trace with the given id.
    ///
    /// Returns `None` if the id is unknown.
    ///
    /// # Errors
    ///
    /// Propagates [`AssembleTraceError`] for malformed span sets.
    pub fn trace(&self, id: TraceId) -> Option<Trace> {
        self.try_trace(id).and_then(Result::ok)
    }

    /// Like [`TraceStore::trace`] but surfacing assembly errors.
    pub fn try_trace(&self, id: TraceId) -> Option<Result<Trace, AssembleTraceError>> {
        let rows = self.rows_by_trace.get(&id)?;
        let spans = rows.iter().map(|&r| self.span_at(r)).collect();
        Some(Trace::assemble(spans))
    }

    /// Assemble every stored trace, skipping malformed ones.
    pub fn all_traces(&self) -> Vec<Trace> {
        self.trace_ids()
            .into_iter()
            .filter_map(|id| self.trace(id))
            .collect()
    }

    /// Incremental completed-trace export: assemble every trace whose
    /// *first* span was stored at row `watermark` or later, and return
    /// the new watermark to pass next time. Serving-shard stores append
    /// each completed trace as a contiguous row block, so repeatedly
    /// calling this yields every completed trace exactly once — the
    /// feed for incremental baseline refresh. Malformed span sets are
    /// skipped (they advance the watermark but export nothing).
    pub fn export_completed_since(&self, watermark: usize) -> (Vec<Trace>, usize) {
        let mut fresh: Vec<(usize, TraceId)> = self
            .rows_by_trace
            .iter()
            .filter(|(_, rows)| rows[0] >= watermark)
            .map(|(&tid, rows)| (rows[0], tid))
            .collect();
        fresh.sort_unstable();
        let traces = fresh
            .into_iter()
            .filter_map(|(_, id)| self.trace(id))
            .collect();
        (traces, self.span_count())
    }

    /// Rows (storage indices) of all spans, for scans.
    pub(crate) fn rows(&self) -> std::ops::Range<usize> {
        0..self.span_count()
    }

    pub(crate) fn service_col(&self) -> &[Symbol] {
        &self.service
    }

    pub(crate) fn name_col(&self) -> &[Symbol] {
        &self.name
    }

    pub(crate) fn kind_col(&self) -> &[SpanKind] {
        &self.kind
    }

    pub(crate) fn status_col(&self) -> &[StatusCode] {
        &self.status
    }

    pub(crate) fn start_col(&self) -> &[u64] {
        &self.start_us
    }

    pub(crate) fn end_col(&self) -> &[u64] {
        &self.end_us
    }

    pub(crate) fn trace_id_col(&self) -> &[TraceId] {
        &self.trace_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans(trace: TraceId) -> Vec<Span> {
        vec![
            Span::builder(trace, 1, "frontend", "GET /")
                .time(0, 1000)
                .build(),
            Span::builder(trace, 2, "cart", "AddItem")
                .parent(1)
                .kind(SpanKind::Client)
                .time(100, 400)
                .build(),
            Span::builder(trace, 3, "db", "query")
                .parent(2)
                .kind(SpanKind::Client)
                .time(150, 350)
                .status(StatusCode::Error)
                .build(),
        ]
    }

    #[test]
    fn insert_and_count() {
        let mut s = TraceStore::new();
        s.extend(sample_spans(1));
        s.extend(sample_spans(2));
        assert_eq!(s.span_count(), 6);
        assert_eq!(s.trace_count(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn roundtrip_span_materialisation() {
        let mut s = TraceStore::new();
        let spans = sample_spans(1);
        s.extend(spans.clone());
        for (i, sp) in spans.iter().enumerate() {
            assert_eq!(&s.span_at(i), sp);
        }
    }

    #[test]
    fn trace_assembly_from_store() {
        let mut s = TraceStore::new();
        s.extend(sample_spans(5));
        let t = s.trace(5).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.max_depth(), 2);
        assert!(s.trace(99).is_none());
    }

    #[test]
    fn identifier_columns_are_dense_symbols() {
        let mut s = TraceStore::new();
        for tid in 0..50 {
            s.extend(sample_spans(tid));
        }
        // 150 rows, but only 3 distinct service symbols.
        let mut services: Vec<Symbol> = s.service_col().to_vec();
        services.sort_unstable();
        services.dedup();
        assert_eq!(services.len(), 3);
        // Symbols resolve through the global interner.
        let texts: Vec<&str> = services.iter().map(|s| s.as_str()).collect();
        for t in ["frontend", "cart", "db"] {
            assert!(texts.contains(&t), "{t} missing from {texts:?}");
        }
        // Row 0 is the frontend root span; its column symbol is the
        // global interner's symbol for the same text.
        assert_eq!(Some(s.service_col()[0]), s.interner().get("frontend"));
    }

    #[test]
    fn trace_ids_in_first_seen_order() {
        let mut s = TraceStore::new();
        s.extend(sample_spans(9));
        s.extend(sample_spans(2));
        s.extend(sample_spans(7));
        assert_eq!(s.trace_ids(), vec![9, 2, 7]);
    }

    #[test]
    fn malformed_trace_surfaces_error() {
        let mut s = TraceStore::new();
        s.insert_span(Span::builder(1, 2, "a", "x").parent(99).time(0, 1).build());
        assert!(s.try_trace(1).unwrap().is_err());
        assert!(s.trace(1).is_none());
        assert!(s.all_traces().is_empty());
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = TraceStore::new();
        let mut b = TraceStore::new();
        a.extend(sample_spans(1));
        b.extend(sample_spans(2));
        b.extend(sample_spans(3));
        a.merge(&b);
        assert_eq!(a.trace_count(), 3);
        assert_eq!(a.span_count(), 9);
        let t2 = a.trace(2).unwrap();
        assert_eq!(t2, Trace::assemble(sample_spans(2)).unwrap());
    }

    #[test]
    fn merge_interleaved_trace_rows_stay_ordered() {
        // The same trace id split across both stores: merged row lists
        // must stay sorted so assembly sees a coherent batch.
        let mut a = TraceStore::new();
        let mut b = TraceStore::new();
        let spans = sample_spans(4);
        a.insert_span(spans[0].clone());
        b.insert_span(spans[1].clone());
        b.insert_span(spans[2].clone());
        a.merge(&b);
        let t = a.trace(4).unwrap();
        assert_eq!(t, Trace::assemble(spans).unwrap());
    }

    #[test]
    fn insert_trace_roundtrip() {
        let t = Trace::assemble(sample_spans(3)).unwrap();
        let mut s = TraceStore::new();
        s.insert_trace(&t);
        assert_eq!(s.trace(3).unwrap(), t);
    }

    #[test]
    fn export_completed_since_yields_each_trace_once() {
        let mut s = TraceStore::new();
        s.extend(sample_spans(1));
        s.extend(sample_spans(2));
        let (first, mark) = s.export_completed_since(0);
        assert_eq!(
            first.iter().map(Trace::trace_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(mark, s.span_count());

        // Nothing new: empty export, stable watermark.
        let (none, mark2) = s.export_completed_since(mark);
        assert!(none.is_empty());
        assert_eq!(mark2, mark);

        // Only traces stored after the watermark come back.
        s.extend(sample_spans(7));
        let (fresh, _) = s.export_completed_since(mark);
        assert_eq!(
            fresh.iter().map(Trace::trace_id).collect::<Vec<_>>(),
            vec![7]
        );
    }
}
