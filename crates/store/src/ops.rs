//! Store-side feature-engineering operators (§4).
//!
//! The paper offloads exclusive duration/error computation and baseline
//! ("normal state") statistics to the storage engine for throughput.
//! [`BaselineStats`] summarises per-operation behaviour across the
//! stored corpus: the counterfactual RCA restores a span to "normal" by
//! substituting the operation's median duration and clearing errors, and
//! the threshold/realtime baselines consume the percentile fields.

use std::collections::HashMap;

use sleuth_trace::{exclusive, Trace};

use crate::query::{GroupKey, Query};
use crate::store::TraceStore;

/// Summary statistics of one operation `(service, name, kind)` over a
/// corpus of (presumed mostly normal) traces.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationStats {
    /// Number of samples observed.
    pub count: usize,
    /// Mean duration, µs.
    pub mean_us: f64,
    /// Standard deviation of duration, µs.
    pub std_us: f64,
    /// Median (p50) duration, µs.
    pub median_us: u64,
    /// 95th percentile duration, µs.
    pub p95_us: u64,
    /// 99th percentile duration, µs.
    pub p99_us: u64,
    /// Fraction of samples with error status.
    pub error_rate: f64,
}

/// Baseline statistics for every operation in a store.
#[derive(Debug, Clone, Default)]
pub struct BaselineStats {
    by_op: HashMap<GroupKey, OperationStats>,
}

impl BaselineStats {
    /// Compute baseline statistics from every span in `store`.
    pub fn compute(store: &TraceStore) -> Self {
        let durations = Query::new(store).durations_by_operation();
        let errors: HashMap<GroupKey, usize> = {
            let mut m: HashMap<GroupKey, usize> = HashMap::new();
            for s in Query::new(store).errors_only().spans() {
                *m.entry(GroupKey::of(&s)).or_default() += 1;
            }
            m
        };
        let mut by_op = HashMap::new();
        for (key, mut ds) in durations {
            ds.sort_unstable();
            let count = ds.len();
            let mean = ds.iter().map(|&d| d as f64).sum::<f64>() / count as f64;
            let var = ds
                .iter()
                .map(|&d| (d as f64 - mean) * (d as f64 - mean))
                .sum::<f64>()
                / count as f64;
            let errs = errors.get(&key).copied().unwrap_or(0);
            let stats = OperationStats {
                count,
                mean_us: mean,
                std_us: var.sqrt(),
                median_us: percentile(&ds, 0.5),
                p95_us: percentile(&ds, 0.95),
                p99_us: percentile(&ds, 0.99),
                error_rate: errs as f64 / count as f64,
            };
            by_op.insert(key, stats);
        }
        BaselineStats { by_op }
    }

    /// Stats for one operation key, if observed.
    pub fn get_key(&self, key: GroupKey) -> Option<&OperationStats> {
        self.by_op.get(&key)
    }

    /// Stats for one operation, if observed.
    #[deprecated(note = "resolve a symbol-keyed `GroupKey` (`GroupKey::of`/`GroupKey::resolve`) \
                         and use `get_key`")]
    pub fn get(&self, service: &str, name: &str, kind: sleuth_trace::SpanKind) -> Option<&OperationStats> {
        self.get_key(GroupKey::resolve(service, name, kind)?)
    }

    /// Median duration for an operation key, falling back to
    /// `default_us` when the operation was never observed (e.g. new
    /// service).
    pub fn median_or_key(&self, key: GroupKey, default_us: u64) -> u64 {
        self.get_key(key).map(|s| s.median_us).unwrap_or(default_us)
    }

    /// Median duration for an operation, falling back to `default_us`
    /// when the operation was never observed (e.g. new service).
    #[deprecated(note = "resolve a symbol-keyed `GroupKey` and use `median_or_key`")]
    pub fn median_or(&self, service: &str, name: &str, kind: sleuth_trace::SpanKind, default_us: u64) -> u64 {
        GroupKey::resolve(service, name, kind)
            .and_then(|k| self.get_key(k))
            .map(|s| s.median_us)
            .unwrap_or(default_us)
    }

    /// Number of operations summarised.
    pub fn len(&self) -> usize {
        self.by_op.len()
    }

    /// Whether no operations were summarised.
    pub fn is_empty(&self) -> bool {
        self.by_op.is_empty()
    }

    /// Iterate over all `(operation, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupKey, &OperationStats)> {
        self.by_op.iter()
    }
}

/// Nearest-rank percentile of a **sorted** slice (`q` in `[0, 1]`).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Bulk exclusive-duration/error computation over every stored trace.
///
/// Returns, per trace, the assembled [`Trace`] along with its exclusive
/// duration and exclusive error vectors — the store-side operator the
/// paper's pipeline offloads (§4).
pub fn exclusive_features(store: &TraceStore) -> Vec<(Trace, Vec<u64>, Vec<bool>)> {
    store
        .all_traces()
        .into_iter()
        .map(|t| {
            let ex_d = exclusive::exclusive_durations(&t);
            let ex_e = exclusive::exclusive_errors(&t);
            (t, ex_d, ex_e)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, SpanKind, StatusCode};

    fn corpus() -> TraceStore {
        let mut s = TraceStore::new();
        // 10 normal traces with cart.Add at ~300µs, one slow at 10_000µs.
        for tid in 0..10u64 {
            s.insert_span(
                Span::builder(tid, 1, "cart", "Add")
                    .time(0, 290 + tid * 2)
                    .build(),
            );
        }
        s.insert_span(Span::builder(100, 1, "cart", "Add").time(0, 10_000).build());
        s.insert_span(
            Span::builder(101, 1, "cart", "Add")
                .time(0, 300)
                .status(StatusCode::Error)
                .build(),
        );
        s
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.5), 5);
        assert_eq!(percentile(&v, 0.95), 10);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 10);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn baseline_stats_fields() {
        let store = corpus();
        let stats = BaselineStats::compute(&store);
        let key = GroupKey::resolve("cart", "Add", SpanKind::Server).unwrap();
        let op = stats.get_key(key).unwrap();
        assert_eq!(op.count, 12);
        assert!(op.median_us >= 290 && op.median_us <= 310, "median {}", op.median_us);
        assert_eq!(op.p99_us, 10_000);
        assert!((op.error_rate - 1.0 / 12.0).abs() < 1e-9);
        assert!(op.std_us > 0.0);
    }

    #[test]
    fn median_or_falls_back() {
        let stats = BaselineStats::compute(&corpus());
        let ghost = GroupKey {
            service: sleuth_trace::Symbol::intern("ghost"),
            name: sleuth_trace::Symbol::intern("Op"),
            kind: SpanKind::Server,
        };
        assert_eq!(stats.median_or_key(ghost, 777), 777);
        let cart = GroupKey::resolve("cart", "Add", SpanKind::Server).unwrap();
        assert_ne!(stats.median_or_key(cart, 777), 777);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_string_accessors_still_work() {
        let stats = BaselineStats::compute(&corpus());
        assert!(stats.get("cart", "Add", SpanKind::Server).is_some());
        assert!(stats.get("never-interned", "Add", SpanKind::Server).is_none());
        assert_eq!(stats.median_or("never-interned2", "Op", SpanKind::Server, 42), 42);
    }

    #[test]
    fn exclusive_features_bulk() {
        let mut s = TraceStore::new();
        s.insert_span(Span::builder(1, 1, "p", "P").time(0, 100).build());
        s.insert_span(Span::builder(1, 2, "c", "C").parent(1).time(20, 80).build());
        let feats = exclusive_features(&s);
        assert_eq!(feats.len(), 1);
        let (t, ex_d, ex_e) = &feats[0];
        assert_eq!(ex_d[t.root()], 40);
        assert!(ex_e.iter().all(|&e| !e));
    }

    #[test]
    fn empty_store_baselines() {
        let stats = BaselineStats::compute(&TraceStore::new());
        assert!(stats.is_empty());
        assert_eq!(stats.len(), 0);
    }
}
