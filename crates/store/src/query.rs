//! Predicate scans and group-by aggregation over the span columns.

use std::collections::HashMap;

use sleuth_trace::{Span, SpanKind, Symbol, TraceId};

use crate::store::TraceStore;

/// A composable span scan over a [`TraceStore`].
///
/// Filters are conjunctive. Terminal methods execute the scan.
/// Identifier filters are symbol-keyed ([`Query::service_sym`]), so
/// the scan compares dense `u32`s against the columnar storage.
///
/// ```
/// # use sleuth_store::{Query, TraceStore};
/// # use sleuth_trace::{Span, Symbol};
/// # let mut store = TraceStore::new();
/// # store.insert_span(Span::builder(1, 1, "cart", "Add").time(0, 100).build());
/// let cart = Symbol::intern("cart");
/// let slow = Query::new(&store).service_sym(cart).min_duration_us(50).spans();
/// assert_eq!(slow.len(), 1);
/// ```
#[derive(Debug)]
pub struct Query<'a> {
    store: &'a TraceStore,
    /// Outer `None`: no service filter. `Some(None)`: filter on a name
    /// that was never interned, so nothing can match.
    service: Option<Option<Symbol>>,
    kind: Option<SpanKind>,
    errors_only: bool,
    min_duration_us: Option<u64>,
    start_after_us: Option<u64>,
    start_before_us: Option<u64>,
}

impl<'a> Query<'a> {
    /// Begin a scan over `store`.
    pub fn new(store: &'a TraceStore) -> Self {
        Query {
            store,
            service: None,
            kind: None,
            errors_only: false,
            min_duration_us: None,
            start_after_us: None,
            start_before_us: None,
        }
    }

    /// Keep spans from the service with this interned symbol only.
    pub fn service_sym(mut self, service: Symbol) -> Self {
        self.service = Some(Some(service));
        self
    }

    /// Keep spans from this service only.
    #[deprecated(note = "resolve the symbol once (`Symbol::lookup`/`Symbol::intern`) and use \
                         `service_sym`; string lookups do a hash per query build")]
    pub fn service(mut self, service: impl Into<String>) -> Self {
        self.service = Some(Symbol::lookup(&service.into()));
        self
    }

    /// Keep spans of this kind only.
    pub fn kind(mut self, kind: SpanKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Keep failed spans only.
    pub fn errors_only(mut self) -> Self {
        self.errors_only = true;
        self
    }

    /// Keep spans with duration ≥ the threshold.
    pub fn min_duration_us(mut self, d: u64) -> Self {
        self.min_duration_us = Some(d);
        self
    }

    /// Keep spans starting at or after the timestamp.
    pub fn start_after_us(mut self, t: u64) -> Self {
        self.start_after_us = Some(t);
        self
    }

    /// Keep spans starting strictly before the timestamp.
    pub fn start_before_us(mut self, t: u64) -> Self {
        self.start_before_us = Some(t);
        self
    }

    fn matching_rows(&self) -> Vec<usize> {
        let svc_id = match self.service {
            Some(Some(sym)) => Some(sym),
            // A service name that was never interned anywhere cannot
            // appear in any store.
            Some(None) => return Vec::new(),
            None => None,
        };
        self.store
            .rows()
            .filter(|&r| {
                if let Some(id) = svc_id {
                    if self.store.service_col()[r] != id {
                        return false;
                    }
                }
                if let Some(k) = self.kind {
                    if self.store.kind_col()[r] != k {
                        return false;
                    }
                }
                if self.errors_only && !self.store.status_col()[r].is_error() {
                    return false;
                }
                let dur = self.store.end_col()[r] - self.store.start_col()[r];
                if let Some(min) = self.min_duration_us {
                    if dur < min {
                        return false;
                    }
                }
                if let Some(t) = self.start_after_us {
                    if self.store.start_col()[r] < t {
                        return false;
                    }
                }
                if let Some(t) = self.start_before_us {
                    if self.store.start_col()[r] >= t {
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// Execute and materialise the matching spans.
    pub fn spans(&self) -> Vec<Span> {
        self.matching_rows()
            .into_iter()
            .map(|r| self.store.span_at(r))
            .collect()
    }

    /// Execute and count matches without materialising.
    pub fn count(&self) -> usize {
        self.matching_rows().len()
    }

    /// Execute and return distinct trace ids containing a match.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut seen = Vec::new();
        for r in self.matching_rows() {
            let tid = self.store.trace_id_col()[r];
            if !seen.contains(&tid) {
                seen.push(tid);
            }
        }
        seen
    }

    /// Execute with a user-defined filter over materialised spans (the
    /// store engine's "UDF" escape hatch).
    pub fn spans_where(&self, udf: impl Fn(&Span) -> bool) -> Vec<Span> {
        self.spans().into_iter().filter(|s| udf(s)).collect()
    }

    /// Group matching spans' durations by `(service, name, kind)` and
    /// return per-group duration samples (µs).
    pub fn durations_by_operation(&self) -> HashMap<GroupKey, Vec<u64>> {
        let mut groups: HashMap<GroupKey, Vec<u64>> = HashMap::new();
        for r in self.matching_rows() {
            let key = GroupKey {
                service: self.store.service_col()[r],
                name: self.store.name_col()[r],
                kind: self.store.kind_col()[r],
            };
            let dur = self.store.end_col()[r] - self.store.start_col()[r];
            groups.entry(key).or_default().push(dur);
        }
        groups
    }
}

/// Aggregation key: one logical operation, identified by interned
/// symbols. `Copy`, so grouping and lookups never clone strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey {
    /// Service symbol (global interner).
    pub service: Symbol,
    /// Operation-name symbol (global interner).
    pub name: Symbol,
    /// Span kind.
    pub kind: SpanKind,
}

impl GroupKey {
    /// The grouping key of a span.
    pub fn of(span: &Span) -> GroupKey {
        GroupKey {
            service: span.service_sym(),
            name: span.name_sym(),
            kind: span.kind,
        }
    }

    /// Resolve the key from strings, if both have been interned.
    pub fn resolve(service: &str, name: &str, kind: SpanKind) -> Option<GroupKey> {
        Some(GroupKey {
            service: Symbol::lookup(service)?,
            name: Symbol::lookup(name)?,
            kind,
        })
    }

    /// Service name text.
    pub fn service_str(&self) -> &'static str {
        self.service.as_str()
    }

    /// Operation name text.
    pub fn name_str(&self) -> &'static str {
        self.name.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::StatusCode;

    fn store() -> TraceStore {
        let mut s = TraceStore::new();
        s.insert_span(Span::builder(1, 1, "frontend", "GET /").time(0, 1000).build());
        s.insert_span(
            Span::builder(1, 2, "cart", "Add")
                .parent(1)
                .kind(SpanKind::Client)
                .time(100, 400)
                .build(),
        );
        s.insert_span(
            Span::builder(2, 1, "cart", "Add")
                .time(2000, 2900)
                .status(StatusCode::Error)
                .build(),
        );
        s
    }

    #[test]
    fn filter_by_service() {
        let s = store();
        let cart = Symbol::intern("cart");
        assert_eq!(Query::new(&s).service_sym(cart).count(), 2);
        assert_eq!(Query::new(&s).service_sym(Symbol::intern("nope")).count(), 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_string_service_filter_still_works() {
        let s = store();
        assert_eq!(Query::new(&s).service("cart").count(), 2);
        assert_eq!(Query::new(&s).service("never-interned-svc").count(), 0);
    }

    #[test]
    fn filter_by_kind_and_error() {
        let s = store();
        assert_eq!(Query::new(&s).kind(SpanKind::Client).count(), 1);
        let errs = Query::new(&s).errors_only().spans();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].trace_id, 2);
    }

    #[test]
    fn filter_by_duration_and_time() {
        let s = store();
        assert_eq!(Query::new(&s).min_duration_us(500).count(), 2);
        assert_eq!(Query::new(&s).start_after_us(1500).count(), 1);
        assert_eq!(Query::new(&s).start_before_us(50).count(), 1);
    }

    #[test]
    fn conjunctive_filters() {
        let s = store();
        let cart = Symbol::intern("cart");
        assert_eq!(Query::new(&s).service_sym(cart).errors_only().count(), 1);
        assert_eq!(
            Query::new(&s)
                .service_sym(cart)
                .errors_only()
                .min_duration_us(10_000)
                .count(),
            0
        );
    }

    #[test]
    fn trace_ids_deduplicated() {
        let s = store();
        let cart = Symbol::intern("cart");
        assert_eq!(Query::new(&s).service_sym(cart).trace_ids(), vec![1, 2]);
    }

    #[test]
    fn udf_filter() {
        let s = store();
        let spans = Query::new(&s).spans_where(|sp| sp.name.contains('/'));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].service, "frontend");
    }

    #[test]
    fn group_by_operation() {
        let s = store();
        let groups = Query::new(&s).durations_by_operation();
        let key = GroupKey::resolve("cart", "Add", SpanKind::Client).unwrap();
        assert_eq!(groups[&key], vec![300]);
        assert_eq!(groups.len(), 3);
        assert_eq!(key.service_str(), "cart");
        assert_eq!(key.name_str(), "Add");
        assert_eq!(GroupKey::resolve("no-such-svc", "Add", SpanKind::Client), None);
    }
}
