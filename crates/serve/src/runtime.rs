//! The serving runtime: ingest front-end, shard workers, RCA stage,
//! model registry, background baseline refresh, and the
//! shutdown/drain protocol.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use sleuth_core::{AnalyzeOptions, SleuthPipeline};
use sleuth_store::TraceStore;
use sleuth_trace::{Span, Trace, TraceId};

use crate::config::{ClusterPolicy, ConfigError, ServeConfig, ShedPolicy};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushOutcome};
use crate::refresh::{run_refresher, BaselineRefresher};
use crate::registry::{ModelRegistry, ModelVersion};
use crate::shard::{run_shard, shard_of, ShardMsg, ShardReport};

/// A root-cause finding for one anomalous trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The anomalous trace.
    pub trace_id: TraceId,
    /// Root-cause services, most suspicious first.
    pub services: Vec<String>,
    /// Cluster label when localised through a micro-batch cluster
    /// (`None` for per-trace localisation and cluster noise).
    pub cluster: Option<isize>,
    /// Wall-clock localisation latency, microseconds.
    pub rca_latency_us: u64,
    /// The pipeline version that produced this verdict. Detection and
    /// localisation of one trace always run under a single version.
    pub model_version: ModelVersion,
}

/// Per-batch admission summary returned by
/// [`ServeRuntime::submit_batch`], in spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitReport {
    /// Spans admitted to shard queues.
    pub enqueued: usize,
    /// Spans refused (queue full under [`ShedPolicy::Reject`]).
    pub rejected: usize,
    /// Spans dropped from queue fronts ([`ShedPolicy::DropOldest`]).
    pub shed: usize,
}

/// Everything the runtime hands back after a clean shutdown.
#[derive(Debug)]
pub struct ServeReport {
    /// Verdicts not yet retrieved via [`ServeRuntime::poll_verdicts`],
    /// in emission order.
    pub verdicts: Vec<Verdict>,
    /// All shard stores merged into one queryable store.
    pub store: TraceStore,
    /// Final metrics.
    pub metrics: MetricsSnapshot,
}

struct ShardHandle {
    queue: Arc<BoundedQueue<ShardMsg>>,
    join: JoinHandle<ShardReport>,
}

/// Sharded online RCA runtime. Create with [`ServeRuntime::start`],
/// feed with [`ServeRuntime::submit_batch`] + [`ServeRuntime::tick`],
/// hot-swap models with [`ServeRuntime::publish`], finish with
/// [`ServeRuntime::shutdown`].
pub struct ServeRuntime {
    shards: Vec<ShardHandle>,
    rca_queue: Arc<BoundedQueue<Arc<Trace>>>,
    rca_joins: Vec<JoinHandle<()>>,
    verdict_rx: mpsc::Receiver<Verdict>,
    metrics: Arc<MetricsRegistry>,
    registry: Arc<ModelRegistry>,
    refresh_queue: Option<Arc<BoundedQueue<Arc<Trace>>>>,
    refresh_join: Option<JoinHandle<()>>,
    shed_policy: ShedPolicy,
    num_shards: usize,
}

impl ServeRuntime {
    /// Spawn shard workers, the RCA stage, and (when configured) the
    /// baseline refresher around a fitted pipeline. The pipeline is
    /// published into the model registry as version 1.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `config` violates an invariant
    /// (see [`ServeConfig::validate`]); nothing is spawned.
    pub fn start(pipeline: Arc<SleuthPipeline>, config: ServeConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let metrics = Arc::new(MetricsRegistry::default());
        let registry = Arc::new(ModelRegistry::with_metrics(Arc::clone(&metrics)));
        registry.publish(Arc::clone(&pipeline));
        let rca_queue = Arc::new(BoundedQueue::new(config.rca_queue_capacity));
        let (verdict_tx, verdict_rx) = mpsc::channel();

        let (refresh_queue, refresh_join) = match config.refresh {
            Some(refresh) => {
                let queue = Arc::new(BoundedQueue::new(refresh.queue_capacity));
                let join = std::thread::Builder::new()
                    .name("sleuth-refresh".to_string())
                    .spawn({
                        let queue = Arc::clone(&queue);
                        let registry = Arc::clone(&registry);
                        let metrics = Arc::clone(&metrics);
                        let refresher =
                            BaselineRefresher::new(Arc::clone(&pipeline), refresh.min_op_samples);
                        move || {
                            run_refresher(
                                queue,
                                registry,
                                metrics,
                                refresher,
                                refresh.interval_traces,
                            )
                        }
                    })
                    .expect("spawn refresh worker");
                (Some(queue), Some(join))
            }
            None => (None, None),
        };

        let shards = (0..config.num_shards)
            .map(|i| {
                let queue = Arc::new(BoundedQueue::new(config.shard_queue_capacity));
                let join = std::thread::Builder::new()
                    .name(format!("sleuth-shard-{i}"))
                    .spawn({
                        let queue = Arc::clone(&queue);
                        let rca_queue = Arc::clone(&rca_queue);
                        let refresh_queue = refresh_queue.clone();
                        let metrics = Arc::clone(&metrics);
                        let config = config.clone();
                        move || run_shard(queue, rca_queue, refresh_queue, metrics, &config)
                    })
                    .expect("spawn shard worker");
                ShardHandle { queue, join }
            })
            .collect();

        // The queue is MPMC, so RCA workers share it directly: each
        // blocking-pops its next trace, giving dynamic load balancing
        // across workers with no extra routing layer.
        let rca_joins = (0..config.rca_workers)
            .map(|worker_id| {
                std::thread::Builder::new()
                    .name(format!("sleuth-rca-{worker_id}"))
                    .spawn({
                        let rca_queue = Arc::clone(&rca_queue);
                        let registry = Arc::clone(&registry);
                        let metrics = Arc::clone(&metrics);
                        let verdict_tx = verdict_tx.clone();
                        let policy = config.cluster_policy;
                        move || {
                            run_rca_stage(
                                worker_id, rca_queue, registry, verdict_tx, metrics, policy,
                            )
                        }
                    })
                    .expect("spawn rca worker")
            })
            .collect();
        drop(verdict_tx);

        Ok(ServeRuntime {
            shards,
            rca_queue,
            rca_joins,
            verdict_rx,
            metrics,
            registry,
            refresh_queue,
            refresh_join,
            shed_policy: config.shed_policy,
            num_shards: config.num_shards,
        })
    }

    /// Hash-shard a span batch by trace id and offer each sub-batch to
    /// its shard queue under the configured [`ShedPolicy`]. `now_us`
    /// is the logical observation time driving trace completion.
    pub fn submit_batch(&self, spans: Vec<Span>, now_us: u64) -> SubmitReport {
        self.metrics.spans_submitted.add(spans.len() as u64);
        let mut routed: Vec<Vec<Span>> = (0..self.num_shards).map(|_| Vec::new()).collect();
        for span in spans {
            routed[shard_of(span.trace_id, self.num_shards)].push(span);
        }

        let mut report = SubmitReport::default();
        for (shard, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let n = batch.len();
            let queue = &self.shards[shard].queue;
            self.metrics.queue_depth.record(queue.len() as u64);
            let msg = ShardMsg::Batch {
                spans: batch,
                now_us,
            };
            match self.shed_policy {
                ShedPolicy::Reject => match queue.try_push(msg) {
                    Ok(PushOutcome::Enqueued) => report.enqueued += n,
                    Ok(PushOutcome::Rejected) | Err(_) => report.rejected += n,
                },
                ShedPolicy::DropOldest => match queue.push_shedding(msg) {
                    Ok(shed) => {
                        report.enqueued += n;
                        report.shed += shed.map_or(0, |m| m.span_count());
                    }
                    Err(_) => report.rejected += n,
                },
            }
        }
        self.metrics.spans_enqueued.add(report.enqueued as u64);
        self.metrics.spans_rejected.add(report.rejected as u64);
        self.metrics.spans_shed.add(report.shed as u64);
        report
    }

    /// Advance the logical clock on every shard so idle traces can
    /// complete without new spans arriving.
    pub fn tick(&self, now_us: u64) {
        for shard in &self.shards {
            // Blocking: a tick must not be lost to a full queue, and a
            // full queue means the shard is behind anyway.
            let _ = shard.queue.push_wait(ShardMsg::Tick { now_us });
        }
    }

    /// Hot-swap the serving pipeline. Installs `pipeline` as the new
    /// current model — verdicts for traces analysed from now on carry
    /// the returned version — and blocks until all in-flight RCA work
    /// on older versions has drained, so when this returns no verdict
    /// is still being produced by a retired model.
    pub fn publish(&self, pipeline: Arc<SleuthPipeline>) -> ModelVersion {
        self.registry.publish(pipeline)
    }

    /// The model registry (shared with the RCA stage and refresher).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The currently served model version.
    pub fn current_version(&self) -> ModelVersion {
        self.registry
            .current_version()
            .expect("runtime always has a published model")
    }

    /// Verdicts emitted since the last call (non-blocking).
    pub fn poll_verdicts(&self) -> Vec<Verdict> {
        self.verdict_rx.try_iter().collect()
    }

    /// Live metrics handle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Drain protocol: flush every collector, join shard workers,
    /// retire the baseline refresher, drain the RCA queue, join the
    /// RCA stage, and return all verdicts plus the merged store and a
    /// final metrics snapshot.
    pub fn shutdown(self) -> ServeReport {
        for shard in &self.shards {
            let _ = shard.queue.push_wait(ShardMsg::Shutdown);
            shard.queue.close();
        }
        let mut store = TraceStore::new();
        for shard in self.shards {
            let report = shard.join.join().expect("shard worker panicked");
            store.merge(&report.store);
        }
        // Shards are done, so no more refresh tees: close the refresh
        // queue and let the refresher fold its backlog and exit. Any
        // final publish drains against the still-running RCA stage.
        if let Some(queue) = &self.refresh_queue {
            queue.close();
        }
        if let Some(join) = self.refresh_join {
            join.join().expect("refresh worker panicked");
        }
        // All shard output is now in the RCA queue; close it so the
        // workers exit after draining.
        self.rca_queue.close();
        for join in self.rca_joins {
            join.join().expect("rca worker panicked");
        }
        let verdicts = self.verdict_rx.try_iter().collect();
        ServeReport {
            verdicts,
            store,
            metrics: self.metrics.snapshot(),
        }
    }
}

/// One RCA worker: pull completed traces, detect anomalies, localise
/// with the registry's current pipeline, emit version-tagged verdicts.
/// `ServeConfig::rca_workers` of these run concurrently over the
/// shared MPMC queue; each records its latency into both the shared
/// `rca_latency_us` histogram and its own per-worker histogram.
///
/// Each worker leases the current model once per batch, *after* the
/// blocking pop — a lease is never held while idle, so a publish can
/// only ever wait for at most one in-flight batch per worker.
fn run_rca_stage(
    worker_id: usize,
    queue: Arc<BoundedQueue<Arc<Trace>>>,
    registry: Arc<ModelRegistry>,
    verdicts: mpsc::Sender<Verdict>,
    metrics: Arc<MetricsRegistry>,
    policy: ClusterPolicy,
) {
    let batch_max = match policy {
        ClusterPolicy::PerTrace => 1,
        ClusterPolicy::MicroBatch(n) => n,
    };
    let worker_latency = metrics.rca_worker_latency(worker_id);
    while let Some(first) = queue.pop() {
        // One lease per batch: detection and localisation of these
        // traces all run under a single model version.
        let Some(lease) = registry.lease() else {
            return; // Unreachable: start() publishes before spawning us.
        };
        let pipeline = lease.pipeline();
        let mut anomalous = Vec::new();
        let mut pending = Some(first);
        while anomalous.len() < batch_max {
            let trace = match pending.take().or_else(|| queue.try_pop()) {
                Some(t) => t,
                None => break,
            };
            if pipeline.detector().is_anomalous(&trace) {
                metrics.traces_anomalous.inc();
                anomalous.push(trace);
            }
        }
        if anomalous.is_empty() {
            continue;
        }
        let started = Instant::now();
        let options = match policy {
            ClusterPolicy::PerTrace => AnalyzeOptions::unclustered(),
            ClusterPolicy::MicroBatch(_) => AnalyzeOptions::clustered(),
        };
        let results = pipeline.analyze(&anomalous, options);
        let latency_us = started.elapsed().as_micros() as u64 / results.len().max(1) as u64;
        for r in results {
            metrics.rca_latency_us.record(latency_us);
            worker_latency.record(latency_us);
            metrics.verdicts_emitted.inc();
            metrics.record_verdict_version(lease.version());
            let verdict = Verdict {
                trace_id: anomalous[r.trace_idx].trace_id(),
                services: r.services,
                cluster: r.cluster,
                rca_latency_us: latency_us,
                model_version: lease.version(),
            };
            if verdicts.send(verdict).is_err() {
                return; // Runtime dropped the receiver; stop working.
            }
        }
    }
}
