//! The serving runtime: ingest front-end, shard workers, RCA stage,
//! model registry, background baseline refresh, supervision, and the
//! shutdown/drain protocol.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sleuth_core::{AnalyzeOptions, SleuthPipeline};
use sleuth_store::TraceStore;
use sleuth_trace::{Span, Trace, TraceId};

use crate::config::{ClusterPolicy, ConfigError, ServeConfig, ShedPolicy};
use crate::degrade::{DegradeController, VerdictPath};
use crate::inject::{FaultInjector, NoFaults};
use crate::metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
use crate::quarantine::{QuarantineReason, QuarantineStore, QuarantinedTrace};
use crate::queue::{BoundedQueue, PushOutcome};
use crate::refresh::{run_refresher, BaselineRefresher};
use crate::registry::{ModelRegistry, ModelVersion};
use crate::shard::{run_shard, shard_of, ShardCtx, ShardMsg, ShardReport};
use crate::sync::{lock_or_recover, Backoff};

pub use crate::degrade::BreakerState;

/// A root-cause finding for one anomalous trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The anomalous trace.
    pub trace_id: TraceId,
    /// Root-cause services, most suspicious first.
    pub services: Vec<String>,
    /// Cluster label when localised through a micro-batch cluster
    /// (`None` for per-trace localisation and cluster noise).
    pub cluster: Option<isize>,
    /// Wall-clock localisation latency, microseconds.
    pub rca_latency_us: u64,
    /// The pipeline version that produced this verdict. Detection and
    /// localisation of one trace always run under a single version.
    pub model_version: ModelVersion,
    /// `true` when the degradation ladder shed this verdict to the
    /// cheap path (anomaly ranking, no counterfactual prefix search).
    pub degraded: bool,
}

/// Per-batch admission summary returned by
/// [`ServeRuntime::submit_batch`], in spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitReport {
    /// Spans admitted to shard queues.
    pub enqueued: usize,
    /// Spans refused (queue full under [`ShedPolicy::Reject`]).
    pub rejected: usize,
    /// Spans dropped from queue fronts ([`ShedPolicy::DropOldest`]).
    pub shed: usize,
    /// Spans refused for an inverted interval (`end_us < start_us`) —
    /// they would corrupt duration math downstream.
    pub invalid: usize,
}

/// Everything the runtime hands back after a clean shutdown.
#[derive(Debug)]
pub struct ServeReport {
    /// Verdicts not yet retrieved via [`ServeRuntime::poll_verdicts`],
    /// in emission order.
    pub verdicts: Vec<Verdict>,
    /// All shard stores merged into one queryable store.
    pub store: TraceStore,
    /// Final metrics.
    pub metrics: MetricsSnapshot,
    /// Quarantined traces not yet retrieved via
    /// [`ServeRuntime::poll_quarantined`].
    pub quarantined: Vec<QuarantinedTrace>,
}

/// A completed trace queued for RCA, carrying its supervised retry
/// count.
#[derive(Debug, Clone)]
pub(crate) struct RcaItem {
    pub trace: Arc<Trace>,
    pub attempts: u32,
}

struct ShardHandle {
    queue: Arc<BoundedQueue<ShardMsg>>,
    join: JoinHandle<ShardReport>,
}

/// Sharded online RCA runtime. Create with [`ServeRuntime::start`],
/// feed with [`ServeRuntime::submit_batch`] + [`ServeRuntime::tick`],
/// hot-swap models with [`ServeRuntime::publish`], finish with
/// [`ServeRuntime::shutdown`].
pub struct ServeRuntime {
    shards: Vec<ShardHandle>,
    rca_queue: Arc<BoundedQueue<RcaItem>>,
    rca_joins: Vec<JoinHandle<()>>,
    verdict_rx: mpsc::Receiver<Verdict>,
    metrics: Arc<MetricsRegistry>,
    registry: Arc<ModelRegistry>,
    quarantine: Arc<QuarantineStore>,
    controller: Arc<DegradeController>,
    refresh_queue: Option<Arc<BoundedQueue<Arc<Trace>>>>,
    refresh_join: Option<JoinHandle<()>>,
    shed_policy: ShedPolicy,
    num_shards: usize,
}

impl ServeRuntime {
    /// Spawn shard workers, the RCA stage, and (when configured) the
    /// baseline refresher around a fitted pipeline. The pipeline is
    /// published into the model registry as version 1.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `config` violates an invariant
    /// (see [`ServeConfig::validate`]); nothing is spawned.
    pub fn start(pipeline: Arc<SleuthPipeline>, config: ServeConfig) -> Result<Self, ConfigError> {
        ServeRuntime::start_with_injector(pipeline, config, Arc::new(NoFaults))
    }

    /// [`ServeRuntime::start`] with a [`FaultInjector`] wired into
    /// every worker — the chaos-testing entry point (see
    /// `sleuth-chaos`). Production callers use [`ServeRuntime::start`],
    /// which installs the no-op injector.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `config` violates an invariant.
    pub fn start_with_injector(
        pipeline: Arc<SleuthPipeline>,
        config: ServeConfig,
        injector: Arc<dyn FaultInjector>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let metrics = Arc::new(MetricsRegistry::default());
        let registry = Arc::new(ModelRegistry::with_metrics(Arc::clone(&metrics)));
        registry.publish(Arc::clone(&pipeline));
        let quarantine = Arc::new(QuarantineStore::new(
            config.resilience.quarantine_capacity,
            Arc::clone(&metrics),
        ));
        let controller = Arc::new(DegradeController::new(&config, Arc::clone(&metrics)));
        let backoff = |resilience: &crate::config::ResilienceConfig| {
            Backoff::new(
                resilience.restart_backoff_base_us,
                resilience.restart_backoff_max_us,
            )
        };
        let rca_queue = Arc::new(
            BoundedQueue::new(config.rca_queue_capacity)
                .with_poison_counter(Arc::clone(&metrics.lock_poisoned)),
        );
        let (verdict_tx, verdict_rx) = mpsc::channel();

        let (refresh_queue, refresh_join) = match config.refresh {
            Some(refresh) => {
                let queue = Arc::new(
                    BoundedQueue::new(refresh.queue_capacity)
                        .with_poison_counter(Arc::clone(&metrics.lock_poisoned)),
                );
                let join = std::thread::Builder::new()
                    .name("sleuth-refresh".to_string())
                    .spawn({
                        let queue = Arc::clone(&queue);
                        let registry = Arc::clone(&registry);
                        let metrics = Arc::clone(&metrics);
                        let injector = Arc::clone(&injector);
                        let backoff = backoff(&config.resilience);
                        let refresher =
                            BaselineRefresher::new(Arc::clone(&pipeline), refresh.min_op_samples);
                        move || {
                            run_refresher(
                                queue,
                                registry,
                                metrics,
                                refresher,
                                refresh.interval_traces,
                                injector,
                                backoff,
                            )
                        }
                    })
                    .expect("spawn refresh worker");
                (Some(queue), Some(join))
            }
            None => (None, None),
        };

        let shards = (0..config.num_shards)
            .map(|i| {
                let queue = Arc::new(
                    BoundedQueue::new(config.shard_queue_capacity)
                        .with_poison_counter(Arc::clone(&metrics.lock_poisoned)),
                );
                let join = std::thread::Builder::new()
                    .name(format!("sleuth-shard-{i}"))
                    .spawn({
                        let ctx = ShardCtx {
                            shard_id: i,
                            queue: Arc::clone(&queue),
                            rca_queue: Arc::clone(&rca_queue),
                            refresh_queue: refresh_queue.clone(),
                            metrics: Arc::clone(&metrics),
                            quarantine: Arc::clone(&quarantine),
                            injector: Arc::clone(&injector),
                            backoff: backoff(&config.resilience),
                        };
                        let config = config.clone();
                        move || run_shard(ctx, &config)
                    })
                    .expect("spawn shard worker");
                ShardHandle { queue, join }
            })
            .collect();

        // The queue is MPMC, so RCA workers share it directly: each
        // blocking-pops its next trace, giving dynamic load balancing
        // across workers with no extra routing layer.
        let rca_joins = (0..config.rca_workers)
            .map(|worker_id| {
                std::thread::Builder::new()
                    .name(format!("sleuth-rca-{worker_id}"))
                    .spawn({
                        let ctx = RcaCtx {
                            worker_id,
                            queue: Arc::clone(&rca_queue),
                            registry: Arc::clone(&registry),
                            verdicts: verdict_tx.clone(),
                            metrics: Arc::clone(&metrics),
                            quarantine: Arc::clone(&quarantine),
                            controller: Arc::clone(&controller),
                            injector: Arc::clone(&injector),
                            policy: config.cluster_policy,
                            num_shards: config.num_shards,
                            max_attempts: config.resilience.max_rca_attempts,
                            backoff: backoff(&config.resilience),
                            in_flight: Mutex::new(Vec::new()),
                            retries: Mutex::new(VecDeque::new()),
                            worker_latency: metrics.rca_worker_latency(worker_id),
                        };
                        move || run_rca_stage(ctx)
                    })
                    .expect("spawn rca worker")
            })
            .collect();
        drop(verdict_tx);

        Ok(ServeRuntime {
            shards,
            rca_queue,
            rca_joins,
            verdict_rx,
            metrics,
            registry,
            quarantine,
            controller,
            refresh_queue,
            refresh_join,
            shed_policy: config.shed_policy,
            num_shards: config.num_shards,
        })
    }

    /// Hash-shard a span batch by trace id and offer each sub-batch to
    /// its shard queue under the configured [`ShedPolicy`]. `now_us`
    /// is the logical observation time driving trace completion.
    ///
    /// Spans with an inverted interval (`end_us < start_us`) are
    /// refused up front — counted in [`SubmitReport::invalid`] and the
    /// `spans_rejected{reason="inverted_interval"}` series — because
    /// duration math downstream assumes `end ≥ start`.
    pub fn submit_batch(&self, spans: Vec<Span>, now_us: u64) -> SubmitReport {
        self.metrics.spans_submitted.add(spans.len() as u64);
        let mut report = SubmitReport::default();
        let mut routed: Vec<Vec<Span>> = (0..self.num_shards).map(|_| Vec::new()).collect();
        for span in spans {
            if span.end_us < span.start_us {
                report.invalid += 1;
                continue;
            }
            routed[shard_of(span.trace_id, self.num_shards)].push(span);
        }

        for (shard, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let n = batch.len();
            let queue = &self.shards[shard].queue;
            self.metrics.queue_depth.record(queue.len() as u64);
            let msg = ShardMsg::Batch {
                spans: batch,
                now_us,
            };
            match self.shed_policy {
                ShedPolicy::Reject => match queue.try_push(msg) {
                    Ok(PushOutcome::Enqueued) => report.enqueued += n,
                    Ok(PushOutcome::Rejected) | Err(_) => report.rejected += n,
                },
                ShedPolicy::DropOldest => match queue.push_shedding(msg) {
                    Ok(shed) => {
                        report.enqueued += n;
                        report.shed += shed.map_or(0, |m| m.span_count());
                    }
                    Err(_) => report.rejected += n,
                },
            }
        }
        self.metrics.spans_enqueued.add(report.enqueued as u64);
        self.metrics
            .spans_rejected
            .add((report.rejected + report.invalid) as u64);
        self.metrics
            .record_rejected_reason("queue_full", report.rejected as u64);
        self.metrics
            .record_rejected_reason("inverted_interval", report.invalid as u64);
        self.metrics.spans_shed.add(report.shed as u64);
        report
    }

    /// Advance the logical clock on every shard so idle traces can
    /// complete without new spans arriving.
    pub fn tick(&self, now_us: u64) {
        for shard in &self.shards {
            // Blocking: a tick must not be lost to a full queue, and a
            // full queue means the shard is behind anyway.
            let _ = shard.queue.push_wait(ShardMsg::Tick { now_us });
        }
    }

    /// Hot-swap the serving pipeline. Installs `pipeline` as the new
    /// current model — verdicts for traces analysed from now on carry
    /// the returned version — and blocks until all in-flight RCA work
    /// on older versions has drained, so when this returns no verdict
    /// is still being produced by a retired model.
    pub fn publish(&self, pipeline: Arc<SleuthPipeline>) -> ModelVersion {
        self.registry.publish(pipeline)
    }

    /// The model registry (shared with the RCA stage and refresher).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The currently served model version.
    pub fn current_version(&self) -> ModelVersion {
        self.registry
            .current_version()
            .expect("runtime always has a published model")
    }

    /// Verdicts emitted since the last call (non-blocking).
    pub fn poll_verdicts(&self) -> Vec<Verdict> {
        self.verdict_rx.try_iter().collect()
    }

    /// Traces quarantined since the last call (non-blocking): spans
    /// that failed assembly, traces whose RCA panicked on every
    /// allowed attempt, and batches stranded by a shard panic.
    pub fn poll_quarantined(&self) -> Vec<QuarantinedTrace> {
        self.quarantine.drain()
    }

    /// Current circuit-breaker position (see [`BreakerState`]).
    pub fn breaker_state(&self) -> BreakerState {
        self.controller.breaker_state()
    }

    /// Live metrics handle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Drain protocol: flush every collector, join shard workers,
    /// retire the baseline refresher, drain the RCA queue, join the
    /// RCA stage, and return all verdicts plus the merged store, the
    /// undrained quarantine, and a final metrics snapshot.
    ///
    /// A worker that somehow died outside its supervision loop is
    /// counted (`worker_panics`) instead of propagating its panic into
    /// the caller — shutdown always completes.
    pub fn shutdown(self) -> ServeReport {
        for shard in &self.shards {
            let _ = shard.queue.push_wait(ShardMsg::Shutdown);
            shard.queue.close();
        }
        let mut store = TraceStore::new();
        for (i, shard) in self.shards.into_iter().enumerate() {
            match shard.join.join() {
                Ok(report) => store.merge(&report.store),
                // The shard died outside its supervision loop; its
                // store slice is lost but shutdown proceeds.
                Err(_) => self.metrics.record_worker_panic("shard", i),
            }
        }
        // Shards are done, so no more refresh tees: close the refresh
        // queue and let the refresher fold its backlog and exit. Any
        // final publish drains against the still-running RCA stage.
        if let Some(queue) = &self.refresh_queue {
            queue.close();
        }
        if let Some(join) = self.refresh_join {
            if join.join().is_err() {
                self.metrics.record_worker_panic("refresh", 0);
            }
        }
        // All shard output is now in the RCA queue; close it so the
        // workers exit after draining.
        self.rca_queue.close();
        for (i, join) in self.rca_joins.into_iter().enumerate() {
            if join.join().is_err() {
                self.metrics.record_worker_panic("rca", i);
            }
        }
        let verdicts = self.verdict_rx.try_iter().collect();
        let quarantined = self.quarantine.drain();
        ServeReport {
            verdicts,
            store,
            metrics: self.metrics.snapshot(),
            quarantined,
        }
    }
}

/// Everything one RCA worker needs, bundled so the supervised loop has
/// a single capture.
struct RcaCtx {
    worker_id: usize,
    queue: Arc<BoundedQueue<RcaItem>>,
    registry: Arc<ModelRegistry>,
    verdicts: mpsc::Sender<Verdict>,
    metrics: Arc<MetricsRegistry>,
    quarantine: Arc<QuarantineStore>,
    controller: Arc<DegradeController>,
    injector: Arc<dyn FaultInjector>,
    policy: ClusterPolicy,
    /// Shard count, for recomputing a poison trace's owning shard
    /// (`shard_of`) when it is quarantined from the RCA stage.
    num_shards: usize,
    max_attempts: u32,
    backoff: Backoff,
    /// Items admitted to the current batch; on a panic the supervisor
    /// drains this to retry or quarantine them, so no popped trace is
    /// ever silently lost.
    in_flight: Mutex<Vec<RcaItem>>,
    /// Retries this worker keeps local when the shared queue cannot
    /// take them back (full, or already closed for shutdown) — the
    /// attempt budget is honoured even during the final drain.
    retries: Mutex<VecDeque<RcaItem>>,
    worker_latency: Arc<Histogram>,
}

impl RcaCtx {
    fn stash(&self) -> std::sync::MutexGuard<'_, Vec<RcaItem>> {
        lock_or_recover(&self.in_flight, Some(&self.metrics.lock_poisoned))
    }

    fn retries(&self) -> std::sync::MutexGuard<'_, VecDeque<RcaItem>> {
        lock_or_recover(&self.retries, Some(&self.metrics.lock_poisoned))
    }

    /// Re-queue a stranded item for another attempt, or quarantine it
    /// once its attempt budget is spent. The shared queue is preferred
    /// (any worker may serve the retry); when it refuses — full, or
    /// closed for shutdown — the retry stays local to this worker.
    fn retry_or_quarantine(&self, mut item: RcaItem) {
        item.attempts += 1;
        if item.attempts < self.max_attempts {
            match self.queue.try_push(item) {
                Ok(_) => return,
                Err(returned) => {
                    self.retries().push_back(returned);
                    return;
                }
            }
        }
        self.quarantine.put(QuarantinedTrace {
            trace_id: Some(item.trace.trace_id()),
            span_count: item.trace.len(),
            reason: QuarantineReason::RcaPanic {
                worker: self.worker_id,
                attempts: item.attempts,
            },
            origin_shard: Some(shard_of(item.trace.trace_id(), self.num_shards)),
            trace: Some(item.trace),
        });
    }
}

/// One supervised RCA worker: run [`rca_loop`] until it exits cleanly;
/// on a panic, count it, retry-or-quarantine the in-flight batch,
/// inform the circuit breaker, back off, and restart the loop.
fn run_rca_stage(ctx: RcaCtx) {
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| rca_loop(&ctx)));
        match result {
            Ok(()) => return,
            Err(_) => {
                ctx.metrics.record_worker_panic("rca", ctx.worker_id);
                ctx.controller.record_error();
                let stranded: Vec<RcaItem> = ctx.stash().drain(..).collect();
                for item in stranded {
                    ctx.retry_or_quarantine(item);
                }
                ctx.backoff.sleep_and_advance();
                ctx.metrics.record_worker_restart("rca", ctx.worker_id);
            }
        }
    }
}

/// The RCA work loop: pull completed traces, detect anomalies, pick a
/// verdict path from the degradation ladder, localise, emit
/// version-tagged verdicts. `ServeConfig::rca_workers` of these run
/// concurrently over the shared MPMC queue; each records its latency
/// into both the shared `rca_latency_us` histogram and its own
/// per-worker histogram.
///
/// Each worker leases the current model once per batch, *after* the
/// blocking pop — a lease is never held while idle, so a publish can
/// only ever wait for at most one in-flight batch per worker.
/// This worker's next item: local retries first, then the shared
/// queue. After the queue closes and drains, retries stranded by a
/// panic during the final drain are still served before exiting.
fn next_item(ctx: &RcaCtx) -> Option<RcaItem> {
    if let Some(item) = ctx.retries().pop_front() {
        return Some(item);
    }
    ctx.queue.pop().or_else(|| ctx.retries().pop_front())
}

fn rca_loop(ctx: &RcaCtx) {
    let batch_max = match ctx.policy {
        ClusterPolicy::PerTrace => 1,
        ClusterPolicy::MicroBatch(n) => n,
    };
    while let Some(first) = next_item(ctx) {
        // One lease per batch: detection and localisation of these
        // traces all run under a single model version.
        let Some(lease) = ctx.registry.lease() else {
            return; // Unreachable: start() publishes before spawning us.
        };
        let pipeline = lease.pipeline();
        let mut anomalous: Vec<Arc<Trace>> = Vec::new();
        let mut pending = Some(first);
        while anomalous.len() < batch_max {
            let item = match pending.take().or_else(|| ctx.queue.try_pop()) {
                Some(item) => item,
                None => break,
            };
            let trace = Arc::clone(&item.trace);
            let attempt = item.attempts;
            // Stash before touching the trace: if the injector or the
            // detector panics, the supervisor retries or quarantines
            // this item instead of losing it.
            ctx.stash().push(item);
            ctx.injector.rca_attempt(ctx.worker_id, &trace, attempt);
            if pipeline.detector().is_anomalous(&trace) {
                ctx.metrics.traces_anomalous.inc();
                anomalous.push(trace);
            } else {
                ctx.stash().pop();
            }
        }
        if anomalous.is_empty() {
            continue;
        }

        match ctx.controller.plan(ctx.queue.len()) {
            VerdictPath::Full { probe: _ } => {
                let started = Instant::now();
                let options = match ctx.policy {
                    ClusterPolicy::PerTrace => AnalyzeOptions::unclustered(),
                    ClusterPolicy::MicroBatch(_) => AnalyzeOptions::clustered(),
                };
                let results = pipeline.analyze(&anomalous, options);
                let latency_us = started.elapsed().as_micros() as u64 / results.len().max(1) as u64;
                ctx.controller.record_success(latency_us);
                for r in results {
                    ctx.metrics.rca_latency_us.record(latency_us);
                    ctx.worker_latency.record(latency_us);
                    ctx.metrics.verdicts_emitted.inc();
                    ctx.metrics.record_verdict_version(lease.version());
                    let verdict = Verdict {
                        trace_id: anomalous[r.trace_idx].trace_id(),
                        services: r.services,
                        cluster: r.cluster,
                        rca_latency_us: latency_us,
                        model_version: lease.version(),
                        degraded: false,
                    };
                    if ctx.verdicts.send(verdict).is_err() {
                        // Runtime dropped the receiver; stop working.
                        ctx.stash().clear();
                        return;
                    }
                }
            }
            VerdictPath::Degraded(reason) => {
                // Cheap path: the detector's anomaly ranking, no
                // counterfactual prefix search — bounded latency even
                // when the full localiser is the thing that's sick.
                let rca = pipeline.rca();
                for trace in &anomalous {
                    let started = Instant::now();
                    let mut services = rca.rank_candidates(trace);
                    services.truncate(rca.max_candidates);
                    let latency_us = started.elapsed().as_micros() as u64;
                    ctx.metrics.rca_latency_us.record(latency_us);
                    ctx.worker_latency.record(latency_us);
                    ctx.metrics.verdicts_emitted.inc();
                    ctx.metrics.verdicts_degraded.inc();
                    ctx.metrics.record_degraded(reason.label());
                    ctx.metrics.record_verdict_version(lease.version());
                    let verdict = Verdict {
                        trace_id: trace.trace_id(),
                        services,
                        cluster: None,
                        rca_latency_us: latency_us,
                        model_version: lease.version(),
                        degraded: true,
                    };
                    if ctx.verdicts.send(verdict).is_err() {
                        ctx.stash().clear();
                        return;
                    }
                }
            }
        }
        ctx.stash().clear();
        ctx.backoff.reset();
    }
}
