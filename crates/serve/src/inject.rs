//! Fault-injection seam for chaos testing.
//!
//! The runtime calls these hooks at the exact points where production
//! failures bite: right before a shard processes a message, right
//! before an RCA attempt, right before a refresh fold, and when a
//! shard reads its logical clock. In production the hooks are the
//! no-op [`NoFaults`] (start via [`crate::ServeRuntime::start`]);
//! `sleuth-chaos` implements the trait with a seeded deterministic
//! plan and starts the runtime via
//! [`crate::ServeRuntime::start_with_injector`]. A hook that panics
//! simulates a worker crash — the supervision layer must contain it.

use sleuth_trace::Trace;

/// Hooks invoked from inside the serving workers. Every method has a
/// no-op default so implementors override only the faults they model.
pub trait FaultInjector: Send + Sync {
    /// About to run RCA (full or degraded) on `trace`; `attempt` is 0
    /// for the first try and increments on supervised retries.
    /// Panicking here simulates a pipeline crash on this trace.
    fn rca_attempt(&self, worker: usize, trace: &Trace, attempt: u32) {
        let _ = (worker, trace, attempt);
    }

    /// A shard worker is about to process a message carrying
    /// `span_count` spans (0 for ticks/shutdown). Panicking simulates
    /// a shard crash; sleeping simulates a queue stall.
    fn shard_message(&self, shard: usize, span_count: usize) {
        let _ = (shard, span_count);
    }

    /// The baseline refresher is about to fold `trace`.
    fn refresh_fold(&self, trace: &Trace) {
        let _ = trace;
    }

    /// Signed skew applied to the logical clock a shard observes,
    /// simulating a host whose timestamps drift.
    fn clock_skew_us(&self, shard: usize) -> i64 {
        let _ = shard;
        0
    }
}

/// The production injector: no faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_inert() {
        let injector = NoFaults;
        injector.shard_message(0, 10);
        assert_eq!(injector.clock_skew_us(3), 0);
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NoFaults>();
    }
}
