//! Bounded MPMC queue with explicit backpressure.
//!
//! `std::sync::mpsc::sync_channel` blocks or errors when full but can
//! neither shed the *oldest* pending item nor report its depth, both
//! of which the serving runtime needs. This queue is a plain
//! `Mutex<VecDeque>` + condvars exposing exactly the three admission
//! modes the runtime uses: reject-newest ([`BoundedQueue::try_push`]),
//! drop-oldest ([`BoundedQueue::push_shedding`]), and blocking
//! ([`BoundedQueue::push_wait`], reserved for control messages that
//! must not be lost).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::metrics::Counter;
use crate::sync::{lock_or_recover, wait_or_recover};

/// Outcome of a non-blocking push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Item admitted.
    Enqueued,
    /// Queue full; item returned to the caller.
    Rejected,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity FIFO shared between producer and consumer threads.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    poisoned: Option<Arc<Counter>>,
}

impl<T> BoundedQueue<T> {
    /// Queue admitting at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            poisoned: None,
        }
    }

    /// Report lock-poisoning recoveries (a producer or consumer
    /// panicking inside a queue operation) to `counter`.
    pub fn with_poison_counter(mut self, counter: Arc<Counter>) -> Self {
        self.poisoned = Some(counter);
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        lock_or_recover(&self.inner, self.poisoned.as_deref())
    }

    /// Admit `item` unless the queue is full or closed; on failure the
    /// item is handed back.
    pub fn try_push(&self, item: T) -> Result<PushOutcome, T> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(PushOutcome::Enqueued)
    }

    /// Admit `item`, dropping the *oldest* pending item when full.
    /// Returns the shed item, if any; `Err` when closed.
    pub fn push_shedding(&self, item: T) -> Result<Option<T>, T> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(item);
        }
        let shed = if inner.items.len() >= self.capacity {
            inner.items.pop_front()
        } else {
            None
        };
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(shed)
    }

    /// Block until there is room (or the queue closes). Used for
    /// control messages and for propagating backpressure upstream.
    pub fn push_wait(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        while !inner.closed && inner.items.len() >= self.capacity {
            inner = wait_or_recover(&self.not_full, inner, self.poisoned.as_deref());
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available; `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = wait_or_recover(&self.not_empty, inner, self.poisoned.as_deref());
        }
    }

    /// Pop without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.lock();
        let item = inner.items.pop_front();
        if item.is_some() {
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop admitting items; consumers drain what remains, then
    /// [`BoundedQueue::pop`] returns `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_rejects_when_full() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(PushOutcome::Enqueued));
        assert_eq!(q.try_push(2), Ok(PushOutcome::Enqueued));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_shedding_drops_oldest() {
        let q = BoundedQueue::new(2);
        q.push_shedding(1).unwrap();
        q.push_shedding(2).unwrap();
        assert_eq!(q.push_shedding(3).unwrap(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(9), Err(9));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_is_idempotent() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        q.close(); // double shutdown must be a no-op
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.push_shedding(2), Err(2));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        q.push_wait(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn queue_survives_a_poisoning_panic() {
        let counter = Arc::new(Counter::default());
        let q = Arc::new(BoundedQueue::new(4).with_poison_counter(Arc::clone(&counter)));
        q.try_push(1).unwrap();
        // Poison the queue's mutex by panicking while holding it.
        let q2 = Arc::clone(&q);
        let poisoner = std::thread::spawn(move || {
            let _guard = q2.inner.lock().unwrap();
            panic!("poison the queue lock");
        });
        assert!(poisoner.join().is_err());
        // Every operation still works, and the recovery was counted.
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        q.close();
        assert_eq!(q.pop(), None);
        assert!(counter.get() >= 1);
    }

    #[test]
    fn push_wait_blocks_until_room() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_wait(2));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }
}
