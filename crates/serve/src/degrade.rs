//! Graceful degradation: deadlines, queue high-water, and a circuit
//! breaker.
//!
//! The degradation ladder has three rungs, checked in order before
//! each RCA batch:
//!
//! 1. **Circuit breaker** — `breaker_threshold` *consecutive*
//!    pipeline crashes trip it open; while open every verdict takes
//!    the cheap path for `breaker_cooldown` batches, then one
//!    half-open probe runs the full path and either closes the
//!    breaker (success) or re-trips it (another crash).
//! 2. **Queue high-water** — when the completed-trace queue depth is
//!    at or above `rca_queue_high_water`, verdicts take the cheap
//!    path until the backlog drains below the mark.
//! 3. **Deadline** — when a full RCA exceeds `rca_deadline_us` per
//!    trace, degradation latches; every `breaker_cooldown` degraded
//!    batches one full-path probe re-measures, and a probe under the
//!    deadline unlatches.
//!
//! The cheap path is the detector's anomaly ranking without the
//! counterfactual prefix search — still a verdict, flagged
//! [`crate::Verdict::degraded`], roughly the "fast localisation" tier
//! the paper falls back to when interactive budgets are tight.

use std::sync::{Arc, Mutex};

use crate::config::ServeConfig;
use crate::metrics::MetricsRegistry;
use crate::sync::lock_or_recover;

/// Circuit-breaker position (see module docs for transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; full-path verdicts.
    Closed,
    /// Tripped; degraded verdicts while the cooldown runs down.
    Open,
    /// Cooldown elapsed; the next batch is a full-path probe.
    HalfOpen,
}

/// Why a batch was degraded — the `reason` label on
/// `sleuth_serve_degraded_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The circuit breaker is open.
    BreakerOpen,
    /// The completed-trace queue crossed its high-water mark.
    QueueHighWater,
    /// A previous full RCA exceeded its deadline.
    DeadlineExceeded,
}

impl DegradeReason {
    /// Stable metric label.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeReason::BreakerOpen => "breaker_open",
            DegradeReason::QueueHighWater => "queue_high_water",
            DegradeReason::DeadlineExceeded => "deadline",
        }
    }
}

/// The path the next RCA batch should take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VerdictPath {
    /// Run the full counterfactual localisation. `probe` marks a
    /// half-open breaker probe or a deadline re-measure.
    Full { probe: bool },
    /// Run the cheap anomaly-ranking path.
    Degraded(DegradeReason),
}

struct Inner {
    breaker: BreakerState,
    consecutive_errors: usize,
    cooldown_left: usize,
    deadline_latched: bool,
    degraded_since_probe: usize,
}

/// Shared decision point for the degradation ladder. One per runtime,
/// consulted by every RCA worker before each batch.
pub(crate) struct DegradeController {
    deadline_us: Option<u64>,
    high_water: Option<usize>,
    threshold: usize,
    cooldown: usize,
    inner: Mutex<Inner>,
    metrics: Arc<MetricsRegistry>,
}

impl DegradeController {
    pub fn new(config: &ServeConfig, metrics: Arc<MetricsRegistry>) -> Self {
        DegradeController {
            deadline_us: config.rca_deadline_us,
            high_water: config.rca_queue_high_water,
            threshold: config.resilience.breaker_threshold,
            cooldown: config.resilience.breaker_cooldown,
            inner: Mutex::new(Inner {
                breaker: BreakerState::Closed,
                consecutive_errors: 0,
                cooldown_left: 0,
                deadline_latched: false,
                degraded_since_probe: 0,
            }),
            metrics,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        lock_or_recover(&self.inner, Some(&self.metrics.lock_poisoned))
    }

    /// Decide the path for the next batch given the current RCA queue
    /// depth. Advances the breaker cooldown and the deadline probe
    /// schedule, so call exactly once per batch.
    pub fn plan(&self, queue_depth: usize) -> VerdictPath {
        let mut inner = self.lock();
        match inner.breaker {
            BreakerState::Open => {
                if inner.cooldown_left > 0 {
                    inner.cooldown_left -= 1;
                    return VerdictPath::Degraded(DegradeReason::BreakerOpen);
                }
                inner.breaker = BreakerState::HalfOpen;
                VerdictPath::Full { probe: true }
            }
            BreakerState::HalfOpen => VerdictPath::Full { probe: true },
            BreakerState::Closed => {
                if self.high_water.is_some_and(|hw| queue_depth >= hw) {
                    return VerdictPath::Degraded(DegradeReason::QueueHighWater);
                }
                if inner.deadline_latched {
                    inner.degraded_since_probe += 1;
                    if inner.degraded_since_probe >= self.cooldown {
                        inner.degraded_since_probe = 0;
                        return VerdictPath::Full { probe: true };
                    }
                    return VerdictPath::Degraded(DegradeReason::DeadlineExceeded);
                }
                VerdictPath::Full { probe: false }
            }
        }
    }

    /// A full-path batch finished at `latency_us` per trace. Resets
    /// the error streak, closes a probing breaker, and latches or
    /// clears deadline degradation.
    pub fn record_success(&self, latency_us: u64) {
        let mut inner = self.lock();
        inner.consecutive_errors = 0;
        if inner.breaker == BreakerState::HalfOpen {
            inner.breaker = BreakerState::Closed;
        }
        if let Some(deadline) = self.deadline_us {
            let over = latency_us > deadline;
            if over && !inner.deadline_latched {
                inner.deadline_latched = true;
                inner.degraded_since_probe = 0;
            } else if !over {
                inner.deadline_latched = false;
            }
        }
    }

    /// A full-path batch crashed. A half-open probe re-trips
    /// immediately; otherwise `threshold` consecutive crashes trip
    /// the breaker.
    pub fn record_error(&self) {
        let mut inner = self.lock();
        match inner.breaker {
            BreakerState::Open => {}
            BreakerState::HalfOpen => self.trip(&mut inner),
            BreakerState::Closed => {
                inner.consecutive_errors += 1;
                if inner.consecutive_errors >= self.threshold {
                    self.trip(&mut inner);
                }
            }
        }
    }

    fn trip(&self, inner: &mut Inner) {
        inner.breaker = BreakerState::Open;
        inner.cooldown_left = self.cooldown;
        inner.consecutive_errors = 0;
        self.metrics.breaker_trips.inc();
    }

    /// Current breaker position.
    pub fn breaker_state(&self) -> BreakerState {
        self.lock().breaker
    }
}

impl std::fmt::Debug for DegradeController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegradeController")
            .field("breaker", &self.breaker_state())
            .field("deadline_us", &self.deadline_us)
            .field("high_water", &self.high_water)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResilienceConfig;

    fn controller(config: ServeConfig) -> DegradeController {
        DegradeController::new(&config, Arc::new(MetricsRegistry::default()))
    }

    #[test]
    fn healthy_controller_always_plans_full() {
        let c = controller(ServeConfig::default());
        for depth in [0, 10, 1_000_000] {
            assert_eq!(c.plan(depth), VerdictPath::Full { probe: false });
            c.record_success(5);
        }
        assert_eq!(c.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_trips_after_threshold_then_probes_and_closes() {
        let config = ServeConfig {
            resilience: ResilienceConfig {
                breaker_threshold: 2,
                breaker_cooldown: 2,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let c = controller(config);
        c.record_error();
        assert_eq!(c.breaker_state(), BreakerState::Closed);
        c.record_error();
        assert_eq!(c.breaker_state(), BreakerState::Open);
        // Cooldown: two degraded batches, then a probe.
        assert_eq!(c.plan(0), VerdictPath::Degraded(DegradeReason::BreakerOpen));
        assert_eq!(c.plan(0), VerdictPath::Degraded(DegradeReason::BreakerOpen));
        assert_eq!(c.plan(0), VerdictPath::Full { probe: true });
        assert_eq!(c.breaker_state(), BreakerState::HalfOpen);
        c.record_success(5);
        assert_eq!(c.breaker_state(), BreakerState::Closed);
        assert_eq!(c.plan(0), VerdictPath::Full { probe: false });
    }

    #[test]
    fn failed_probe_retrips_immediately() {
        let config = ServeConfig {
            resilience: ResilienceConfig {
                breaker_threshold: 1,
                breaker_cooldown: 1,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let c = controller(config);
        c.record_error();
        assert_eq!(c.plan(0), VerdictPath::Degraded(DegradeReason::BreakerOpen));
        assert_eq!(c.plan(0), VerdictPath::Full { probe: true });
        c.record_error(); // probe crashed
        assert_eq!(c.breaker_state(), BreakerState::Open);
    }

    #[test]
    fn high_water_degrades_until_backlog_drains() {
        let config = ServeConfig {
            rca_queue_high_water: Some(8),
            ..ServeConfig::default()
        };
        let c = controller(config);
        assert_eq!(
            c.plan(8),
            VerdictPath::Degraded(DegradeReason::QueueHighWater)
        );
        assert_eq!(c.plan(7), VerdictPath::Full { probe: false });
    }

    #[test]
    fn deadline_latches_then_probe_unlatches() {
        let config = ServeConfig {
            rca_deadline_us: Some(100),
            resilience: ResilienceConfig {
                breaker_cooldown: 2,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let c = controller(config);
        assert_eq!(c.plan(0), VerdictPath::Full { probe: false });
        c.record_success(500); // over deadline -> latch
        assert_eq!(
            c.plan(0),
            VerdictPath::Degraded(DegradeReason::DeadlineExceeded)
        );
        // Second degraded batch reaches the probe cadence.
        assert_eq!(c.plan(0), VerdictPath::Full { probe: true });
        c.record_success(50); // probe under deadline -> unlatch
        assert_eq!(c.plan(0), VerdictPath::Full { probe: false });
    }

    #[test]
    fn degrade_reason_labels_are_stable() {
        assert_eq!(DegradeReason::BreakerOpen.label(), "breaker_open");
        assert_eq!(DegradeReason::QueueHighWater.label(), "queue_high_water");
        assert_eq!(DegradeReason::DeadlineExceeded.label(), "deadline");
    }
}
