//! Shard routing and the per-shard worker loop.
//!
//! Every span batch is split by trace id so that all spans of one
//! trace land on the same shard; each shard owns a private
//! [`Collector`] and [`TraceStore`] slice and therefore needs no
//! locking on the hot ingest path. Completed traces flow into the
//! shared RCA queue with a *blocking* push: a saturated RCA stage
//! stalls shard workers, their queues fill, and the ingest front-end
//! starts rejecting or shedding — backpressure end to end.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sleuth_store::{Collector, TraceStore};
use sleuth_trace::{Assembler, Span, Trace, TraceId};

use crate::config::ServeConfig;
use crate::inject::FaultInjector;
use crate::metrics::MetricsRegistry;
use crate::quarantine::{QuarantineReason, QuarantineStore, QuarantinedTrace};
use crate::queue::BoundedQueue;
use crate::runtime::RcaItem;
use crate::sync::Backoff;

/// SplitMix64 finaliser — decorrelates sequential trace ids so shard
/// load stays even under monotonic id allocation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard a trace id routes to. Pure function of `(trace_id,
/// num_shards)` — stable across runs, processes, and machines.
pub fn shard_of(trace_id: TraceId, num_shards: usize) -> usize {
    assert!(num_shards > 0, "num_shards must be positive");
    (splitmix64(trace_id) % num_shards as u64) as usize
}

/// Message consumed by a shard worker.
#[derive(Debug)]
pub enum ShardMsg {
    /// Spans pre-routed to this shard, observed at logical `now_us`.
    Batch { spans: Vec<Span>, now_us: u64 },
    /// Advance the logical clock so idle traces can complete.
    Tick { now_us: u64 },
    /// Flush the collector, report state, and exit.
    Shutdown,
}

impl ShardMsg {
    /// Spans carried by this message (for shed accounting).
    pub fn span_count(&self) -> usize {
        match self {
            ShardMsg::Batch { spans, .. } => spans.len(),
            _ => 0,
        }
    }
}

/// What a shard worker hands back at shutdown.
#[derive(Debug)]
pub struct ShardReport {
    /// The shard's slice of stored spans.
    pub store: TraceStore,
    /// Traces dropped by collector cap eviction.
    pub evicted_traces: usize,
}

/// Everything one shard worker needs, bundled so the supervised loop
/// has a single capture.
pub(crate) struct ShardCtx {
    pub shard_id: usize,
    pub queue: Arc<BoundedQueue<ShardMsg>>,
    pub rca_queue: Arc<BoundedQueue<RcaItem>>,
    pub refresh_queue: Option<Arc<BoundedQueue<Arc<Trace>>>>,
    pub metrics: Arc<MetricsRegistry>,
    pub quarantine: Arc<QuarantineStore>,
    pub injector: Arc<dyn FaultInjector>,
    pub backoff: Backoff,
}

/// State that must survive a worker panic: the collector and store
/// (unfinished traces, the shard's span slice), metric watermarks,
/// and the message in flight when the panic hit.
struct ShardState {
    collector: Collector,
    /// Reusable trace assembler: its adjacency/BFS scratch arrays stay
    /// warm across every trace this shard completes.
    assembler: Assembler,
    store: TraceStore,
    evicted_seen: usize,
    deduped_seen: usize,
    in_flight: Option<ShardMsg>,
    resume_shutdown: bool,
}

/// Logical clock as this shard observes it, under injected skew.
fn apply_skew(now_us: u64, skew_us: i64) -> u64 {
    if skew_us >= 0 {
        now_us.saturating_add(skew_us as u64)
    } else {
        now_us.saturating_sub(skew_us.unsigned_abs())
    }
}

/// Run one shard worker to completion (until `Shutdown` or queue
/// close). Completed traces are stored locally and pushed to
/// `rca_queue` behind an `Arc`; when a `refresh_queue` is given, the
/// same `Arc` is also teed to the baseline refresher with a
/// *drop-oldest* push — no deep copy of the trace is ever made, and a
/// lagging refresher sheds stale handles instead of ever
/// backpressuring ingest.
///
/// Supervised: a panic while processing a message is caught and
/// counted (`worker_panics{stage="shard"}`); the batch in flight is
/// quarantined (its spans counted in `spans_quarantined` — they never
/// reached the collector) and the loop restarts after a bounded
/// backoff, keeping the collector and store intact. A panic during a
/// `Shutdown` flush re-runs the flush so the drain protocol still
/// completes. Completed span sets that fail [`Trace::assemble`] are
/// quarantined with the assembly error instead of being silently
/// counted.
pub(crate) fn run_shard(ctx: ShardCtx, config: &ServeConfig) -> ShardReport {
    let mut state = ShardState {
        collector: Collector::new(config.idle_timeout_us).with_caps(config.collector_caps),
        assembler: Assembler::new(),
        store: TraceStore::new(),
        evicted_seen: 0,
        deduped_seen: 0,
        in_flight: None,
        resume_shutdown: false,
    };
    let skew_us = ctx.injector.clock_skew_us(ctx.shard_id);
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| shard_loop(&ctx, &mut state, skew_us)));
        match result {
            Ok(()) => break,
            Err(_) => {
                ctx.metrics.record_worker_panic("shard", ctx.shard_id);
                match state.in_flight.take() {
                    Some(ShardMsg::Batch { spans, .. }) => {
                        // These spans never reached the collector;
                        // park them so conservation still balances.
                        ctx.metrics.spans_quarantined.add(spans.len() as u64);
                        ctx.quarantine.put(QuarantinedTrace {
                            trace_id: spans.first().map(|s| s.trace_id),
                            span_count: spans.len(),
                            reason: QuarantineReason::ShardPanic {
                                shard: ctx.shard_id,
                            },
                            origin_shard: Some(ctx.shard_id),
                            trace: None,
                        });
                    }
                    Some(ShardMsg::Shutdown) => state.resume_shutdown = true,
                    Some(ShardMsg::Tick { .. }) | None => {}
                }
                ctx.backoff.sleep_and_advance();
                ctx.metrics.record_worker_restart("shard", ctx.shard_id);
            }
        }
    }
    ShardReport {
        store: state.store,
        evicted_traces: state.collector.evicted_traces(),
    }
}

fn shard_loop(ctx: &ShardCtx, state: &mut ShardState, skew_us: i64) {
    loop {
        let msg = if state.resume_shutdown {
            state.resume_shutdown = false;
            ShardMsg::Shutdown
        } else {
            match ctx.queue.pop() {
                Some(msg) => msg,
                None => return,
            }
        };
        // Stash before the injector hook so a simulated crash right
        // here still quarantines the batch instead of dropping it.
        let span_count = msg.span_count();
        state.in_flight = Some(msg);
        ctx.injector.shard_message(ctx.shard_id, span_count);
        let Some(msg) = state.in_flight.take() else {
            continue;
        };

        let shutdown = matches!(msg, ShardMsg::Shutdown);
        let completed = match msg {
            ShardMsg::Batch { spans, now_us } => {
                let now_us = apply_skew(now_us, skew_us);
                state.collector.ingest_batch(spans, now_us);
                state.collector.poll_complete(now_us)
            }
            ShardMsg::Tick { now_us } => state.collector.poll_complete(apply_skew(now_us, skew_us)),
            ShardMsg::Shutdown => state.collector.flush(),
        };

        let newly_evicted = state.collector.evicted_spans() - state.evicted_seen;
        if newly_evicted > 0 {
            ctx.metrics.spans_evicted.add(newly_evicted as u64);
            state.evicted_seen = state.collector.evicted_spans();
        }
        let newly_deduped = state.collector.deduped_spans() - state.deduped_seen;
        if newly_deduped > 0 {
            ctx.metrics.spans_deduped.add(newly_deduped as u64);
            state.deduped_seen = state.collector.deduped_spans();
        }

        for spans in completed {
            let trace_id = spans.first().map(|s| s.trace_id);
            let span_count = spans.len();
            ctx.metrics.spans_stored.add(span_count as u64);
            state.store.extend(spans.clone());
            match state.assembler.assemble(spans) {
                Ok(trace) => {
                    ctx.metrics.traces_completed.inc();
                    let trace = Arc::new(trace);
                    if let Some(refresh) = &ctx.refresh_queue {
                        // Err means the queue closed (refresher already
                        // retired); the drop-oldest handle is counted shed.
                        if let Ok(Some(_)) = refresh.push_shedding(Arc::clone(&trace)) {
                            ctx.metrics.refresh_traces_shed.inc();
                        }
                    }
                    // Err only when the RCA queue is already closed
                    // (teardown); the trace is still stored.
                    let _ = ctx.rca_queue.push_wait(RcaItem { trace, attempts: 0 });
                }
                Err(err) => {
                    // Spans are already stored above, so no
                    // conservation term — but the operator can now see
                    // *why* the trace never got a verdict.
                    ctx.metrics.traces_malformed.inc();
                    ctx.quarantine.put(QuarantinedTrace {
                        trace_id,
                        span_count,
                        reason: QuarantineReason::Assembly(err.to_string()),
                        origin_shard: Some(ctx.shard_id),
                        trace: None,
                    });
                }
            }
        }

        if shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for id in 0..500u64 {
            let s = shard_of(id, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(id, 4));
        }
    }

    #[test]
    fn routing_spreads_sequential_ids() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for id in 0..8000u64 {
            counts[shard_of(id, n)] += 1;
        }
        // Each shard should get roughly 1000; allow wide slack.
        assert!(counts.iter().all(|&c| c > 500 && c < 1500), "{counts:?}");
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for id in [0, 1, u64::MAX] {
            assert_eq!(shard_of(id, 1), 0);
        }
    }
}
