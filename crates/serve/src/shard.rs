//! Shard routing and the per-shard worker loop.
//!
//! Every span batch is split by trace id so that all spans of one
//! trace land on the same shard; each shard owns a private
//! [`Collector`] and [`TraceStore`] slice and therefore needs no
//! locking on the hot ingest path. Completed traces flow into the
//! shared RCA queue with a *blocking* push: a saturated RCA stage
//! stalls shard workers, their queues fill, and the ingest front-end
//! starts rejecting or shedding — backpressure end to end.

use std::sync::Arc;

use sleuth_store::{Collector, TraceStore};
use sleuth_trace::{Span, Trace, TraceId};

use crate::config::ServeConfig;
use crate::metrics::MetricsRegistry;
use crate::queue::BoundedQueue;

/// SplitMix64 finaliser — decorrelates sequential trace ids so shard
/// load stays even under monotonic id allocation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard a trace id routes to. Pure function of `(trace_id,
/// num_shards)` — stable across runs, processes, and machines.
pub fn shard_of(trace_id: TraceId, num_shards: usize) -> usize {
    assert!(num_shards > 0, "num_shards must be positive");
    (splitmix64(trace_id) % num_shards as u64) as usize
}

/// Message consumed by a shard worker.
#[derive(Debug)]
pub enum ShardMsg {
    /// Spans pre-routed to this shard, observed at logical `now_us`.
    Batch { spans: Vec<Span>, now_us: u64 },
    /// Advance the logical clock so idle traces can complete.
    Tick { now_us: u64 },
    /// Flush the collector, report state, and exit.
    Shutdown,
}

impl ShardMsg {
    /// Spans carried by this message (for shed accounting).
    pub fn span_count(&self) -> usize {
        match self {
            ShardMsg::Batch { spans, .. } => spans.len(),
            _ => 0,
        }
    }
}

/// What a shard worker hands back at shutdown.
#[derive(Debug)]
pub struct ShardReport {
    /// The shard's slice of stored spans.
    pub store: TraceStore,
    /// Traces dropped by collector cap eviction.
    pub evicted_traces: usize,
}

/// Run one shard worker to completion (until `Shutdown` or queue
/// close). Completed traces are stored locally and pushed to
/// `rca_queue` behind an `Arc`; when a `refresh_queue` is given, the
/// same `Arc` is also teed to the baseline refresher with a
/// *drop-oldest* push — no deep copy of the trace is ever made, and a
/// lagging refresher sheds stale handles instead of ever
/// backpressuring ingest.
pub fn run_shard(
    queue: Arc<BoundedQueue<ShardMsg>>,
    rca_queue: Arc<BoundedQueue<Arc<Trace>>>,
    refresh_queue: Option<Arc<BoundedQueue<Arc<Trace>>>>,
    metrics: Arc<MetricsRegistry>,
    config: &ServeConfig,
) -> ShardReport {
    let mut collector = Collector::new(config.idle_timeout_us).with_caps(config.collector_caps);
    let mut store = TraceStore::new();
    let mut evicted_seen = 0;
    let mut deduped_seen = 0;

    while let Some(msg) = queue.pop() {
        let shutdown = matches!(msg, ShardMsg::Shutdown);
        let completed = match msg {
            ShardMsg::Batch { spans, now_us } => {
                collector.ingest_batch(spans, now_us);
                collector.poll_complete(now_us)
            }
            ShardMsg::Tick { now_us } => collector.poll_complete(now_us),
            ShardMsg::Shutdown => collector.flush(),
        };

        let newly_evicted = collector.evicted_spans() - evicted_seen;
        if newly_evicted > 0 {
            metrics.spans_evicted.add(newly_evicted as u64);
            evicted_seen = collector.evicted_spans();
        }
        let newly_deduped = collector.deduped_spans() - deduped_seen;
        if newly_deduped > 0 {
            metrics.spans_deduped.add(newly_deduped as u64);
            deduped_seen = collector.deduped_spans();
        }

        for spans in completed {
            metrics.spans_stored.add(spans.len() as u64);
            store.extend(spans.clone());
            match Trace::assemble(spans) {
                Ok(trace) => {
                    metrics.traces_completed.inc();
                    let trace = Arc::new(trace);
                    if let Some(refresh) = &refresh_queue {
                        // Err means the queue closed (refresher already
                        // retired); the drop-oldest handle is counted shed.
                        if let Ok(Some(_)) = refresh.push_shedding(Arc::clone(&trace)) {
                            metrics.refresh_traces_shed.inc();
                        }
                    }
                    // Err only when the RCA queue is already closed
                    // (teardown); the trace is still stored.
                    let _ = rca_queue.push_wait(trace);
                }
                Err(_) => metrics.traces_malformed.inc(),
            }
        }

        if shutdown {
            break;
        }
    }

    ShardReport {
        store,
        evicted_traces: collector.evicted_traces(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for id in 0..500u64 {
            let s = shard_of(id, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(id, 4));
        }
    }

    #[test]
    fn routing_spreads_sequential_ids() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for id in 0..8000u64 {
            counts[shard_of(id, n)] += 1;
        }
        // Each shard should get roughly 1000; allow wide slack.
        assert!(counts.iter().all(|&c| c > 500 && c < 1500), "{counts:?}");
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for id in [0, 1, u64::MAX] {
            assert_eq!(shard_of(id, 1), 0);
        }
    }
}
