//! Serving runtime configuration.

use sleuth_store::CollectorCaps;

/// What a full shard queue does with an incoming batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Refuse the new batch and report it to the caller (default):
    /// the producer sees the rejection and can retry or downsample.
    #[default]
    Reject,
    /// Admit the new batch, silently dropping the *oldest* pending
    /// batch — keeps the freshest telemetry under sustained overload.
    DropOldest,
}

/// How the RCA stage groups anomalous traces for localisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterPolicy {
    /// Localise each anomalous trace individually (default). Verdicts
    /// are independent of arrival batching, so online results match
    /// the batch pipeline's unclustered `analyze` exactly.
    #[default]
    PerTrace,
    /// Cluster anomalous traces in micro-batches of up to this many
    /// traces (§3.3 clustering applied to whatever is queued).
    /// Verdicts then depend on arrival timing.
    MicroBatch(usize),
}

/// Background incremental baseline refresh (see [`crate::refresh`]).
///
/// When set on [`ServeConfig::refresh`], every completed trace is also
/// teed (as a shared `Arc` handle, through a drop-oldest queue that can
/// never backpressure ingest) into a [`crate::BaselineRefresher`] running on
/// its own thread, which publishes a refreshed pipeline through the
/// model registry every `interval_traces` folded traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Publish a refreshed pipeline after this many folded traces.
    pub interval_traces: usize,
    /// Capacity of the completed-trace refresh queue; overflow sheds
    /// the oldest handle (counted in `refresh_traces_shed`).
    pub queue_capacity: usize,
    /// An operation's sketched baselines only override the base
    /// profile once it has this many fresh samples.
    pub min_op_samples: usize,
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig {
            interval_traces: 256,
            queue_capacity: 1024,
            min_op_samples: 20,
        }
    }
}

/// Supervision and recovery tunables (see [`crate::quarantine`] and
/// the `Failure model` section of DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// RCA tries per trace before it is quarantined as poison. 1
    /// disables retries: the first panic quarantines the trace.
    pub max_rca_attempts: u32,
    /// First restart pause after a worker panic, µs (doubles per
    /// consecutive panic).
    pub restart_backoff_base_us: u64,
    /// Restart pause ceiling, µs.
    pub restart_backoff_max_us: u64,
    /// Quarantine store capacity; overflow drops the oldest entry.
    pub quarantine_capacity: usize,
    /// Consecutive full-path RCA crashes that trip the circuit
    /// breaker open.
    pub breaker_threshold: usize,
    /// Batches served degraded before an open breaker half-opens for
    /// a probe; also the probe cadence of deadline degradation.
    pub breaker_cooldown: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_rca_attempts: 2,
            restart_backoff_base_us: 100,
            restart_backoff_max_us: 10_000,
            quarantine_capacity: 256,
            breaker_threshold: 3,
            breaker_cooldown: 8,
        }
    }
}

/// A [`ServeConfig`] invariant violation, reported by
/// [`ServeConfig::validate`] and [`crate::ServeRuntime::start`]
/// instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_shards` was zero.
    ZeroShards,
    /// `shard_queue_capacity` was zero.
    ZeroShardQueueCapacity,
    /// `rca_queue_capacity` was zero.
    ZeroRcaQueueCapacity,
    /// `rca_workers` was zero.
    ZeroRcaWorkers,
    /// `ClusterPolicy::MicroBatch(0)`.
    ZeroMicroBatch,
    /// `RefreshConfig::interval_traces` was zero.
    ZeroRefreshInterval,
    /// `RefreshConfig::queue_capacity` was zero.
    ZeroRefreshQueueCapacity,
    /// `ResilienceConfig::max_rca_attempts` was zero.
    ZeroRcaAttempts,
    /// `ResilienceConfig::quarantine_capacity` was zero.
    ZeroQuarantineCapacity,
    /// `ResilienceConfig::breaker_threshold` was zero.
    ZeroBreakerThreshold,
    /// `ResilienceConfig::breaker_cooldown` was zero.
    ZeroBreakerCooldown,
    /// `restart_backoff_max_us` was below `restart_backoff_base_us`.
    BackoffInverted,
    /// `rca_deadline_us` was `Some(0)`.
    ZeroRcaDeadline,
    /// `rca_queue_high_water` exceeded `rca_queue_capacity` (the
    /// queue could never reach the mark).
    HighWaterAboveCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::ZeroShards => "num_shards must be positive",
            ConfigError::ZeroShardQueueCapacity => "shard_queue_capacity must be positive",
            ConfigError::ZeroRcaQueueCapacity => "rca_queue_capacity must be positive",
            ConfigError::ZeroRcaWorkers => "rca_workers must be positive",
            ConfigError::ZeroMicroBatch => "micro-batch size must be positive",
            ConfigError::ZeroRefreshInterval => "refresh interval_traces must be positive",
            ConfigError::ZeroRefreshQueueCapacity => "refresh queue_capacity must be positive",
            ConfigError::ZeroRcaAttempts => "max_rca_attempts must be positive",
            ConfigError::ZeroQuarantineCapacity => "quarantine_capacity must be positive",
            ConfigError::ZeroBreakerThreshold => "breaker_threshold must be positive",
            ConfigError::ZeroBreakerCooldown => "breaker_cooldown must be positive",
            ConfigError::BackoffInverted => {
                "restart_backoff_max_us must be at least restart_backoff_base_us"
            }
            ConfigError::ZeroRcaDeadline => "rca_deadline_us must be positive when set",
            ConfigError::HighWaterAboveCapacity => {
                "rca_queue_high_water must not exceed rca_queue_capacity"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// Tunables for [`crate::ServeRuntime`]. Construct via
/// [`ServeConfig::builder`] or struct-literal update syntax over
/// [`ServeConfig::default`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards; each owns a collector and a trace-store slice.
    pub num_shards: usize,
    /// Per-shard queue capacity in *batches* (not spans).
    pub shard_queue_capacity: usize,
    /// Completed-trace queue capacity feeding the RCA stage. When full
    /// it blocks shard workers, propagating backpressure to ingest.
    pub rca_queue_capacity: usize,
    /// RCA stage workers draining the completed-trace queue
    /// concurrently. Each worker leases the registry's current model
    /// per batch and reports its own latency histogram
    /// (`sleuth_rca_worker_latency_us{worker="i"}`). With
    /// [`ClusterPolicy::PerTrace`] the verdict *set* is invariant to
    /// this knob (each verdict depends only on its own trace); with
    /// [`ClusterPolicy::MicroBatch`] batch composition — already
    /// arrival-dependent — additionally depends on worker interleaving.
    pub rca_workers: usize,
    /// Collector idle window: a trace completes after this much
    /// logical time without new spans.
    pub idle_timeout_us: u64,
    /// Bounds on per-shard collector buffering.
    pub collector_caps: CollectorCaps,
    /// Admission policy for full shard queues.
    pub shed_policy: ShedPolicy,
    /// RCA grouping policy.
    pub cluster_policy: ClusterPolicy,
    /// Background incremental baseline refresh; `None` (default)
    /// disables the refresher thread entirely.
    pub refresh: Option<RefreshConfig>,
    /// Per-trace full-RCA deadline, µs. When a full localisation
    /// exceeds it, subsequent verdicts take the cheap degraded path
    /// (with periodic full-path probes) until a probe meets the
    /// deadline again. `None` (default) disables the deadline rung.
    pub rca_deadline_us: Option<u64>,
    /// Completed-trace queue depth at which verdicts shed to the
    /// degraded path until the backlog drains. `None` (default)
    /// disables the high-water rung.
    pub rca_queue_high_water: Option<usize>,
    /// Supervision, quarantine, and circuit-breaker tunables.
    pub resilience: ResilienceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            num_shards: 4,
            shard_queue_capacity: 64,
            rca_queue_capacity: 256,
            rca_workers: 1,
            idle_timeout_us: 2_000_000,
            collector_caps: CollectorCaps::default(),
            shed_policy: ShedPolicy::default(),
            cluster_policy: ClusterPolicy::default(),
            refresh: None,
            rca_deadline_us: None,
            rca_queue_high_water: None,
            resilience: ResilienceConfig::default(),
        }
    }
}

impl ServeConfig {
    /// A builder starting from [`ServeConfig::default`].
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }

    /// Check every invariant the runtime relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.shard_queue_capacity == 0 {
            return Err(ConfigError::ZeroShardQueueCapacity);
        }
        if self.rca_queue_capacity == 0 {
            return Err(ConfigError::ZeroRcaQueueCapacity);
        }
        if self.rca_workers == 0 {
            return Err(ConfigError::ZeroRcaWorkers);
        }
        if matches!(self.cluster_policy, ClusterPolicy::MicroBatch(0)) {
            return Err(ConfigError::ZeroMicroBatch);
        }
        if let Some(refresh) = &self.refresh {
            if refresh.interval_traces == 0 {
                return Err(ConfigError::ZeroRefreshInterval);
            }
            if refresh.queue_capacity == 0 {
                return Err(ConfigError::ZeroRefreshQueueCapacity);
            }
        }
        if self.resilience.max_rca_attempts == 0 {
            return Err(ConfigError::ZeroRcaAttempts);
        }
        if self.resilience.quarantine_capacity == 0 {
            return Err(ConfigError::ZeroQuarantineCapacity);
        }
        if self.resilience.breaker_threshold == 0 {
            return Err(ConfigError::ZeroBreakerThreshold);
        }
        if self.resilience.breaker_cooldown == 0 {
            return Err(ConfigError::ZeroBreakerCooldown);
        }
        if self.resilience.restart_backoff_max_us < self.resilience.restart_backoff_base_us {
            return Err(ConfigError::BackoffInverted);
        }
        if self.rca_deadline_us == Some(0) {
            return Err(ConfigError::ZeroRcaDeadline);
        }
        if let Some(hw) = self.rca_queue_high_water {
            if hw > self.rca_queue_capacity {
                return Err(ConfigError::HighWaterAboveCapacity);
            }
        }
        Ok(())
    }
}

/// Fluent constructor for [`ServeConfig`]; see the field docs there.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Set the worker-shard count.
    pub fn num_shards(mut self, n: usize) -> Self {
        self.config.num_shards = n;
        self
    }

    /// Set the per-shard queue capacity (in batches).
    pub fn shard_queue_capacity(mut self, n: usize) -> Self {
        self.config.shard_queue_capacity = n;
        self
    }

    /// Set the RCA queue capacity (in traces).
    pub fn rca_queue_capacity(mut self, n: usize) -> Self {
        self.config.rca_queue_capacity = n;
        self
    }

    /// Set the RCA worker count.
    pub fn rca_workers(mut self, n: usize) -> Self {
        self.config.rca_workers = n;
        self
    }

    /// Set the collector idle window, µs of logical time.
    pub fn idle_timeout_us(mut self, us: u64) -> Self {
        self.config.idle_timeout_us = us;
        self
    }

    /// Set the per-shard collector buffering caps.
    pub fn collector_caps(mut self, caps: CollectorCaps) -> Self {
        self.config.collector_caps = caps;
        self
    }

    /// Set the full-queue admission policy.
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.config.shed_policy = policy;
        self
    }

    /// Set the RCA grouping policy.
    pub fn cluster_policy(mut self, policy: ClusterPolicy) -> Self {
        self.config.cluster_policy = policy;
        self
    }

    /// Enable background baseline refresh.
    pub fn refresh(mut self, refresh: RefreshConfig) -> Self {
        self.config.refresh = Some(refresh);
        self
    }

    /// Set the per-trace full-RCA deadline, µs.
    pub fn rca_deadline_us(mut self, us: u64) -> Self {
        self.config.rca_deadline_us = Some(us);
        self
    }

    /// Set the completed-trace queue high-water mark (in traces).
    pub fn rca_queue_high_water(mut self, traces: usize) -> Self {
        self.config.rca_queue_high_water = Some(traces);
        self
    }

    /// Set the supervision/quarantine/breaker tunables.
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.config.resilience = resilience;
        self
    }

    /// Validate and return the finished config.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ConfigError`].
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(ServeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn builder_round_trips_every_field() {
        let caps = CollectorCaps::default();
        let refresh = RefreshConfig {
            interval_traces: 64,
            queue_capacity: 128,
            min_op_samples: 5,
        };
        let config = ServeConfig::builder()
            .num_shards(2)
            .shard_queue_capacity(8)
            .rca_queue_capacity(16)
            .rca_workers(3)
            .idle_timeout_us(1000)
            .collector_caps(caps)
            .shed_policy(ShedPolicy::DropOldest)
            .cluster_policy(ClusterPolicy::MicroBatch(4))
            .refresh(refresh)
            .build()
            .expect("valid config");
        assert_eq!(config.num_shards, 2);
        assert_eq!(config.shard_queue_capacity, 8);
        assert_eq!(config.rca_queue_capacity, 16);
        assert_eq!(config.rca_workers, 3);
        assert_eq!(config.idle_timeout_us, 1000);
        assert_eq!(config.shed_policy, ShedPolicy::DropOldest);
        assert_eq!(config.cluster_policy, ClusterPolicy::MicroBatch(4));
        assert_eq!(config.refresh, Some(refresh));
    }

    #[test]
    fn invalid_configs_name_the_violated_invariant() {
        assert_eq!(
            ServeConfig::builder().num_shards(0).build().unwrap_err(),
            ConfigError::ZeroShards
        );
        assert_eq!(
            ServeConfig::builder()
                .shard_queue_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroShardQueueCapacity
        );
        assert_eq!(
            ServeConfig::builder()
                .rca_queue_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroRcaQueueCapacity
        );
        assert_eq!(
            ServeConfig::builder().rca_workers(0).build().unwrap_err(),
            ConfigError::ZeroRcaWorkers
        );
        assert_eq!(
            ServeConfig::builder()
                .cluster_policy(ClusterPolicy::MicroBatch(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroMicroBatch
        );
        let bad_refresh = RefreshConfig {
            interval_traces: 0,
            ..RefreshConfig::default()
        };
        assert_eq!(
            ServeConfig::builder()
                .refresh(bad_refresh)
                .build()
                .unwrap_err(),
            ConfigError::ZeroRefreshInterval
        );
        assert!(ConfigError::ZeroShards.to_string().contains("num_shards"));
    }

    #[test]
    fn resilience_defaults_are_valid_and_round_trip() {
        let resilience = ResilienceConfig {
            max_rca_attempts: 3,
            breaker_threshold: 5,
            ..ResilienceConfig::default()
        };
        let config = ServeConfig::builder()
            .rca_deadline_us(5_000)
            .rca_queue_high_water(200)
            .resilience(resilience)
            .build()
            .expect("valid config");
        assert_eq!(config.rca_deadline_us, Some(5_000));
        assert_eq!(config.rca_queue_high_water, Some(200));
        assert_eq!(config.resilience, resilience);
    }

    #[test]
    fn invalid_resilience_configs_are_rejected() {
        let zero_attempts = ResilienceConfig {
            max_rca_attempts: 0,
            ..ResilienceConfig::default()
        };
        assert_eq!(
            ServeConfig::builder()
                .resilience(zero_attempts)
                .build()
                .unwrap_err(),
            ConfigError::ZeroRcaAttempts
        );
        let inverted_backoff = ResilienceConfig {
            restart_backoff_base_us: 100,
            restart_backoff_max_us: 10,
            ..ResilienceConfig::default()
        };
        assert_eq!(
            ServeConfig::builder()
                .resilience(inverted_backoff)
                .build()
                .unwrap_err(),
            ConfigError::BackoffInverted
        );
        assert_eq!(
            ServeConfig::builder()
                .rca_deadline_us(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroRcaDeadline
        );
        assert_eq!(
            ServeConfig::builder()
                .rca_queue_capacity(16)
                .rca_queue_high_water(17)
                .build()
                .unwrap_err(),
            ConfigError::HighWaterAboveCapacity
        );
        let zero_quarantine = ResilienceConfig {
            quarantine_capacity: 0,
            ..ResilienceConfig::default()
        };
        assert_eq!(
            ServeConfig::builder()
                .resilience(zero_quarantine)
                .build()
                .unwrap_err(),
            ConfigError::ZeroQuarantineCapacity
        );
        let zero_breaker = ResilienceConfig {
            breaker_threshold: 0,
            ..ResilienceConfig::default()
        };
        assert_eq!(
            ServeConfig::builder()
                .resilience(zero_breaker)
                .build()
                .unwrap_err(),
            ConfigError::ZeroBreakerThreshold
        );
        let zero_cooldown = ResilienceConfig {
            breaker_cooldown: 0,
            ..ResilienceConfig::default()
        };
        assert_eq!(
            ServeConfig::builder()
                .resilience(zero_cooldown)
                .build()
                .unwrap_err(),
            ConfigError::ZeroBreakerCooldown
        );
    }
}
