//! Serving runtime configuration.

use sleuth_store::CollectorCaps;

/// What a full shard queue does with an incoming batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Refuse the new batch and report it to the caller (default):
    /// the producer sees the rejection and can retry or downsample.
    #[default]
    Reject,
    /// Admit the new batch, silently dropping the *oldest* pending
    /// batch — keeps the freshest telemetry under sustained overload.
    DropOldest,
}

/// How the RCA stage groups anomalous traces for localisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterPolicy {
    /// Localise each anomalous trace individually (default). Verdicts
    /// are independent of arrival batching, so online results match
    /// the batch pipeline's `analyze_without_clustering` exactly.
    #[default]
    PerTrace,
    /// Cluster anomalous traces in micro-batches of up to this many
    /// traces (§3.3 clustering applied to whatever is queued).
    /// Verdicts then depend on arrival timing.
    MicroBatch(usize),
}

/// Tunables for [`crate::ServeRuntime`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards; each owns a collector and a trace-store slice.
    pub num_shards: usize,
    /// Per-shard queue capacity in *batches* (not spans).
    pub shard_queue_capacity: usize,
    /// Completed-trace queue capacity feeding the RCA stage. When full
    /// it blocks shard workers, propagating backpressure to ingest.
    pub rca_queue_capacity: usize,
    /// Collector idle window: a trace completes after this much
    /// logical time without new spans.
    pub idle_timeout_us: u64,
    /// Bounds on per-shard collector buffering.
    pub collector_caps: CollectorCaps,
    /// Admission policy for full shard queues.
    pub shed_policy: ShedPolicy,
    /// RCA grouping policy.
    pub cluster_policy: ClusterPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            num_shards: 4,
            shard_queue_capacity: 64,
            rca_queue_capacity: 256,
            idle_timeout_us: 2_000_000,
            collector_caps: CollectorCaps::default(),
            shed_policy: ShedPolicy::default(),
            cluster_policy: ClusterPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Validate invariants the runtime relies on.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count or zero queue capacity.
    pub fn validate(&self) {
        assert!(self.num_shards > 0, "num_shards must be positive");
        assert!(
            self.shard_queue_capacity > 0,
            "shard_queue_capacity must be positive"
        );
        assert!(
            self.rca_queue_capacity > 0,
            "rca_queue_capacity must be positive"
        );
        if let ClusterPolicy::MicroBatch(n) = self.cluster_policy {
            assert!(n > 0, "micro-batch size must be positive");
        }
    }
}
