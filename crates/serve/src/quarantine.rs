//! Bounded quarantine for poison traces.
//!
//! A trace that crashes a worker (or fails assembly) must not be
//! retried forever — that turns one bad input into a permanently
//! wedged pipeline. After its bounded retry budget is spent the trace
//! is parked here with a machine-readable reason, counted in the
//! `poison_traces` metric, and exposed through
//! [`crate::ServeRuntime::poll_quarantined`] so an operator (or a
//! test) can inspect exactly what was given up on. The store is
//! bounded: overflow drops the *oldest* entry (counted in
//! `quarantine_dropped`) so a malformed-input storm cannot exhaust
//! memory.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use sleuth_trace::{Trace, TraceId};

use crate::metrics::MetricsRegistry;
use crate::sync::lock_or_recover;

/// Why a trace was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The completed span set failed [`Trace::assemble`]; the message
    /// is the assembly error's display form.
    Assembly(String),
    /// RCA on this trace panicked on every allowed attempt.
    RcaPanic {
        /// The worker that observed the final panic.
        worker: usize,
        /// Attempts consumed (≥ the configured `max_rca_attempts`).
        attempts: u32,
    },
    /// A shard worker panicked while this batch was in flight; its
    /// spans never reached the collector.
    ShardPanic {
        /// The shard that panicked.
        shard: usize,
    },
}

impl QuarantineReason {
    /// Stable label for the `sleuth_serve_quarantined_total{reason=…}`
    /// metric series.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineReason::Assembly(_) => "assembly",
            QuarantineReason::RcaPanic { .. } => "rca_panic",
            QuarantineReason::ShardPanic { .. } => "shard_panic",
        }
    }
}

/// One quarantined trace (or span batch, when the trace never
/// assembled).
#[derive(Debug, Clone)]
pub struct QuarantinedTrace {
    /// The trace id, when one is known. A shard-panic batch can carry
    /// spans from several traces; the id is then the first span's.
    pub trace_id: Option<TraceId>,
    /// Spans involved, for conservation accounting.
    pub span_count: usize,
    /// Why the runtime gave up.
    pub reason: QuarantineReason,
    /// The shard that owned this trace when it was given up on. Set by
    /// every quarantine site (shard workers know their own id; the RCA
    /// stage recomputes it from the trace id), so a router aggregating
    /// several shard processes can attribute each entry to its origin.
    /// In a multi-process topology the entry leaves its process still
    /// carrying the *local* shard id; the router rewrites it to the
    /// global shard index.
    pub origin_shard: Option<usize>,
    /// The assembled trace, when it got that far (RCA panics).
    pub trace: Option<Arc<Trace>>,
}

/// Bounded FIFO of [`QuarantinedTrace`] entries shared by every
/// supervised stage.
pub struct QuarantineStore {
    entries: Mutex<VecDeque<QuarantinedTrace>>,
    capacity: usize,
    metrics: Arc<MetricsRegistry>,
}

impl QuarantineStore {
    /// Store holding at most `capacity` entries.
    pub fn new(capacity: usize, metrics: Arc<MetricsRegistry>) -> Self {
        assert!(capacity > 0, "quarantine capacity must be positive");
        QuarantineStore {
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            capacity,
            metrics,
        }
    }

    /// Park `entry`, counting it in `poison_traces` (and its reason
    /// label). When full, the oldest entry is dropped and counted in
    /// `quarantine_dropped`.
    pub fn put(&self, entry: QuarantinedTrace) {
        self.metrics.poison_traces.inc();
        self.metrics.record_quarantined(entry.reason.label());
        let mut entries = lock_or_recover(&self.entries, Some(&self.metrics.lock_poisoned));
        if entries.len() >= self.capacity {
            entries.pop_front();
            self.metrics.quarantine_dropped.inc();
        }
        entries.push_back(entry);
    }

    /// Take every quarantined entry accumulated since the last call,
    /// oldest first.
    pub fn drain(&self) -> Vec<QuarantinedTrace> {
        lock_or_recover(&self.entries, Some(&self.metrics.lock_poisoned))
            .drain(..)
            .collect()
    }

    /// Entries currently parked.
    pub fn len(&self) -> usize {
        lock_or_recover(&self.entries, Some(&self.metrics.lock_poisoned)).len()
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for QuarantineStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuarantineStore")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> QuarantinedTrace {
        QuarantinedTrace {
            trace_id: Some(id),
            span_count: 1,
            reason: QuarantineReason::Assembly("test".to_string()),
            origin_shard: Some(0),
            trace: None,
        }
    }

    #[test]
    fn put_counts_and_drain_empties() {
        let metrics = Arc::new(MetricsRegistry::default());
        let store = QuarantineStore::new(4, Arc::clone(&metrics));
        store.put(entry(1));
        store.put(entry(2));
        assert_eq!(store.len(), 2);
        assert_eq!(metrics.poison_traces.get(), 2);
        let drained = store.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].trace_id, Some(1));
        assert!(store.is_empty());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let metrics = Arc::new(MetricsRegistry::default());
        let store = QuarantineStore::new(2, Arc::clone(&metrics));
        for id in 1..=3 {
            store.put(entry(id));
        }
        assert_eq!(metrics.quarantine_dropped.get(), 1);
        let ids: Vec<_> = store.drain().into_iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![Some(2), Some(3)]);
    }

    #[test]
    fn reason_labels_are_stable() {
        assert_eq!(
            QuarantineReason::Assembly(String::new()).label(),
            "assembly"
        );
        assert_eq!(
            QuarantineReason::RcaPanic {
                worker: 0,
                attempts: 2
            }
            .label(),
            "rca_panic"
        );
        assert_eq!(
            QuarantineReason::ShardPanic { shard: 1 }.label(),
            "shard_panic"
        );
    }
}
