//! Incremental baseline refresh from served traffic.
//!
//! Production trace populations drift: deployments change service
//! latencies, traffic mix shifts, new operations appear. The paper's
//! detector depends on per-flow SLO percentiles (§3.1) and the
//! counterfactual localiser on per-operation duration medians (§3.5),
//! all fit offline — so they go stale. The [`BaselineRefresher`] folds
//! completed traces into **streaming sketches** (P² quantile
//! estimators + Welford moments, constant memory per operation) and
//! periodically assembles a refreshed `SleuthPipeline` via the core
//! `with_baselines` hook: same trained GNN, same featurizer
//! vocabulary, fresh baselines — no refit, no training pass.
//!
//! Inside the serving runtime the refresher runs on its own thread,
//! fed by a drop-oldest queue of completed-trace clones (refresher lag
//! can never backpressure ingest), and publishes refreshed pipelines
//! through the [`crate::ModelRegistry`]. It is also usable
//! synchronously: fold any trace source (e.g. a
//! `TraceStore::export_completed_since` export) and publish the
//! assembled pipeline by hand.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sleuth_baselines::common::{OpKey, OpProfile, OpStats};
use sleuth_core::SleuthPipeline;
use sleuth_trace::{exclusive, Trace};

use crate::inject::FaultInjector;
use crate::metrics::MetricsRegistry;
use crate::queue::BoundedQueue;
use crate::registry::ModelRegistry;
use crate::sync::Backoff;

/// Streaming quantile estimator (the P² algorithm, Jain & Chlamtac
/// 1985): tracks one quantile with five markers in O(1) memory and
/// O(1) deterministic update time. Exact below five observations.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    count: u64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    /// Exact buffer for the first five observations.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> Self {
        P2Quantile {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            initial: Vec::with_capacity(5),
        }
    }

    /// Fold one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            self.initial.sort_by(f64::total_cmp);
            if self.initial.len() == 5 {
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }
        let cell = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 2;
            for i in 1..5 {
                if x < self.heights[i] {
                    cell = i - 1;
                    break;
                }
            }
            cell
        };
        for position in &mut self.positions[cell + 1..] {
            *position += 1.0;
        }
        for (desired, increment) in self.desired.iter_mut().zip(self.increments) {
            *desired += increment;
        }
        for i in 1..4 {
            let gap = self.desired[i] - self.positions[i];
            let room_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let room_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (gap >= 1.0 && room_up) || (gap <= -1.0 && room_down) {
                let direction = gap.signum();
                let parabolic = self.parabolic(i, direction);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, direction)
                    };
                self.positions[i] += direction;
            }
        }
    }

    /// Piecewise-parabolic marker interpolation (the "P squared").
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let h = &self.heights;
        let n = &self.positions;
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate (0 when nothing observed).
    pub fn estimate(&self) -> f64 {
        if self.initial.len() < 5 {
            if self.initial.is_empty() {
                return 0.0;
            }
            let idx = (self.q * (self.initial.len() - 1) as f64).round() as usize;
            return self.initial[idx];
        }
        self.heights[2]
    }

    /// Observations folded.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Welford's online mean/variance (population variance, matching
/// `OpProfile::fit`).
#[derive(Debug, Clone, Default)]
struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn std(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }
}

/// Per-operation streaming sketch mirroring [`OpStats`].
#[derive(Debug, Clone)]
struct OpSketch {
    duration: Welford,
    duration_p50: P2Quantile,
    duration_p95: P2Quantile,
    exclusive: Welford,
    exclusive_p50: P2Quantile,
}

impl OpSketch {
    fn new() -> Self {
        OpSketch {
            duration: Welford::default(),
            duration_p50: P2Quantile::new(0.5),
            duration_p95: P2Quantile::new(0.95),
            exclusive: Welford::default(),
            exclusive_p50: P2Quantile::new(0.5),
        }
    }

    fn observe(&mut self, duration_us: f64, exclusive_us: f64) {
        self.duration.observe(duration_us);
        self.duration_p50.observe(duration_us);
        self.duration_p95.observe(duration_us);
        self.exclusive.observe(exclusive_us);
        self.exclusive_p50.observe(exclusive_us);
    }

    fn to_stats(&self) -> OpStats {
        OpStats {
            count: self.duration.count as usize,
            mean_us: self.duration.mean,
            std_us: self.duration.std(),
            median_us: self.duration_p50.estimate().max(0.0) as u64,
            p95_us: self.duration_p95.estimate().max(0.0) as u64,
            mean_exclusive_us: self.exclusive.mean,
            median_exclusive_us: self.exclusive_p50.estimate().max(0.0) as u64,
        }
    }
}

/// Per-root-operation SLO sketch (end-to-end duration percentiles).
#[derive(Debug, Clone)]
struct RootSketch {
    p50: P2Quantile,
    p95: P2Quantile,
}

/// Folds completed traces into streaming baseline sketches and
/// assembles refreshed pipelines around an immutable base model.
#[derive(Debug)]
pub struct BaselineRefresher {
    base: Arc<SleuthPipeline>,
    min_op_samples: usize,
    ops: HashMap<OpKey, OpSketch>,
    roots: HashMap<OpKey, RootSketch>,
    folded: u64,
}

impl BaselineRefresher {
    /// A refresher around `base`. Sketched baselines only override the
    /// base profile's once an operation has at least `min_op_samples`
    /// fresh observations; below that the base values stand, so rare
    /// operations never get a noisy two-sample SLO.
    pub fn new(base: Arc<SleuthPipeline>, min_op_samples: usize) -> Self {
        BaselineRefresher {
            base,
            min_op_samples: min_op_samples.max(1),
            ops: HashMap::new(),
            roots: HashMap::new(),
            folded: 0,
        }
    }

    /// Fold one completed trace into the sketches.
    pub fn fold(&mut self, trace: &Trace) {
        let exclusive = exclusive::exclusive_durations(trace);
        for (i, span) in trace.iter() {
            self.ops
                .entry(OpKey::of(span))
                .or_insert_with(OpSketch::new)
                .observe(span.duration_us() as f64, exclusive[i] as f64);
        }
        let root = trace.span(trace.root());
        let sketch = self
            .roots
            .entry(OpKey::of(root))
            .or_insert_with(|| RootSketch {
                p50: P2Quantile::new(0.5),
                p95: P2Quantile::new(0.95),
            });
        let total = trace.total_duration_us() as f64;
        sketch.p50.observe(total);
        sketch.p95.observe(total);
        self.folded += 1;
    }

    /// Traces folded since construction.
    pub fn traces_folded(&self) -> u64 {
        self.folded
    }

    /// Assemble a refreshed pipeline: the base profile overlaid with
    /// every sketch that has reached `min_op_samples`, wrapped around
    /// the base pipeline's model via the no-refit
    /// `SleuthPipeline::with_baselines` hook.
    pub fn assemble(&self) -> Arc<SleuthPipeline> {
        let base_profile = self.base.detector().profile();
        let mut stats: HashMap<OpKey, OpStats> = base_profile
            .iter()
            .map(|(key, stats)| (*key, stats.clone()))
            .collect();
        for (key, sketch) in &self.ops {
            if sketch.duration.count as usize >= self.min_op_samples {
                stats.insert(*key, sketch.to_stats());
            }
        }
        let mut root_p50: HashMap<OpKey, u64> = HashMap::new();
        let mut root_p95: HashMap<OpKey, u64> = HashMap::new();
        for (key, p50, p95) in base_profile.roots() {
            root_p50.insert(*key, p50);
            root_p95.insert(*key, p95);
        }
        for (key, sketch) in &self.roots {
            if sketch.p95.count() as usize >= self.min_op_samples {
                root_p50.insert(*key, sketch.p50.estimate().max(0.0) as u64);
                root_p95.insert(*key, sketch.p95.estimate().max(0.0) as u64);
            }
        }
        let profile = OpProfile::from_parts(stats, root_p95, root_p50);
        Arc::new(self.base.with_baselines(profile))
    }
}

/// The runtime's background refresh loop: drain the completed-trace
/// queue, fold, and publish a refreshed pipeline through the registry
/// every `interval_traces` folded traces. Exits when the queue closes.
///
/// Supervised: a panic while folding (or publishing) is caught and
/// counted (`worker_panics{stage="refresh"}`), the trace in hand is
/// skipped — baselines are statistical, one lost sample is harmless —
/// and the loop restarts after a bounded backoff. The sketches
/// themselves survive restarts; a panic mid-fold can at worst leave
/// one trace partially folded.
pub(crate) fn run_refresher(
    queue: Arc<BoundedQueue<Arc<Trace>>>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<MetricsRegistry>,
    mut refresher: BaselineRefresher,
    interval_traces: usize,
    injector: Arc<dyn FaultInjector>,
    backoff: Backoff,
) {
    let mut since_publish = 0usize;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            while let Some(trace) = queue.pop() {
                injector.refresh_fold(&trace);
                refresher.fold(&trace);
                metrics.refresh_traces_folded.inc();
                since_publish += 1;
                if since_publish >= interval_traces {
                    registry.publish(refresher.assemble());
                    metrics.baseline_refreshes.inc();
                    metrics
                        .refresh_staleness_traces
                        .record(since_publish as u64);
                    since_publish = 0;
                }
            }
        }));
        match result {
            Ok(()) => return,
            Err(_) => {
                metrics.record_worker_panic("refresh", 0);
                backoff.sleep_and_advance();
                metrics.record_worker_restart("refresh", 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), 0.0);
        for x in [5.0, 1.0, 3.0] {
            q.observe(x);
        }
        assert_eq!(q.estimate(), 3.0);
    }

    #[test]
    fn p2_median_tracks_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..10_000 {
            // Deterministic low-discrepancy permutation of 0..10000.
            q.observe(((i * 7919) % 10_000) as f64);
        }
        let est = q.estimate();
        assert!((est - 5_000.0).abs() < 250.0, "median estimate {est}");
    }

    #[test]
    fn p2_p95_tracks_uniform_stream() {
        let mut q = P2Quantile::new(0.95);
        for i in 0..10_000 {
            q.observe(((i * 7919) % 10_000) as f64);
        }
        let est = q.estimate();
        assert!((est - 9_500.0).abs() < 300.0, "p95 estimate {est}");
    }

    #[test]
    fn welford_matches_batch_moments() {
        let mut w = Welford::default();
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        for &x in &xs {
            w.observe(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean - mean).abs() < 1e-9);
        assert!((w.std() - var.sqrt()).abs() < 1e-9);
    }
}
