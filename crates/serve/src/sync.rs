//! Poison-tolerant synchronisation helpers.
//!
//! A panicking thread poisons every `Mutex` it holds; with the stock
//! `lock().unwrap()` idiom one crashed worker then takes down every
//! other thread that touches the same lock — a single bad trace
//! becomes a whole-runtime outage. The serving runtime instead treats
//! poisoning as an *observable recoverable event*: [`lock_or_recover`]
//! clears the poison (the protected data is all plain counters,
//! queues, and maps whose invariants hold between individual
//! mutations), increments a `lock_poisoned` counter when one is
//! wired, and hands back the guard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::metrics::Counter;

/// Lock `mutex`, recovering (and counting) instead of panicking when
/// a previous holder panicked. The caller is responsible for the
/// protected data being valid between mutations — true for every
/// lock in this crate (queues, lease maps, metric maps).
pub fn lock_or_recover<'a, T>(
    mutex: &'a Mutex<T>,
    poisoned: Option<&Counter>,
) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(err) => {
            if let Some(counter) = poisoned {
                counter.inc();
            }
            mutex.clear_poison();
            err.into_inner()
        }
    }
}

/// [`Condvar::wait`] with the same poison-recovery contract as
/// [`lock_or_recover`].
pub fn wait_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    poisoned: Option<&Counter>,
) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(err) => {
            if let Some(counter) = poisoned {
                counter.inc();
            }
            err.into_inner()
        }
    }
}

/// Bounded exponential backoff for supervised worker restarts: each
/// failure doubles the pause up to `max_us`; a success resets it.
/// Thread-safe so a supervisor and its observers can share one.
#[derive(Debug)]
pub struct Backoff {
    base_us: u64,
    max_us: u64,
    current_us: AtomicU64,
}

impl Backoff {
    /// Backoff starting at `base_us` and capped at `max_us`.
    pub fn new(base_us: u64, max_us: u64) -> Self {
        Backoff {
            base_us: base_us.max(1),
            max_us: max_us.max(base_us.max(1)),
            current_us: AtomicU64::new(base_us.max(1)),
        }
    }

    /// Sleep for the current pause, then double it (saturating at the
    /// cap). Returns the pause actually slept, µs.
    pub fn sleep_and_advance(&self) -> u64 {
        let pause = self.current_us.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_micros(pause));
        let next = pause.saturating_mul(2).min(self.max_us);
        self.current_us.store(next, Ordering::Relaxed);
        pause
    }

    /// Reset to the base pause after a healthy iteration.
    pub fn reset(&self) {
        self.current_us.store(self.base_us, Ordering::Relaxed);
    }

    /// The pause the next failure would sleep, µs.
    pub fn current_us(&self) -> u64 {
        self.current_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_from_poisoned_mutex_and_counts() {
        let mutex = Arc::new(Mutex::new(7u64));
        let counter = Counter::default();
        let poisoner = {
            let mutex = Arc::clone(&mutex);
            std::thread::spawn(move || {
                let _guard = mutex.lock().unwrap();
                panic!("poison the lock");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(mutex.is_poisoned());
        {
            let mut guard = lock_or_recover(&mutex, Some(&counter));
            *guard += 1;
        }
        assert_eq!(counter.get(), 1);
        // Recovery clears the poison flag for subsequent lockers.
        assert_eq!(*lock_or_recover(&mutex, Some(&counter)), 8);
        assert_eq!(counter.get(), 1);
    }

    #[test]
    fn healthy_lock_does_not_count() {
        let mutex = Mutex::new(0u64);
        let counter = Counter::default();
        drop(lock_or_recover(&mutex, Some(&counter)));
        assert_eq!(counter.get(), 0);
    }

    #[test]
    fn backoff_doubles_to_cap_and_resets() {
        let b = Backoff::new(1, 4);
        assert_eq!(b.sleep_and_advance(), 1);
        assert_eq!(b.sleep_and_advance(), 2);
        assert_eq!(b.sleep_and_advance(), 4);
        assert_eq!(b.current_us(), 4); // capped
        b.reset();
        assert_eq!(b.current_us(), 1);
    }
}
