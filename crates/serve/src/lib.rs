//! Sharded online RCA serving runtime.
//!
//! The batch pipeline in `sleuth-core` answers "given this corpus,
//! where are the root causes?". This crate answers the production
//! question from §4 of the paper: spans arrive continuously, out of
//! order and across network batches, and verdicts must come out the
//! other side with bounded memory. The runtime is a small
//! thread-per-shard system:
//!
//! ```text
//!                    ┌─ shard 0: queue ─ Collector ─ TraceStore ─┐
//!  submit_batch ──►──┼─ shard 1: queue ─ Collector ─ TraceStore ─┼─► RCA queue
//!  (hash by          └─ shard N: queue ─ Collector ─ TraceStore ─┘      │
//!   trace id)                      │ (completed-trace clones,           │
//!                                  ▼  drop-oldest)              RCA stage: lease ─► verdicts
//!                            refresh queue                              ▲  (version-tagged)
//!                                  │                                    │ lease per batch
//!                        BaselineRefresher ──── publish ────► ModelRegistry ◄── publish()
//!                        (P² sketches, no refit)              (versioned hot-swap)
//! ```
//!
//! * **Ingest front-end** ([`ServeRuntime::submit_batch`]) —
//!   hash-shards span batches by trace id ([`shard_of`]) so each
//!   trace is owned by exactly one shard; no cross-shard locking.
//! * **Bounded queues with explicit backpressure** ([`BoundedQueue`])
//!   — per-shard capacity is configurable; a full queue either
//!   rejects the new batch ([`ShedPolicy::Reject`]) or drops the
//!   oldest pending one ([`ShedPolicy::DropOldest`]), and every
//!   outcome is reported ([`SubmitReport`]) and counted.
//! * **RCA stage** — pulls completed traces, filters through the
//!   fitted anomaly detector, localises root causes via a short-lived
//!   [`ModelLease`] on the registry's current pipeline, and emits
//!   version-tagged [`Verdict`]s.
//! * **Model registry + hot swap** ([`ModelRegistry`],
//!   [`ServeRuntime::publish`]) — versioned `Arc<SleuthPipeline>`
//!   handles behind an epoch cell; a publish installs the new model
//!   atomically and drains in-flight RCA work on retired versions.
//! * **Incremental baseline refresh** ([`BaselineRefresher`],
//!   [`RefreshConfig`]) — completed traces are folded into streaming
//!   quantile sketches and periodically re-published as a refreshed
//!   pipeline (same GNN, fresh baselines — no refit).
//! * **Built-in metrics** ([`MetricsRegistry`]) — atomic counters and
//!   fixed-bucket histograms, snapshotable ([`MetricsSnapshot`]) and
//!   renderable as Prometheus-style text.
//! * **Clean shutdown** ([`ServeRuntime::shutdown`]) — flushes every
//!   collector, joins all workers, drains the RCA queue, and returns
//!   the verdicts, the merged [`sleuth_store::TraceStore`], and a
//!   final snapshot.
//! * **Supervision and quarantine** ([`crate::sync`],
//!   [`QuarantineStore`]) — every worker loop runs under
//!   `catch_unwind`: a panic is counted
//!   (`worker_panics{stage,worker}`), the work in flight is retried up
//!   to `max_rca_attempts` and then parked in a bounded quarantine
//!   ([`ServeRuntime::poll_quarantined`]), and the worker restarts
//!   with bounded exponential backoff. Mutexes recover from poisoning
//!   instead of cascading the crash.
//! * **Graceful degradation** ([`crate::degrade`],
//!   [`Verdict::degraded`]) — per-trace RCA deadlines
//!   ([`ServeConfig::rca_deadline_us`]), a completed-trace queue
//!   high-water mark, and a circuit breaker
//!   ([`ServeRuntime::breaker_state`]) shed verdicts to a cheap
//!   anomaly-ranking path under pressure instead of falling over.
//! * **Fault injection seam** ([`FaultInjector`],
//!   [`ServeRuntime::start_with_injector`]) — the deterministic hook
//!   surface the `sleuth-chaos` crate drives in tests.
//!
//! After a full drain the span accounting is conservative:
//! `spans_submitted = spans_rejected + spans_shed + spans_evicted +
//! spans_quarantined + spans_stored` (where `spans_rejected` counts
//! both full queues and invalid inverted-interval spans, and
//! `spans_quarantined` counts batches stranded by a shard panic).

pub mod config;
pub mod degrade;
pub mod inject;
pub mod metrics;
pub mod quarantine;
pub mod queue;
pub mod refresh;
pub mod registry;
pub mod runtime;
pub mod shard;
pub mod sync;

pub use config::{
    ClusterPolicy, ConfigError, RefreshConfig, ResilienceConfig, ServeConfig, ServeConfigBuilder,
    ShedPolicy,
};
pub use degrade::{BreakerState, DegradeReason};
pub use inject::{FaultInjector, NoFaults};
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use quarantine::{QuarantineReason, QuarantineStore, QuarantinedTrace};
pub use queue::{BoundedQueue, PushOutcome};
pub use refresh::{BaselineRefresher, P2Quantile};
pub use registry::{ModelLease, ModelRegistry, ModelVersion};
pub use runtime::{ServeReport, ServeRuntime, SubmitReport, Verdict};
pub use shard::shard_of;
pub use sync::{lock_or_recover, Backoff};
