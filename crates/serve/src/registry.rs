//! Versioned pipeline registry with atomic hot-swap.
//!
//! The registry is an epoch-style cell holding the *current*
//! `Arc<SleuthPipeline>` plus a monotonically increasing
//! [`ModelVersion`]. The RCA stage takes a short-lived [`ModelLease`]
//! per localisation batch; [`ModelRegistry::publish`] installs a new
//! pipeline atomically and then **drains**: it blocks until every
//! lease on an older version has been dropped, so when `publish`
//! returns no verdict is still being computed by a retired model and
//! every trace is analysed wholly under exactly one version — no
//! cross-model corruption, no lost in-flight work.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use sleuth_core::SleuthPipeline;

use crate::metrics::{Counter, MetricsRegistry};
use crate::sync::{lock_or_recover, wait_or_recover};

/// Monotonic identity of one published pipeline. Version 1 is the
/// pipeline the runtime started with; every [`ModelRegistry::publish`]
/// (manual hot-swap or background baseline refresh) increments it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ModelVersion(pub u64);

impl std::fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

struct Current {
    version: ModelVersion,
    pipeline: Arc<SleuthPipeline>,
}

struct State {
    current: Option<Current>,
    next_version: u64,
    /// Outstanding lease count per version (entries removed at zero).
    leases: HashMap<u64, usize>,
}

/// Epoch cell of versioned `Arc<SleuthPipeline>` handles. Shared via
/// `Arc` between the RCA stage (leasing), the serving front-end
/// (manual [`ModelRegistry::publish`]), and the background baseline
/// refresher (periodic publish).
pub struct ModelRegistry {
    state: Mutex<State>,
    drained: Condvar,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ModelRegistry {
    fn poison_counter(&self) -> Option<&Counter> {
        self.metrics.as_ref().map(|m| &*m.lock_poisoned)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        lock_or_recover(&self.state, self.poison_counter())
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

impl ModelRegistry {
    /// An empty registry: [`ModelRegistry::lease`] returns `None`
    /// until the first publish.
    pub fn new() -> Self {
        ModelRegistry {
            state: Mutex::new(State {
                current: None,
                next_version: 1,
                leases: HashMap::new(),
            }),
            drained: Condvar::new(),
            metrics: None,
        }
    }

    /// A registry reporting swap count and drain latency to `metrics`.
    pub fn with_metrics(metrics: Arc<MetricsRegistry>) -> Self {
        ModelRegistry {
            metrics: Some(metrics),
            ..ModelRegistry::new()
        }
    }

    /// Install `pipeline` as the current model and wait until all
    /// in-flight work on older versions has drained. Returns the
    /// version assigned to the new pipeline.
    ///
    /// New [`ModelRegistry::lease`] calls see the new pipeline the
    /// moment it is installed (before the drain completes), so the
    /// swap itself is atomic and non-blocking for readers; only the
    /// publisher waits.
    pub fn publish(&self, pipeline: Arc<SleuthPipeline>) -> ModelVersion {
        let started = Instant::now();
        let mut state = self.lock();
        let version = ModelVersion(state.next_version);
        state.next_version += 1;
        let is_swap = state.current.is_some();
        state.current = Some(Current { version, pipeline });
        while state.leases.keys().any(|&v| v < version.0) {
            state = wait_or_recover(&self.drained, state, self.poison_counter());
        }
        drop(state);
        if let Some(metrics) = &self.metrics {
            if is_swap {
                metrics.model_swaps.inc();
                metrics
                    .swap_drain_us
                    .record(started.elapsed().as_micros() as u64);
            }
        }
        version
    }

    /// Take a lease on the current pipeline, or `None` if nothing has
    /// been published yet. The lease pins its version as "in use":
    /// a concurrent publish will not return until this lease drops.
    pub fn lease(self: &Arc<Self>) -> Option<ModelLease> {
        let mut state = self.lock();
        let current = state.current.as_ref()?;
        let version = current.version;
        let pipeline = Arc::clone(&current.pipeline);
        *state.leases.entry(version.0).or_insert(0) += 1;
        drop(state);
        Some(ModelLease {
            registry: Arc::clone(self),
            version,
            pipeline,
        })
    }

    /// The currently published version, if any.
    pub fn current_version(&self) -> Option<ModelVersion> {
        self.lock().current.as_ref().map(|c| c.version)
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("current_version", &self.current_version())
            .finish_non_exhaustive()
    }
}

/// A pinned reference to one published pipeline version. Holding a
/// lease guarantees the pipeline stays "current or draining" — a
/// publish of a newer version blocks until the lease is dropped.
pub struct ModelLease {
    registry: Arc<ModelRegistry>,
    version: ModelVersion,
    pipeline: Arc<SleuthPipeline>,
}

impl ModelLease {
    /// The leased version.
    pub fn version(&self) -> ModelVersion {
        self.version
    }

    /// The leased pipeline.
    pub fn pipeline(&self) -> &SleuthPipeline {
        &self.pipeline
    }
}

impl Drop for ModelLease {
    fn drop(&mut self) {
        let mut state = self.registry.lock();
        if let Some(count) = state.leases.get_mut(&self.version.0) {
            *count -= 1;
            if *count == 0 {
                state.leases.remove(&self.version.0);
                self.registry.drained.notify_all();
            }
        }
    }
}

impl std::fmt::Debug for ModelLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelLease")
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use sleuth_core::pipeline::PipelineConfig;
    use sleuth_gnn::TrainConfig;
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;

    fn quick_pipeline(seed: u64) -> Arc<SleuthPipeline> {
        let app = presets::synthetic(8, 1);
        let train = CorpusBuilder::new(&app)
            .seed(seed)
            .normal_traces(40)
            .plain_traces();
        let config = PipelineConfig {
            train: TrainConfig {
                epochs: 2,
                batch_traces: 16,
                lr: 1e-2,
                seed: 0,
            },
            ..PipelineConfig::default()
        };
        Arc::new(SleuthPipeline::fit(&train, &config))
    }

    #[test]
    fn empty_registry_has_no_lease_and_accepts_first_publish() {
        let registry = Arc::new(ModelRegistry::new());
        assert!(registry.lease().is_none());
        assert_eq!(registry.current_version(), None);
        let v = registry.publish(quick_pipeline(1));
        assert_eq!(v, ModelVersion(1));
        assert_eq!(registry.lease().unwrap().version(), ModelVersion(1));
    }

    #[test]
    fn versions_are_monotonic_and_leases_track_current() {
        let registry = Arc::new(ModelRegistry::new());
        let v1 = registry.publish(quick_pipeline(1));
        let v2 = registry.publish(quick_pipeline(2));
        assert!(v2 > v1);
        assert_eq!(registry.current_version(), Some(v2));
        assert_eq!(registry.lease().unwrap().version(), v2);
    }

    #[test]
    fn publish_drains_outstanding_leases() {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(quick_pipeline(1));
        let lease = registry.lease().unwrap();

        let publisher = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || registry.publish(quick_pipeline(2)))
        };
        // The publisher must block while the v1 lease is live; readers
        // already see v2.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!publisher.is_finished(), "publish returned before drain");
        assert_eq!(registry.current_version(), Some(ModelVersion(2)));
        drop(lease);
        assert_eq!(publisher.join().unwrap(), ModelVersion(2));
    }

    #[test]
    fn leases_taken_after_publish_do_not_block_it() {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(quick_pipeline(1));
        let v2 = registry.publish(quick_pipeline(2));
        // A lease on the *current* version never blocks its own publish.
        let lease = registry.lease().unwrap();
        assert_eq!(lease.version(), v2);
    }
}
