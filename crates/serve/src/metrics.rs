//! Built-in serving metrics: lock-free counters and fixed-bucket
//! histograms, snapshotable as plain structs and renderable as
//! Prometheus-style exposition text.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::registry::ModelVersion;
use crate::sync::lock_or_recover;

/// Number of log₂ histogram buckets; bucket `i` covers values in
/// `[2^(i−1), 2^i)` (bucket 0 holds zeros), the last bucket is
/// open-ended.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log₂ histogram (e.g. microsecond latencies, queue
/// depths). Thread-safe; recording is two relaxed atomic adds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

fn bucket_of(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Plain-struct snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (log₂ buckets).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into this snapshot: per-bucket counts, total count,
    /// and sum all add. Merging histograms recorded by different
    /// processes is exact because the buckets are fixed.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Upper bound (exclusive) of the smallest bucket prefix holding at
    /// least `q` (0..=1) of the observations — a coarse quantile.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let need = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= need {
                return if i >= 63 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }
}

/// All counters and histograms the serving runtime maintains. Shared
/// via `Arc` between the ingest front-end, shard workers, and the RCA
/// stage.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Spans offered to `submit_batch` (before admission control).
    pub spans_submitted: Counter,
    /// Spans admitted to a shard queue.
    pub spans_enqueued: Counter,
    /// Spans refused because the shard queue was full (`Reject` policy).
    pub spans_rejected: Counter,
    /// Spans dropped from the front of a full shard queue (`DropOldest`).
    pub spans_shed: Counter,
    /// Spans dropped by collector cap eviction inside a shard.
    pub spans_evicted: Counter,
    /// Retransmitted spans discarded by collector dedup.
    pub spans_deduped: Counter,
    /// Spans persisted into shard trace stores.
    pub spans_stored: Counter,
    /// Traces whose idle window elapsed (assembled and handed to RCA).
    pub traces_completed: Counter,
    /// Completed span sets that failed trace assembly.
    pub traces_malformed: Counter,
    /// Completed traces flagged anomalous by the detector.
    pub traces_anomalous: Counter,
    /// Root-cause verdicts emitted.
    pub verdicts_emitted: Counter,
    /// End-to-end RCA latency per anomalous trace, microseconds.
    pub rca_latency_us: Histogram,
    /// Shard queue depth sampled at each submit.
    pub queue_depth: Histogram,
    /// Model hot-swaps completed (the runtime's initial publish is not
    /// a swap and is excluded).
    pub model_swaps: Counter,
    /// Wall-clock time each swap spent draining in-flight RCA work on
    /// retired model versions, microseconds.
    pub swap_drain_us: Histogram,
    /// Refreshed pipelines published by the background refresher.
    pub baseline_refreshes: Counter,
    /// Completed traces folded into the streaming baseline sketches.
    pub refresh_traces_folded: Counter,
    /// Completed-trace *handles* shed from the refresh queue when the
    /// refresher lags (outside span-conservation accounting: the
    /// original spans are already stored).
    pub refresh_traces_shed: Counter,
    /// Traces folded between consecutive refresh publishes — how stale
    /// the served baselines get before each refresh lands.
    pub refresh_staleness_traces: Histogram,
    /// Poisoned `Mutex` acquisitions recovered by
    /// [`crate::sync::lock_or_recover`]. Behind an `Arc` so queues and
    /// stores constructed before the registry can share the handle.
    pub lock_poisoned: Arc<Counter>,
    /// Traces (or span batches) moved to the quarantine store.
    pub poison_traces: Counter,
    /// Quarantine entries dropped because the store overflowed.
    pub quarantine_dropped: Counter,
    /// Spans whose batch was quarantined by a shard panic before
    /// reaching the collector (a span-conservation term).
    pub spans_quarantined: Counter,
    /// Verdicts produced by the cheap degraded path.
    pub verdicts_degraded: Counter,
    /// Circuit-breaker trips (closed/half-open → open).
    pub breaker_trips: Counter,
    /// Verdicts emitted per model version.
    verdicts_by_version: Mutex<BTreeMap<u64, u64>>,
    /// Per-RCA-worker localisation latency, microseconds, keyed by
    /// worker id. Workers register lazily via
    /// [`MetricsRegistry::rca_worker_latency`].
    rca_worker_latency_us: Mutex<BTreeMap<usize, Arc<Histogram>>>,
    /// Caught worker panics, keyed by (stage, worker id).
    worker_panics: Mutex<BTreeMap<(&'static str, usize), u64>>,
    /// Supervised worker restarts, keyed by (stage, worker id).
    worker_restarts: Mutex<BTreeMap<(&'static str, usize), u64>>,
    /// Spans refused at `submit_batch`, keyed by reason
    /// (`queue_full`, `inverted_interval`).
    spans_rejected_by_reason: Mutex<BTreeMap<&'static str, u64>>,
    /// Degraded verdicts by ladder rung (`breaker_open`,
    /// `queue_high_water`, `deadline`).
    degraded_by_reason: Mutex<BTreeMap<&'static str, u64>>,
    /// Quarantined entries by reason (`assembly`, `rca_panic`,
    /// `shard_panic`).
    quarantined_by_reason: Mutex<BTreeMap<&'static str, u64>>,
}

/// Frozen view of every metric, cheap to copy around and assert on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub spans_submitted: u64,
    pub spans_enqueued: u64,
    pub spans_rejected: u64,
    pub spans_shed: u64,
    pub spans_evicted: u64,
    pub spans_deduped: u64,
    pub spans_stored: u64,
    pub traces_completed: u64,
    pub traces_malformed: u64,
    pub traces_anomalous: u64,
    pub verdicts_emitted: u64,
    pub rca_latency_us: HistogramSnapshot,
    pub queue_depth: HistogramSnapshot,
    pub model_swaps: u64,
    pub swap_drain_us: HistogramSnapshot,
    pub baseline_refreshes: u64,
    pub refresh_traces_folded: u64,
    pub refresh_traces_shed: u64,
    pub refresh_staleness_traces: HistogramSnapshot,
    pub lock_poisoned: u64,
    pub poison_traces: u64,
    pub quarantine_dropped: u64,
    pub spans_quarantined: u64,
    pub verdicts_degraded: u64,
    pub breaker_trips: u64,
    /// Verdicts emitted per model version, ascending by version.
    pub verdicts_by_version: Vec<(u64, u64)>,
    /// Per-RCA-worker latency histograms, ascending by worker id.
    pub rca_worker_latency_us: Vec<(usize, HistogramSnapshot)>,
    /// Caught panics per (stage, worker), ascending.
    pub worker_panics: Vec<(String, usize, u64)>,
    /// Worker restarts per (stage, worker), ascending.
    pub worker_restarts: Vec<(String, usize, u64)>,
    /// Rejected spans per reason, ascending by reason.
    pub spans_rejected_by_reason: Vec<(String, u64)>,
    /// Degraded verdicts per ladder rung, ascending by reason.
    pub degraded_by_reason: Vec<(String, u64)>,
    /// Quarantined entries per reason, ascending by reason.
    pub quarantined_by_reason: Vec<(String, u64)>,
}

impl MetricsRegistry {
    /// Count one verdict against the model version that produced it.
    pub fn record_verdict_version(&self, version: ModelVersion) {
        *lock_or_recover(&self.verdicts_by_version, Some(&self.lock_poisoned))
            .entry(version.0)
            .or_insert(0) += 1;
    }

    /// The latency histogram for RCA worker `worker_id`, registering
    /// it on first use.
    pub fn rca_worker_latency(&self, worker_id: usize) -> Arc<Histogram> {
        Arc::clone(
            lock_or_recover(&self.rca_worker_latency_us, Some(&self.lock_poisoned))
                .entry(worker_id)
                .or_default(),
        )
    }

    /// Count one caught panic for worker `worker` of `stage`
    /// (`"rca"`, `"shard"`, or `"refresh"`).
    pub fn record_worker_panic(&self, stage: &'static str, worker: usize) {
        *lock_or_recover(&self.worker_panics, Some(&self.lock_poisoned))
            .entry((stage, worker))
            .or_insert(0) += 1;
    }

    /// Count one supervised restart for worker `worker` of `stage`.
    pub fn record_worker_restart(&self, stage: &'static str, worker: usize) {
        *lock_or_recover(&self.worker_restarts, Some(&self.lock_poisoned))
            .entry((stage, worker))
            .or_insert(0) += 1;
    }

    /// Count `n` spans rejected at admission for `reason`.
    pub fn record_rejected_reason(&self, reason: &'static str, n: u64) {
        if n == 0 {
            return;
        }
        *lock_or_recover(&self.spans_rejected_by_reason, Some(&self.lock_poisoned))
            .entry(reason)
            .or_insert(0) += n;
    }

    /// Count one degraded verdict for ladder rung `reason`.
    pub fn record_degraded(&self, reason: &'static str) {
        *lock_or_recover(&self.degraded_by_reason, Some(&self.lock_poisoned))
            .entry(reason)
            .or_insert(0) += 1;
    }

    /// Count one quarantined entry for `reason`.
    pub fn record_quarantined(&self, reason: &'static str) {
        *lock_or_recover(&self.quarantined_by_reason, Some(&self.lock_poisoned))
            .entry(reason)
            .or_insert(0) += 1;
    }

    /// Caught panics summed over one stage's workers.
    pub fn worker_panics_for_stage(&self, stage: &str) -> u64 {
        lock_or_recover(&self.worker_panics, Some(&self.lock_poisoned))
            .iter()
            .filter(|((s, _), _)| *s == stage)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Freeze every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            spans_submitted: self.spans_submitted.get(),
            spans_enqueued: self.spans_enqueued.get(),
            spans_rejected: self.spans_rejected.get(),
            spans_shed: self.spans_shed.get(),
            spans_evicted: self.spans_evicted.get(),
            spans_deduped: self.spans_deduped.get(),
            spans_stored: self.spans_stored.get(),
            traces_completed: self.traces_completed.get(),
            traces_malformed: self.traces_malformed.get(),
            traces_anomalous: self.traces_anomalous.get(),
            verdicts_emitted: self.verdicts_emitted.get(),
            rca_latency_us: self.rca_latency_us.snapshot(),
            queue_depth: self.queue_depth.snapshot(),
            model_swaps: self.model_swaps.get(),
            swap_drain_us: self.swap_drain_us.snapshot(),
            baseline_refreshes: self.baseline_refreshes.get(),
            refresh_traces_folded: self.refresh_traces_folded.get(),
            refresh_traces_shed: self.refresh_traces_shed.get(),
            refresh_staleness_traces: self.refresh_staleness_traces.snapshot(),
            lock_poisoned: self.lock_poisoned.get(),
            poison_traces: self.poison_traces.get(),
            quarantine_dropped: self.quarantine_dropped.get(),
            spans_quarantined: self.spans_quarantined.get(),
            verdicts_degraded: self.verdicts_degraded.get(),
            breaker_trips: self.breaker_trips.get(),
            verdicts_by_version: lock_or_recover(
                &self.verdicts_by_version,
                Some(&self.lock_poisoned),
            )
            .iter()
            .map(|(&v, &n)| (v, n))
            .collect(),
            rca_worker_latency_us: lock_or_recover(
                &self.rca_worker_latency_us,
                Some(&self.lock_poisoned),
            )
            .iter()
            .map(|(&w, h)| (w, h.snapshot()))
            .collect(),
            worker_panics: lock_or_recover(&self.worker_panics, Some(&self.lock_poisoned))
                .iter()
                .map(|(&(s, w), &n)| (s.to_string(), w, n))
                .collect(),
            worker_restarts: lock_or_recover(&self.worker_restarts, Some(&self.lock_poisoned))
                .iter()
                .map(|(&(s, w), &n)| (s.to_string(), w, n))
                .collect(),
            spans_rejected_by_reason: lock_or_recover(
                &self.spans_rejected_by_reason,
                Some(&self.lock_poisoned),
            )
            .iter()
            .map(|(&r, &n)| (r.to_string(), n))
            .collect(),
            degraded_by_reason: lock_or_recover(
                &self.degraded_by_reason,
                Some(&self.lock_poisoned),
            )
            .iter()
            .map(|(&r, &n)| (r.to_string(), n))
            .collect(),
            quarantined_by_reason: lock_or_recover(
                &self.quarantined_by_reason,
                Some(&self.lock_poisoned),
            )
            .iter()
            .map(|(&r, &n)| (r.to_string(), n))
            .collect(),
        }
    }
}

/// Merge two label→count series, summing counts per label.
fn merge_labeled<K: Ord + Clone>(into: &mut Vec<(K, u64)>, other: &[(K, u64)]) {
    let mut map: BTreeMap<K, u64> = into.drain(..).collect();
    for (k, n) in other {
        *map.entry(k.clone()).or_insert(0) += n;
    }
    *into = map.into_iter().collect();
}

impl MetricsSnapshot {
    /// Spans lost to admission control or eviction. Deduped spans are
    /// not counted: their payload survived via the first copy.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_rejected + self.spans_shed + self.spans_evicted
    }

    /// Fold `other` into this snapshot: counters sum, histograms merge
    /// bucket-wise, labeled series sum per label. This is the one
    /// audited aggregation path — a router combining N shard-process
    /// snapshots uses it, so the span-conservation identity
    /// (`spans_submitted` = stored + rejected + shed + evicted +
    /// deduped + quarantined) holds on the merged snapshot exactly
    /// when it holds on every input.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.spans_submitted += other.spans_submitted;
        self.spans_enqueued += other.spans_enqueued;
        self.spans_rejected += other.spans_rejected;
        self.spans_shed += other.spans_shed;
        self.spans_evicted += other.spans_evicted;
        self.spans_deduped += other.spans_deduped;
        self.spans_stored += other.spans_stored;
        self.traces_completed += other.traces_completed;
        self.traces_malformed += other.traces_malformed;
        self.traces_anomalous += other.traces_anomalous;
        self.verdicts_emitted += other.verdicts_emitted;
        self.rca_latency_us.merge(&other.rca_latency_us);
        self.queue_depth.merge(&other.queue_depth);
        self.model_swaps += other.model_swaps;
        self.swap_drain_us.merge(&other.swap_drain_us);
        self.baseline_refreshes += other.baseline_refreshes;
        self.refresh_traces_folded += other.refresh_traces_folded;
        self.refresh_traces_shed += other.refresh_traces_shed;
        self.refresh_staleness_traces
            .merge(&other.refresh_staleness_traces);
        self.lock_poisoned += other.lock_poisoned;
        self.poison_traces += other.poison_traces;
        self.quarantine_dropped += other.quarantine_dropped;
        self.spans_quarantined += other.spans_quarantined;
        self.verdicts_degraded += other.verdicts_degraded;
        self.breaker_trips += other.breaker_trips;
        merge_labeled(&mut self.verdicts_by_version, &other.verdicts_by_version);
        merge_labeled(
            &mut self.spans_rejected_by_reason,
            &other.spans_rejected_by_reason,
        );
        merge_labeled(&mut self.degraded_by_reason, &other.degraded_by_reason);
        merge_labeled(
            &mut self.quarantined_by_reason,
            &other.quarantined_by_reason,
        );
        // Worker-keyed series: workers in different processes are
        // distinct even when they share an index, so entries merge per
        // (stage, worker) key — a router rewrites worker ids to global
        // ones before merging if it needs per-process attribution.
        let mut latency: BTreeMap<usize, HistogramSnapshot> =
            self.rca_worker_latency_us.drain(..).collect();
        for (w, h) in &other.rca_worker_latency_us {
            latency.entry(*w).or_default().merge(h);
        }
        self.rca_worker_latency_us = latency.into_iter().collect();
        let mut panics: BTreeMap<(String, usize), u64> = self
            .worker_panics
            .drain(..)
            .map(|(s, w, n)| ((s, w), n))
            .collect();
        for (s, w, n) in &other.worker_panics {
            *panics.entry((s.clone(), *w)).or_insert(0) += n;
        }
        self.worker_panics = panics.into_iter().map(|((s, w), n)| (s, w, n)).collect();
        let mut restarts: BTreeMap<(String, usize), u64> = self
            .worker_restarts
            .drain(..)
            .map(|(s, w, n)| ((s, w), n))
            .collect();
        for (s, w, n) in &other.worker_restarts {
            *restarts.entry((s.clone(), *w)).or_insert(0) += n;
        }
        self.worker_restarts = restarts.into_iter().map(|((s, w), n)| (s, w, n)).collect();
    }

    /// Prometheus-style exposition text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let counters = [
            ("sleuth_serve_spans_submitted_total", self.spans_submitted),
            ("sleuth_serve_spans_enqueued_total", self.spans_enqueued),
            ("sleuth_serve_spans_rejected_total", self.spans_rejected),
            ("sleuth_serve_spans_shed_total", self.spans_shed),
            ("sleuth_serve_spans_evicted_total", self.spans_evicted),
            ("sleuth_serve_spans_deduped_total", self.spans_deduped),
            ("sleuth_serve_spans_stored_total", self.spans_stored),
            ("sleuth_serve_traces_completed_total", self.traces_completed),
            ("sleuth_serve_traces_malformed_total", self.traces_malformed),
            ("sleuth_serve_traces_anomalous_total", self.traces_anomalous),
            ("sleuth_serve_verdicts_emitted_total", self.verdicts_emitted),
            ("sleuth_serve_model_swaps_total", self.model_swaps),
            (
                "sleuth_serve_baseline_refreshes_total",
                self.baseline_refreshes,
            ),
            (
                "sleuth_serve_refresh_traces_folded_total",
                self.refresh_traces_folded,
            ),
            (
                "sleuth_serve_refresh_traces_shed_total",
                self.refresh_traces_shed,
            ),
            ("sleuth_serve_lock_poisoned_total", self.lock_poisoned),
            ("sleuth_serve_poison_traces_total", self.poison_traces),
            (
                "sleuth_serve_quarantine_dropped_total",
                self.quarantine_dropped,
            ),
            (
                "sleuth_serve_spans_quarantined_total",
                self.spans_quarantined,
            ),
            (
                "sleuth_serve_verdicts_degraded_total",
                self.verdicts_degraded,
            ),
            ("sleuth_serve_breaker_trips_total", self.breaker_trips),
        ];
        for (name, value) in counters {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (stage, worker, count) in &self.worker_panics {
            out.push_str(&format!(
                "sleuth_serve_worker_panics_total{{stage=\"{stage}\",worker=\"{worker}\"}} {count}\n"
            ));
        }
        for (stage, worker, count) in &self.worker_restarts {
            out.push_str(&format!(
                "sleuth_serve_worker_restarts_total{{stage=\"{stage}\",worker=\"{worker}\"}} {count}\n"
            ));
        }
        for (reason, count) in &self.spans_rejected_by_reason {
            out.push_str(&format!(
                "sleuth_serve_spans_rejected_total{{reason=\"{reason}\"}} {count}\n"
            ));
        }
        for (reason, count) in &self.degraded_by_reason {
            out.push_str(&format!(
                "sleuth_serve_degraded_total{{reason=\"{reason}\"}} {count}\n"
            ));
        }
        for (reason, count) in &self.quarantined_by_reason {
            out.push_str(&format!(
                "sleuth_serve_quarantined_total{{reason=\"{reason}\"}} {count}\n"
            ));
        }
        for (version, count) in &self.verdicts_by_version {
            out.push_str(&format!(
                "sleuth_serve_verdicts_total{{model_version=\"{version}\"}} {count}\n"
            ));
        }
        for (worker, h) in &self.rca_worker_latency_us {
            out.push_str(&format!(
                "sleuth_serve_rca_worker_latency_us_sum{{worker=\"{worker}\"}} {}\n",
                h.sum
            ));
            out.push_str(&format!(
                "sleuth_serve_rca_worker_latency_us_count{{worker=\"{worker}\"}} {}\n",
                h.count
            ));
        }
        for (name, h) in [
            ("sleuth_serve_rca_latency_us", &self.rca_latency_us),
            ("sleuth_serve_queue_depth", &self.queue_depth),
            ("sleuth_serve_swap_drain_us", &self.swap_drain_us),
            (
                "sleuth_serve_refresh_staleness_traces",
                &self.refresh_staleness_traces,
            ),
        ] {
            let mut cumulative = 0;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let le = if i >= 63 { u64::MAX } else { 1u64 << i };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::default();
        m.spans_submitted.add(10);
        m.spans_submitted.inc();
        assert_eq!(m.snapshot().spans_submitted, 11);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.buckets[0], 1); // zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1); // clamped
    }

    #[test]
    fn quantile_bound_covers_mass() {
        let h = Histogram::default();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.quantile_upper_bound(0.5) <= 64);
        assert!(s.quantile_upper_bound(1.0) >= 64);
        assert!((s.mean() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn per_version_verdicts_accumulate_and_render() {
        let m = MetricsRegistry::default();
        m.record_verdict_version(ModelVersion(1));
        m.record_verdict_version(ModelVersion(2));
        m.record_verdict_version(ModelVersion(2));
        let s = m.snapshot();
        assert_eq!(s.verdicts_by_version, vec![(1, 1), (2, 2)]);
        let text = s.render_text();
        assert!(text.contains("sleuth_serve_verdicts_total{model_version=\"1\"} 1"));
        assert!(text.contains("sleuth_serve_verdicts_total{model_version=\"2\"} 2"));
        assert!(text.contains("sleuth_serve_model_swaps_total 0"));
    }

    #[test]
    fn per_worker_latency_registers_and_renders() {
        let m = MetricsRegistry::default();
        m.rca_worker_latency(0).record(100);
        m.rca_worker_latency(2).record(50);
        m.rca_worker_latency(0).record(300);
        let s = m.snapshot();
        assert_eq!(s.rca_worker_latency_us.len(), 2);
        assert_eq!(s.rca_worker_latency_us[0].0, 0);
        assert_eq!(s.rca_worker_latency_us[0].1.count, 2);
        assert_eq!(s.rca_worker_latency_us[0].1.sum, 400);
        assert_eq!(s.rca_worker_latency_us[1].0, 2);
        let text = s.render_text();
        assert!(text.contains("sleuth_serve_rca_worker_latency_us_count{worker=\"0\"} 2"));
        assert!(text.contains("sleuth_serve_rca_worker_latency_us_sum{worker=\"2\"} 50"));
    }

    #[test]
    fn resilience_series_accumulate_and_render() {
        let m = MetricsRegistry::default();
        m.record_worker_panic("rca", 1);
        m.record_worker_panic("rca", 1);
        m.record_worker_restart("rca", 1);
        m.record_rejected_reason("inverted_interval", 3);
        m.record_rejected_reason("queue_full", 0); // zero is elided
        m.record_degraded("breaker_open");
        m.record_quarantined("rca_panic");
        m.poison_traces.inc();
        m.breaker_trips.inc();
        let s = m.snapshot();
        assert_eq!(s.worker_panics, vec![("rca".to_string(), 1, 2)]);
        assert_eq!(s.worker_restarts, vec![("rca".to_string(), 1, 1)]);
        assert_eq!(
            s.spans_rejected_by_reason,
            vec![("inverted_interval".to_string(), 3)]
        );
        assert_eq!(m.worker_panics_for_stage("rca"), 2);
        assert_eq!(m.worker_panics_for_stage("shard"), 0);
        let text = s.render_text();
        assert!(text.contains("sleuth_serve_worker_panics_total{stage=\"rca\",worker=\"1\"} 2"));
        assert!(text.contains("sleuth_serve_worker_restarts_total{stage=\"rca\",worker=\"1\"} 1"));
        assert!(text.contains("sleuth_serve_spans_rejected_total{reason=\"inverted_interval\"} 3"));
        assert!(text.contains("sleuth_serve_degraded_total{reason=\"breaker_open\"} 1"));
        assert!(text.contains("sleuth_serve_quarantined_total{reason=\"rca_panic\"} 1"));
        assert!(text.contains("sleuth_serve_poison_traces_total 1"));
        assert!(text.contains("sleuth_serve_breaker_trips_total 1"));
    }

    #[test]
    fn merge_sums_counters_histograms_and_labels() {
        let a = MetricsRegistry::default();
        a.spans_submitted.add(10);
        a.spans_stored.add(7);
        a.spans_rejected.add(3);
        a.rca_latency_us.record(100);
        a.record_verdict_version(ModelVersion(1));
        a.record_rejected_reason("queue_full", 3);
        a.record_worker_panic("rca", 0);
        a.rca_worker_latency(0).record(100);
        let b = MetricsRegistry::default();
        b.spans_submitted.add(5);
        b.spans_stored.add(5);
        b.rca_latency_us.record(900);
        b.record_verdict_version(ModelVersion(1));
        b.record_verdict_version(ModelVersion(2));
        b.record_rejected_reason("inverted_interval", 1);
        b.record_worker_panic("rca", 0);
        b.rca_worker_latency(1).record(50);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.spans_submitted, 15);
        assert_eq!(merged.spans_stored, 12);
        assert_eq!(merged.spans_rejected, 3);
        assert_eq!(merged.rca_latency_us.count, 2);
        assert_eq!(merged.rca_latency_us.sum, 1000);
        assert_eq!(merged.verdicts_by_version, vec![(1, 2), (2, 1)]);
        assert_eq!(
            merged.spans_rejected_by_reason,
            vec![
                ("inverted_interval".to_string(), 1),
                ("queue_full".to_string(), 3)
            ]
        );
        assert_eq!(merged.worker_panics, vec![("rca".to_string(), 0, 2)]);
        assert_eq!(merged.rca_worker_latency_us.len(), 2);
        // Merging an empty snapshot is the identity.
        let before = merged.clone();
        merged.merge(&MetricsSnapshot::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn render_text_mentions_all_counters() {
        let m = MetricsRegistry::default();
        m.verdicts_emitted.add(3);
        m.rca_latency_us.record(900);
        let text = m.snapshot().render_text();
        assert!(text.contains("sleuth_serve_verdicts_emitted_total 3"));
        assert!(text.contains("sleuth_serve_rca_latency_us_count 1"));
        assert!(text.contains("le=\"1024\""));
    }
}
