//! Opt-in training diagnostics (`cargo test -p sleuth-gnn -- --ignored
//! --nocapture`): convergence and generative-quality summaries that are
//! useful when tuning hyper-parameters but too slow/verbose for CI.

use sleuth_gnn::*;
use sleuth_synth::presets;
use sleuth_synth::workload::CorpusBuilder;

#[test]
#[ignore = "diagnostic: prints convergence curves"]
fn training_convergence_summary() {
    let app = presets::synthetic(16, 1);
    let corpus = CorpusBuilder::new(&app).seed(10).normal_traces(200);
    let mut f = Featurizer::new(8);
    let data: Vec<EncodedTrace> = corpus.traces.iter().map(|t| f.encode(&t.trace)).collect();
    for (epochs, lr) in [(20usize, 5e-3f32), (40, 1e-2), (80, 1e-2)] {
        let mut model = SleuthModel::new(&ModelConfig::default(), 12);
        let rep = model.train(
            &data,
            &TrainConfig { epochs, batch_traces: 32, lr, seed: 2 },
        );
        let mut ok = 0;
        for (enc, st) in data.iter().zip(&corpus.traces) {
            let pred = model.predict(enc).root_duration_us();
            let actual = st.trace.total_duration_us() as f32;
            if pred > actual / 3.0 && pred < actual * 3.0 {
                ok += 1;
            }
        }
        println!(
            "epochs={epochs} lr={lr}: loss {:.4} generative-within-3x {}/{} wall {:?}",
            rep.final_loss(),
            ok,
            data.len(),
            rep.wall
        );
    }
}
