//! Trace → tensor encoding (§3.2) and graph batching.

use sleuth_embed::{EmbeddingInterner, SemanticEmbedder};
use sleuth_tensor::Tensor;
use sleuth_trace::{exclusive, transform, SpanKind, Trace};

/// Turns traces into the model's numeric representation: per span a
/// feature vector `[scaled duration, error, semantic embedding…]`, an
/// exclusive-feature vector `[scaled exclusive duration, exclusive
/// error]`, and the parent topology.
#[derive(Debug, Clone)]
pub struct Featurizer {
    interner: EmbeddingInterner,
    sem_dim: usize,
}

impl Featurizer {
    /// Create a featurizer with `sem_dim`-dimensional semantic
    /// embeddings of `service`+`name` (the sentence-embedding substitute;
    /// see `sleuth-embed`).
    pub fn new(sem_dim: usize) -> Self {
        Featurizer {
            interner: EmbeddingInterner::new(SemanticEmbedder::new(sem_dim)),
            sem_dim,
        }
    }

    /// Semantic embedding dimensionality.
    pub fn sem_dim(&self) -> usize {
        self.sem_dim
    }

    /// Encode one trace.
    pub fn encode(&mut self, trace: &Trace) -> EncodedTrace {
        let ex_d = exclusive::exclusive_durations(trace);
        let ex_e = exclusive::exclusive_errors(trace);
        let n = trace.len();
        let mut sem = Vec::with_capacity(n);
        let mut d_scaled = Vec::with_capacity(n);
        let mut e = Vec::with_capacity(n);
        let mut d_star_scaled = Vec::with_capacity(n);
        let mut e_star = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        let mut kinds = Vec::with_capacity(n);
        for (i, span) in trace.iter() {
            let key = format!("{} {}", span.service, span.name);
            let id = self.interner.intern(&key);
            sem.push(self.interner.vector(id).to_vec());
            d_scaled.push(transform::scale_duration(span.duration_us()));
            e.push(if span.is_error() { 1.0 } else { 0.0 });
            d_star_scaled.push(transform::scale_duration(ex_d[i]));
            e_star.push(if ex_e[i] { 1.0 } else { 0.0 });
            parent.push(trace.parent(i));
            kinds.push(span.kind);
        }
        EncodedTrace {
            sem,
            d_scaled,
            e,
            d_star_scaled,
            e_star,
            parent,
            kinds,
        }
    }
}

/// One encoded trace (indices follow the trace's topological order).
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedTrace {
    /// Per-span semantic embedding of `service name`.
    pub sem: Vec<Vec<f32>>,
    /// Observed span durations, log-scaled.
    pub d_scaled: Vec<f32>,
    /// Observed error flags (0/1).
    pub e: Vec<f32>,
    /// Exclusive durations, log-scaled.
    pub d_star_scaled: Vec<f32>,
    /// Exclusive error flags (0/1).
    pub e_star: Vec<f32>,
    /// Parent index per span (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Span kinds (used by RCA affiliation, not by the model).
    pub kinds: Vec<SpanKind>,
}

impl EncodedTrace {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.d_scaled.len()
    }

    /// Whether the trace is empty (never true for assembled traces).
    pub fn is_empty(&self) -> bool {
        self.d_scaled.is_empty()
    }

    /// Semantic dimensionality.
    pub fn sem_dim(&self) -> usize {
        self.sem.first().map(|v| v.len()).unwrap_or(0)
    }
}

/// Several encoded traces packed as one disjoint graph.
#[derive(Debug, Clone)]
pub struct GraphBatch {
    /// Node features `[N, 2 + sem_dim]`: `[d, e, sem…]`.
    pub x: Tensor,
    /// Exclusive features `[N, 2]`: `[d*, e*]`.
    pub x_star: Tensor,
    /// Global node index of each non-root node ("child rows").
    pub child_nodes: Vec<usize>,
    /// Global parent index of each child row (segment ids).
    pub parent_of_child: Vec<usize>,
    /// Total node count.
    pub n: usize,
    /// Offset of each trace's first node.
    pub offsets: Vec<usize>,
    /// Scaled-duration targets per node.
    pub d_target: Vec<f32>,
    /// Error targets per node.
    pub e_target: Vec<f32>,
}

impl GraphBatch {
    /// Pack encoded traces into one batch.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or semantic dimensions differ.
    pub fn pack(traces: &[&EncodedTrace]) -> Self {
        assert!(!traces.is_empty(), "cannot pack an empty batch");
        let sem_dim = traces[0].sem_dim();
        let n: usize = traces.iter().map(|t| t.len()).sum();
        let mut x = Vec::with_capacity(n * (2 + sem_dim));
        let mut x_star = Vec::with_capacity(n * 2);
        let mut child_nodes = Vec::new();
        let mut parent_of_child = Vec::new();
        let mut offsets = Vec::with_capacity(traces.len());
        let mut d_target = Vec::with_capacity(n);
        let mut e_target = Vec::with_capacity(n);
        let mut base = 0usize;
        for t in traces {
            assert_eq!(t.sem_dim(), sem_dim, "semantic dims must agree");
            offsets.push(base);
            for i in 0..t.len() {
                x.push(t.d_scaled[i]);
                x.push(t.e[i]);
                x.extend_from_slice(&t.sem[i]);
                x_star.push(t.d_star_scaled[i]);
                x_star.push(t.e_star[i]);
                d_target.push(t.d_scaled[i]);
                e_target.push(t.e[i]);
                if let Some(p) = t.parent[i] {
                    child_nodes.push(base + i);
                    parent_of_child.push(base + p);
                }
            }
            base += t.len();
        }
        GraphBatch {
            x: Tensor::new(vec![n, 2 + sem_dim], x),
            x_star: Tensor::new(vec![n, 2], x_star),
            child_nodes,
            parent_of_child,
            n,
            offsets,
            d_target,
            e_target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleuth_trace::{Span, StatusCode};

    fn small_trace(id: u64) -> Trace {
        Trace::assemble(vec![
            Span::builder(id, 1, "frontend", "GET /").time(0, 10_000).build(),
            Span::builder(id, 2, "db", "query")
                .parent(1)
                .kind(SpanKind::Client)
                .time(1_000, 6_000)
                .status(StatusCode::Error)
                .build(),
        ])
        .unwrap()
    }

    #[test]
    fn encoding_shapes_and_values() {
        let mut f = Featurizer::new(8);
        let enc = f.encode(&small_trace(1));
        assert_eq!(enc.len(), 2);
        assert_eq!(enc.sem_dim(), 8);
        // Root duration 10_000 µs scales to 0.
        assert!((enc.d_scaled[0]).abs() < 1e-6);
        assert_eq!(enc.e, vec![0.0, 1.0]);
        // Child is a leaf: exclusive duration == duration.
        assert_eq!(enc.d_star_scaled[1], enc.d_scaled[1]);
        // Child error is exclusive (no failed grandchildren).
        assert_eq!(enc.e_star, vec![0.0, 1.0]);
        assert_eq!(enc.parent, vec![None, Some(0)]);
    }

    #[test]
    fn same_operation_shares_embedding() {
        let mut f = Featurizer::new(8);
        let a = f.encode(&small_trace(1));
        let b = f.encode(&small_trace(2));
        assert_eq!(a.sem, b.sem);
    }

    #[test]
    fn pack_concatenates_with_offsets() {
        let mut f = Featurizer::new(4);
        let e1 = f.encode(&small_trace(1));
        let e2 = f.encode(&small_trace(2));
        let batch = GraphBatch::pack(&[&e1, &e2]);
        assert_eq!(batch.n, 4);
        assert_eq!(batch.offsets, vec![0, 2]);
        assert_eq!(batch.x.shape(), &[4, 6]);
        assert_eq!(batch.x_star.shape(), &[4, 2]);
        assert_eq!(batch.child_nodes, vec![1, 3]);
        assert_eq!(batch.parent_of_child, vec![0, 2]);
        assert_eq!(batch.d_target.len(), 4);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn pack_rejects_empty() {
        let _ = GraphBatch::pack(&[]);
    }
}
