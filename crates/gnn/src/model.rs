//! The Sleuth model: Eq. 2–4 forward passes (training and generative).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use sleuth_tensor::nn::{Activation, Mlp, Params};
use sleuth_tensor::tape::{Bound, Tape, Var};
use sleuth_tensor::Tensor;
use sleuth_trace::transform::{GLOBAL_LOG_MEAN, GLOBAL_LOG_STD};

use crate::encode::{EncodedTrace, GraphBatch};

const MU: f32 = GLOBAL_LOG_MEAN;
const SIG: f32 = GLOBAL_LOG_STD;
const LOG_EPS: f32 = 1e-3;

/// Message-aggregation flavour of the GNN layer (§3.4.1, §6.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AggregatorKind {
    /// Graph Isomorphism Network aggregation over siblings:
    /// `(1 + ε)·x_j + Σ_{k∈S(j)} x_k` (the paper's choice).
    #[default]
    Gin,
    /// Vanilla GCN mean aggregation (the "Sleuth-GCN" baseline).
    Gcn,
}

/// Model hyper-parameters. The architecture is independent of any
/// application's RPC graph — the same (small, fixed-size) network serves
/// every topology, which is what enables transfer (§6.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Semantic embedding dimensionality (must match the featurizer).
    pub sem_dim: usize,
    /// Hidden width of `f_Θ`.
    pub hidden: usize,
    /// Aggregation flavour.
    pub aggregator: AggregatorKind,
    /// GIN self-loop weight ε.
    pub epsilon: f32,
    /// Constant added to the clip-gap head `h₁` (scaled space) before
    /// un-scaling, so the clipping knee `v` initialises near the
    /// timeout scale (`v − u ≈ 10^(4+bias)` µs).
    ///
    /// Note the knees are parameterised as `u' = 10^(σh₀+μ)` and
    /// `v' = u' + 10^(σ(h₁+bias)+μ)` — a deliberate deviation from the
    /// paper's `u' = h₁' − h₀'`, `v' = h₁' + h₀'`. The paper's form ties
    /// `u`'s resolution to `v`'s magnitude: once `v` sits at timeout
    /// scale (10⁶ µs), `u` is a difference of two 10⁶-scale
    /// exponentials and can no longer express the common `u ≈ 10³ µs`
    /// stably. The reparameterisation preserves every property Eq. 2
    /// needs (both knees positive, `u ≤ v`, the async case `v → u`) with
    /// decoupled scales.
    pub knee_bias: f32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            sem_dim: 8,
            hidden: 32,
            aggregator: AggregatorKind::Gin,
            epsilon: 0.5,
            knee_bias: 2.3,
        }
    }
}

/// Per-span predictions from a generative pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePrediction {
    /// Predicted (scaled) duration per span.
    pub d_scaled: Vec<f32>,
    /// Predicted error probability per span.
    pub e_prob: Vec<f32>,
}

impl TracePrediction {
    /// Predicted end-to-end duration (µs) — the root span's prediction.
    pub fn root_duration_us(&self) -> f32 {
        unscale_f(self.d_scaled[0])
    }

    /// Predicted probability the request fails.
    pub fn root_error_prob(&self) -> f32 {
        self.e_prob[0]
    }
}

pub(crate) fn unscale_f(x: f32) -> f32 {
    10f32.powf((SIG * x + MU).clamp(-8.0, 8.0))
}

pub(crate) fn scale_log_f(x: f32) -> f32 {
    (x.max(LOG_EPS).log10() - MU) / SIG
}

fn sigmoid_f(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The Sleuth trace GNN.
#[derive(Debug, Clone)]
pub struct SleuthModel {
    pub(crate) config: ModelConfig,
    pub(crate) params: Params,
    pub(crate) mlp: Mlp,
}

/// Serializable snapshot of a model (§4's model server stores these).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Model hyper-parameters.
    pub config: ModelConfig,
    /// Flattened parameter tensors.
    pub params: Vec<Vec<f32>>,
}

impl SleuthModel {
    /// Initialise a fresh model.
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut params = Params::new();
        let in_dim = 2 + (2 + config.sem_dim);
        let mlp = Mlp::new(
            &mut params,
            &[in_dim, config.hidden, 4],
            Activation::Relu,
            &mut rng,
        );
        SleuthModel {
            config: *config,
            params,
            mlp,
        }
    }

    /// The model's hyper-parameters.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of trainable scalars — constant in the application size,
    /// unlike Sage's per-node VAEs (§7.1).
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Mutable access to the parameter store (used by the trainer).
    pub(crate) fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Snapshot the model for storage or transfer.
    pub fn to_checkpoint(&self) -> Checkpoint {
        Checkpoint {
            config: self.config,
            params: self.params.to_flat(),
        }
    }

    /// Restore a model from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a description when the snapshot's shapes do not match its
    /// own config.
    pub fn from_checkpoint(ck: &Checkpoint) -> Result<Self, String> {
        let mut model = SleuthModel::new(&ck.config, 0);
        model.params.load_flat(&ck.params)?;
        Ok(model)
    }

    /// Teacher-forced forward pass: build `(tape, dhat, ehat, bound)`
    /// over a packed batch, with child states taken from observations.
    fn forward_teacher_forced(&self, batch: &GraphBatch) -> (Tape, Var, Var, Bound) {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let x = tape.leaf(batch.x.clone());
        let xs = tape.leaf(batch.x_star.clone());

        if batch.child_nodes.is_empty() {
            // Degenerate batch of single-span traces: predictions reduce
            // to the exclusive features.
            let dhat = tape.slice_cols(xs, 0, 1);
            let ehat = tape.slice_cols(xs, 1, 2);
            return (tape, dhat, ehat, bound);
        }

        let h = self.h_vectors(&tape, &bound, x, xs, batch);

        // Eq. 2 — duration decoder.
        let xc = tape.gather_rows(x, &batch.child_nodes);
        let kb = self.config.knee_bias;
        let u = tape.unscale(tape.slice_cols(h, 0, 1), MU, SIG);
        let gap = tape.unscale(tape.add_scalar(tape.slice_cols(h, 1, 2), kb), MU, SIG);
        let v = tape.add(u, gap);
        let d_child_scaled = tape.slice_cols(xc, 0, 1);
        let d_child = tape.unscale(d_child_scaled, MU, SIG);
        let contrib = tape.sub(
            tape.relu(tape.sub(d_child, u)),
            tape.relu(tape.sub(d_child, v)),
        );
        let wait = tape.segment_sum(contrib, &batch.parent_of_child, batch.n);
        let d_star = tape.unscale(tape.slice_cols(xs, 0, 1), MU, SIG);
        let dhat_prime = tape.add(wait, d_star);
        let dhat = tape.scale_log(dhat_prime, MU, SIG, LOG_EPS);

        // Eq. 3 — error decoder (see crate docs for the ±1 mapping and
        // the v-anchored duration gate).
        let e_child = tape.slice_cols(xc, 1, 2);
        let e_pm = tape.add_scalar(tape.scale(e_child, 2.0), -1.0);
        let h2 = tape.slice_cols(h, 2, 3);
        let h3 = tape.slice_cols(h, 3, 4);
        let gate_err = tape.sigmoid(tape.mul(h2, e_pm));
        let v_scaled = tape.scale_log(v, MU, SIG, LOG_EPS);
        let over_timeout = tape.sub(d_child_scaled, v_scaled);
        let gate_dur = tape.sigmoid(tape.mul(h3, over_timeout));
        let gate = tape.max_elem(gate_err, gate_dur);
        let prop = tape.segment_max(gate, &batch.parent_of_child, batch.n, 0.0);
        let e_star = tape.slice_cols(xs, 1, 2);
        let ehat = tape.max_elem(prop, e_star);

        (tape, dhat, ehat, bound)
    }

    /// Teacher-forced training forward pass over a packed batch.
    /// Returns the tape, the scalar loss var, and the parameter binding
    /// (for the optimiser).
    pub fn loss_on_batch(&self, batch: &GraphBatch) -> (Tape, Var, Bound) {
        let (tape, dhat, ehat, bound) = self.forward_teacher_forced(batch);
        let mse = tape.mse_loss(dhat, &batch.d_target);
        let bce = tape.bce_loss(ehat, &batch.e_target);
        let loss = tape.add(mse, bce);
        (tape, loss, bound)
    }

    /// Teacher-forced reconstruction of every span's (scaled) duration
    /// and error probability — the paper's training-time view, also
    /// usable for anomaly scoring.
    pub fn reconstruct(&self, batch: &GraphBatch) -> TracePrediction {
        let (tape, dhat, ehat, _bound) = self.forward_teacher_forced(batch);
        TracePrediction {
            d_scaled: tape.value(dhat).data().to_vec(),
            e_prob: tape.value(ehat).data().to_vec(),
        }
    }

    /// Eq. 4 — per-child parameter vectors `h_j` from the sibling
    /// aggregation concatenated with the parent's exclusive features.
    fn h_vectors(
        &self,
        tape: &Tape,
        bound: &Bound,
        x: Var,
        xs: Var,
        batch: &GraphBatch,
    ) -> Var {
        let xc = tape.gather_rows(x, &batch.child_nodes);
        let fam_sum = tape.segment_sum(xc, &batch.parent_of_child, batch.n);
        let gathered = tape.gather_rows(fam_sum, &batch.parent_of_child);
        let agg = match self.config.aggregator {
            AggregatorKind::Gin => {
                if self.config.epsilon != 0.0 {
                    tape.add(gathered, tape.scale(xc, self.config.epsilon))
                } else {
                    gathered
                }
            }
            AggregatorKind::Gcn => {
                // Mean over the family: divide by sibling count.
                let mut deg = vec![0f32; batch.n];
                for &p in &batch.parent_of_child {
                    deg[p] += 1.0;
                }
                let f = 2 + self.config.sem_dim;
                let mut recip = Vec::with_capacity(batch.child_nodes.len() * f);
                for &p in &batch.parent_of_child {
                    for _ in 0..f {
                        recip.push(1.0 / deg[p]);
                    }
                }
                let recip = tape.leaf(Tensor::new(
                    vec![batch.child_nodes.len(), f],
                    recip,
                ));
                tape.mul(gathered, recip)
            }
        };
        let xsp = tape.gather_rows(xs, &batch.parent_of_child);
        let input = tape.concat_cols(xsp, agg);
        self.mlp.forward(tape, bound, input)
    }

    /// Generative (ancestral) inference: child states are the model's own
    /// predictions, computed bottom-up. `overrides` replaces the
    /// exclusive features `[d*, e*]` of selected spans before the pass —
    /// the counterfactual "restore to normal" intervention of §3.5.
    pub fn predict_with_overrides(
        &self,
        enc: &EncodedTrace,
        overrides: &[(usize, f32, f32)],
    ) -> TracePrediction {
        let n = enc.len();
        let mut d_star = enc.d_star_scaled.clone();
        let mut e_star = enc.e_star.clone();
        for &(i, d, e) in overrides {
            d_star[i] = d;
            e_star[i] = e;
        }
        // Children lists from the parent vector.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in enc.parent.iter().enumerate() {
            if let Some(p) = *p {
                children[p].push(i);
            }
        }

        let mut d_hat = d_star.clone();
        let mut e_hat = e_star.clone();
        let f = 2 + self.config.sem_dim;
        for i in (0..n).rev() {
            if children[i].is_empty() {
                continue;
            }
            let fam = &children[i];
            // Counterfactual child features.
            let mut xc = Vec::with_capacity(fam.len() * f);
            for &j in fam {
                xc.push(d_hat[j]);
                xc.push(e_hat[j]);
                xc.extend_from_slice(&enc.sem[j]);
            }
            let xc = Tensor::new(vec![fam.len(), f], xc);
            // Family sum / mean.
            let mut fam_agg = vec![0f32; f];
            for r in 0..fam.len() {
                for (c, agg) in fam_agg.iter_mut().enumerate() {
                    *agg += xc.at(r, c);
                }
            }
            if self.config.aggregator == AggregatorKind::Gcn {
                for a in fam_agg.iter_mut() {
                    *a /= fam.len() as f32;
                }
            }
            // Build MLP input per child.
            let in_dim = 2 + f;
            let mut input = Vec::with_capacity(fam.len() * in_dim);
            for r in 0..fam.len() {
                input.push(d_star[i]);
                input.push(e_star[i]);
                for (c, &agg) in fam_agg.iter().enumerate() {
                    let self_term = if self.config.aggregator == AggregatorKind::Gin {
                        self.config.epsilon * xc.at(r, c)
                    } else {
                        0.0
                    };
                    input.push(agg + self_term);
                }
            }
            let input = Tensor::new(vec![fam.len(), in_dim], input);
            let h = self.mlp.infer(&self.params, &input);

            // Eq. 2 / Eq. 3 decoders on predictions.
            let mut wait = 0f32;
            let mut gate_max = 0f32;
            for (r, &j) in fam.iter().enumerate() {
                let u = unscale_f(h.at(r, 0));
                let v = u + unscale_f(h.at(r, 1) + self.config.knee_bias);
                let dj = unscale_f(d_hat[j]);
                wait += (dj - u).max(0.0) - (dj - v).max(0.0);
                let e_pm = 2.0 * e_hat[j] - 1.0;
                let gate_err = sigmoid_f(h.at(r, 2) * e_pm);
                let gate_dur = sigmoid_f(h.at(r, 3) * (d_hat[j] - scale_log_f(v)));
                gate_max = gate_max.max(gate_err).max(gate_dur);
            }
            d_hat[i] = scale_log_f(wait + unscale_f(d_star[i]));
            e_hat[i] = gate_max.max(e_star[i]);
        }
        TracePrediction {
            d_scaled: d_hat,
            e_prob: e_hat,
        }
    }

    /// Generative inference with no interventions.
    pub fn predict(&self, enc: &EncodedTrace) -> TracePrediction {
        self.predict_with_overrides(enc, &[])
    }

    /// Interpretability hook: the learned clipped-ReLU knees `(u', v')`
    /// in µs for every child of span `parent`, evaluated on the observed
    /// features (Eq. 2).
    pub fn family_knees(&self, enc: &EncodedTrace, parent: usize) -> Vec<(usize, f32, f32)> {
        let fam: Vec<usize> = (0..enc.len())
            .filter(|&j| enc.parent[j] == Some(parent))
            .collect();
        if fam.is_empty() {
            return Vec::new();
        }
        let f = 2 + self.config.sem_dim;
        let in_dim = 2 + f;
        let mut fam_agg = vec![0f32; f];
        for &j in &fam {
            fam_agg[0] += enc.d_scaled[j];
            fam_agg[1] += enc.e[j];
            for (c, s) in fam_agg[2..].iter_mut().zip(&enc.sem[j]) {
                *c += s;
            }
        }
        if self.config.aggregator == AggregatorKind::Gcn {
            for a in fam_agg.iter_mut() {
                *a /= fam.len() as f32;
            }
        }
        let mut input = Vec::with_capacity(fam.len() * in_dim);
        for &j in &fam {
            input.push(enc.d_star_scaled[parent]);
            input.push(enc.e_star[parent]);
            for c in 0..f {
                let self_term = if self.config.aggregator == AggregatorKind::Gin {
                    let xjc = if c < 2 {
                        [enc.d_scaled[j], enc.e[j]][c]
                    } else {
                        enc.sem[j][c - 2]
                    };
                    self.config.epsilon * xjc
                } else {
                    0.0
                };
                input.push(fam_agg[c] + self_term);
            }
        }
        let h = self
            .mlp
            .infer(&self.params, &Tensor::new(vec![fam.len(), in_dim], input));
        fam.iter()
            .enumerate()
            .map(|(r, &j)| {
                let u = unscale_f(h.at(r, 0));
                let v = u + unscale_f(h.at(r, 1) + self.config.knee_bias);
                (j, u, v)
            })
            .collect()
    }

    /// Structural-counterfactual inference with per-node **abduction**
    /// (Pearl's abduction–action–prediction over the trace's causal
    /// Bayesian network).
    ///
    /// Each span's mechanism is `d_i = f(children) + d*_i + ε_i`; the
    /// exogenous residual `ε_i` is abduced from the observed trace
    /// (observed value minus the teacher-forced prediction) and carried
    /// into the counterfactual. Consequences:
    ///
    /// * subtrees untouched by the intervention reproduce their
    ///   *observed* values exactly (no exposure-bias drift on deep
    ///   traces, unlike the purely generative
    ///   [`SleuthModel::predict_with_overrides`]),
    /// * along modified paths, only the model-attributed *delta*
    ///   propagates, anchored to reality at every level.
    ///
    /// `overrides` replaces `[d*, e*]` of selected spans, as in
    /// [`SleuthModel::predict_with_overrides`].
    ///
    /// Spans outside the overrides' ancestor closure reproduce their
    /// observed values exactly (that is what abduction pins down), so
    /// this is a one-shot [`crate::CfSession`] — callers issuing many
    /// override sets against the same trace should hold a session and
    /// amortise the observed pass.
    pub fn predict_counterfactual(
        &self,
        enc: &EncodedTrace,
        overrides: &[(usize, f32, f32)],
    ) -> TracePrediction {
        crate::CfSession::new(self, enc).predict_full(overrides)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Featurizer;
    use sleuth_trace::{Span, SpanKind, Trace};

    fn fan_trace(child_durs: &[u64]) -> Trace {
        let total: u64 = 2000 + child_durs.iter().max().copied().unwrap_or(0);
        let mut spans = vec![Span::builder(1, 1, "root", "GET /")
            .time(0, total)
            .build()];
        for (i, &d) in child_durs.iter().enumerate() {
            spans.push(
                Span::builder(1, 2 + i as u64, format!("svc{i}"), format!("op{i}"))
                    .parent(1)
                    .kind(SpanKind::Client)
                    .time(1000, 1000 + d)
                    .build(),
            );
        }
        Trace::assemble(spans).unwrap()
    }

    #[test]
    fn fresh_model_shapes() {
        let m = SleuthModel::new(&ModelConfig::default(), 1);
        // Two layers: (12 -> 32) + bias, (32 -> 4) + bias.
        let in_dim = 2 + 2 + 8;
        assert_eq!(
            m.num_parameters(),
            in_dim * 32 + 32 + 32 * 4 + 4
        );
    }

    #[test]
    fn model_size_independent_of_trace_size() {
        let m = SleuthModel::new(&ModelConfig::default(), 1);
        let p = m.num_parameters();
        let mut f = Featurizer::new(8);
        let small = f.encode(&fan_trace(&[100]));
        let large = f.encode(&fan_trace(&[100; 40]));
        let _ = m.predict(&small);
        let _ = m.predict(&large);
        assert_eq!(m.num_parameters(), p);
    }

    #[test]
    fn loss_is_finite_and_scalar() {
        let m = SleuthModel::new(&ModelConfig::default(), 2);
        let mut f = Featurizer::new(8);
        let enc = f.encode(&fan_trace(&[500, 900, 100]));
        let batch = GraphBatch::pack(&[&enc]);
        let (tape, loss, _bound) = m.loss_on_batch(&batch);
        let v = tape.value(loss).item();
        assert!(v.is_finite() && v >= 0.0, "loss {v}");
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let m = SleuthModel::new(&ModelConfig::default(), 3);
        let mut f = Featurizer::new(8);
        let enc = f.encode(&fan_trace(&[500, 900]));
        let batch = GraphBatch::pack(&[&enc]);
        let (tape, loss, bound) = m.loss_on_batch(&batch);
        let grads = tape.backward(loss);
        for &v in bound.vars() {
            assert!(grads.try_get(v).is_some(), "parameter missing gradient");
        }
    }

    #[test]
    fn gcn_variant_runs() {
        let cfg = ModelConfig {
            aggregator: AggregatorKind::Gcn,
            ..ModelConfig::default()
        };
        let m = SleuthModel::new(&cfg, 4);
        let mut f = Featurizer::new(8);
        let enc = f.encode(&fan_trace(&[500, 900, 700]));
        let batch = GraphBatch::pack(&[&enc]);
        let (tape, loss, _bound) = m.loss_on_batch(&batch);
        assert!(tape.value(loss).item().is_finite());
        let pred = m.predict(&enc);
        assert!(pred.root_duration_us().is_finite());
    }

    #[test]
    fn prediction_vectors_match_trace_len() {
        let m = SleuthModel::new(&ModelConfig::default(), 5);
        let mut f = Featurizer::new(8);
        let enc = f.encode(&fan_trace(&[100, 200, 300]));
        let pred = m.predict(&enc);
        assert_eq!(pred.d_scaled.len(), 4);
        assert_eq!(pred.e_prob.len(), 4);
        assert!(pred.e_prob.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn overrides_change_prediction() {
        // Train on fan traces whose root duration tracks the slowest
        // child, then check the counterfactual direction: restoring the
        // slow child's exclusive duration must reduce the predicted
        // end-to-end duration.
        use crate::train::TrainConfig;
        let mut f = Featurizer::new(8);
        let mut rng_state = 12345u64;
        // Log-uniform child durations in [1 ms, ~400 ms], so skewed
        // sibling mixes (one slow, others fast) are in-distribution.
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((rng_state >> 40) % 1_000) as f64 / 1_000.0;
            (1_000.0 * 10f64.powf(2.6 * u)) as u64
        };
        let data: Vec<_> = (0..80)
            .map(|_| f.encode(&fan_trace(&[next(), next(), next()])))
            .collect();
        let mut m = SleuthModel::new(&ModelConfig::default(), 6);
        m.train(
            &data,
            &TrainConfig {
                epochs: 50,
                batch_traces: 16,
                lr: 1e-2,
                seed: 1,
            },
        );

        // Slow child within the training distribution's range so the
        // learned clipping knee v' does not flatten it.
        let enc = f.encode(&fan_trace(&[350_000, 2_000, 3_000]));
        let base = m.predict(&enc);
        let fast = sleuth_trace::transform::scale_duration(1_000);
        let idx_slow = (0..enc.len())
            .find(|&i| enc.parent[i].is_some() && enc.d_scaled[i] > 1.0)
            .expect("slow child exists");
        let restored = m.predict_with_overrides(&enc, &[(idx_slow, fast, 0.0)]);
        assert!(
            restored.root_duration_us() < base.root_duration_us(),
            "restoring the slow child must reduce predicted duration: {} vs {}",
            restored.root_duration_us(),
            base.root_duration_us()
        );
    }

    #[test]
    fn counterfactual_without_intervention_reproduces_observation() {
        // With no overrides, abduction must reproduce the observed
        // trace exactly (up to scaling round-trips) — even on an
        // untrained model, where the generative pass would drift.
        let m = SleuthModel::new(&ModelConfig::default(), 21);
        let mut f = Featurizer::new(8);
        let enc = f.encode(&fan_trace(&[500, 120_000, 3_000]));
        let pred = m.predict_counterfactual(&enc, &[]);
        for i in 0..enc.len() {
            assert!(
                (pred.d_scaled[i] - enc.d_scaled[i]).abs() < 1e-3,
                "span {i}: {} vs {}",
                pred.d_scaled[i],
                enc.d_scaled[i]
            );
            assert!((pred.e_prob[i] - enc.e[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn counterfactual_restoring_slow_child_reduces_root() {
        // Even an untrained model attributes *some* contribution via its
        // initial knees; with abduction the root moves from the observed
        // value by exactly the attributed delta, so restoring the slow
        // child must not increase the root.
        let m = SleuthModel::new(&ModelConfig::default(), 22);
        let mut f = Featurizer::new(8);
        let enc = f.encode(&fan_trace(&[400_000, 2_000, 3_000]));
        let base = m.predict_counterfactual(&enc, &[]);
        let fast = sleuth_trace::transform::scale_duration(1_000);
        let idx_slow = (0..enc.len())
            .find(|&i| enc.parent[i].is_some() && enc.d_scaled[i] > 1.0)
            .expect("slow child exists");
        let cf = m.predict_counterfactual(&enc, &[(idx_slow, fast, 0.0)]);
        assert!(
            cf.root_duration_us() <= base.root_duration_us() + 1.0,
            "restoration increased the root: {} -> {}",
            base.root_duration_us(),
            cf.root_duration_us()
        );
    }

    #[test]
    fn counterfactual_clears_propagated_error() {
        use sleuth_trace::StatusCode;
        // Child has an exclusive error; root errored by propagation.
        let spans = vec![
            Span::builder(1, 1, "root", "GET /")
                .time(0, 10_000)
                .status(StatusCode::Error)
                .build(),
            Span::builder(1, 2, "db", "query")
                .parent(1)
                .kind(SpanKind::Client)
                .time(1_000, 9_000)
                .status(StatusCode::Error)
                .build(),
        ];
        let trace = Trace::assemble(spans).unwrap();
        let m = SleuthModel::new(&ModelConfig::default(), 23);
        let mut f = Featurizer::new(8);
        let enc = f.encode(&trace);
        let base = m.predict_counterfactual(&enc, &[]);
        assert!(base.root_error_prob() > 0.9, "observed error must persist");
        // Restore the failing child: clear its exclusive error.
        let child = (0..enc.len()).find(|&i| enc.parent[i].is_some()).unwrap();
        let cf = m.predict_counterfactual(&enc, &[(child, enc.d_star_scaled[child], 0.0)]);
        assert_eq!(cf.e_prob[child], 0.0, "restored child must be clean");
        assert!(
            cf.root_error_prob() <= base.root_error_prob() + 1e-6,
            "restoring the erroring child must not raise root error: {} -> {}",
            base.root_error_prob(),
            cf.root_error_prob()
        );
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let m = SleuthModel::new(&ModelConfig::default(), 7);
        let ck = m.to_checkpoint();
        let json = serde_json::to_string(&ck).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        let m2 = SleuthModel::from_checkpoint(&back).unwrap();
        let mut f = Featurizer::new(8);
        let enc = f.encode(&fan_trace(&[100, 5_000]));
        assert_eq!(m.predict(&enc), m2.predict(&enc));
    }

    #[test]
    fn checkpoint_shape_mismatch_rejected() {
        let m = SleuthModel::new(&ModelConfig::default(), 8);
        let mut ck = m.to_checkpoint();
        ck.params[0].pop();
        assert!(SleuthModel::from_checkpoint(&ck).is_err());
    }

    #[test]
    fn single_span_trace_batch() {
        let m = SleuthModel::new(&ModelConfig::default(), 9);
        let mut f = Featurizer::new(8);
        let t = Trace::assemble(vec![Span::builder(1, 1, "s", "op").time(0, 100).build()])
            .unwrap();
        let enc = f.encode(&t);
        let batch = GraphBatch::pack(&[&enc]);
        let (tape, loss, _b) = m.loss_on_batch(&batch);
        assert!(tape.value(loss).item().is_finite());
        let pred = m.predict(&enc);
        assert_eq!(pred.d_scaled.len(), 1);
    }
}
