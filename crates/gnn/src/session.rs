//! Reusable counterfactual sessions: abduce once, re-predict deltas.
//!
//! [`SleuthModel::predict_counterfactual`] runs Pearl's
//! abduction–action–prediction over the trace's causal Bayesian network.
//! The abduction step — evaluating every family on its *observed*
//! features to pin the exogenous residuals — depends only on the trace,
//! not on the intervention, yet the one-shot API recomputes it for every
//! candidate set the RCA tries. On a thousand-service call graph that
//! makes each restoration step O(spans) when the intervention only
//! touches a handful of them.
//!
//! [`CfSession`] factors the localisation loop accordingly:
//!
//! * **Construction** runs the observed pass once: the children CSR, the
//!   per-family observed wait, the per-node log-space duration residual,
//!   and the observed clipped-ReLU knees `(u, v)` for every child slot.
//! * **[`CfSession::predict_root`]** applies an override set as a delta.
//!   Overrides equal to the observed exclusive features are discarded
//!   (they cannot change anything); the ancestor closure of the
//!   survivors is the only region recomputed, children before parents.
//!   Every span outside that frontier keeps its observed value — which
//!   is exactly what abduction guarantees the full pass would produce
//!   for untouched subtrees, so the delta path is not an approximation
//!   of the one-shot semantics, it *is* the semantics.
//! * **[`CfSession::savings_bound_us`]** exploits the decoder's monotone
//!   structure: for *fixed* knees the clipped ReLU
//!   `clip(d) = (d−u)₊ − (d−v)₊` is nondecreasing and 1-Lipschitz, so a
//!   child whose duration drops by `r` reduces its parent's wait by at
//!   most `clip(d) − clip(d−r)`. Propagating that drop root-ward (scaled
//!   by each node's abduced multiplicative residual) upper-bounds how
//!   much end-to-end latency restoring a subtree could recover. A
//!   subtree whose bound is already ≈0 is provably irrelevant to the
//!   duration channel. The bound is evaluated at the observed knees; the
//!   real counterfactual pass lets knees drift with family features, so
//!   callers treat it as a ranking/diagnostic signal, not a substitute
//!   for the exact pass.
//!
//! An empty (or all-no-op) override set returns the observed trace
//! without touching the model at all — the common case when the RCA
//! probes a candidate whose restoration turns out to be the identity.

use sleuth_trace::transform::{GLOBAL_LOG_MEAN, GLOBAL_LOG_STD};

use sleuth_tensor::Tensor;

use crate::encode::EncodedTrace;
use crate::model::{scale_log_f, unscale_f, AggregatorKind, SleuthModel, TracePrediction};

const SIG: f32 = GLOBAL_LOG_STD;
const _MU: f32 = GLOBAL_LOG_MEAN;

/// Root-span outcome of one counterfactual query (the only part of a
/// [`TracePrediction`] the restoration search looks at).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfRoot {
    /// Counterfactual root duration, scaled.
    pub d_scaled: f32,
    /// Counterfactual root error probability.
    pub error_prob: f32,
}

impl CfRoot {
    /// Counterfactual end-to-end duration in µs.
    pub fn duration_us(&self) -> f32 {
        unscale_f(self.d_scaled)
    }
}

/// A per-trace counterfactual session (see the module docs).
///
/// Holds the observed-pass abduction state for one encoded trace and
/// answers override queries by recomputing only the override frontier's
/// ancestor closure. Scratch buffers are epoch-stamped, so repeated
/// queries allocate nothing.
#[derive(Debug)]
pub struct CfSession<'m> {
    model: &'m SleuthModel,
    enc: &'m EncodedTrace,
    /// Children CSR: children of `i` are `child_idx[child_off[i]..child_off[i+1]]`.
    child_off: Vec<u32>,
    child_idx: Vec<u32>,
    /// Observed log-space duration residual per node (abduction).
    resid_d_log: Vec<f32>,
    /// Observed clipped-ReLU knees for node `j` *as a child of its
    /// parent* (µs). Root slot unused.
    u_obs: Vec<f32>,
    v_obs: Vec<f32>,
    epoch: u32,
    /// `stamp[i] == epoch` ⇔ `i` is in the current query's affected set.
    stamp: Vec<u32>,
    /// `ov_stamp[i] == epoch` ⇔ `i` carries an effective override.
    ov_stamp: Vec<u32>,
    d_star_ov: Vec<f32>,
    e_star_ov: Vec<f32>,
    /// Counterfactual values, valid where `stamp[i] == epoch`.
    d_cf: Vec<f32>,
    e_cf: Vec<f32>,
    /// Monotone-bound scratch, valid where `stamp[i] == epoch`.
    red: Vec<f32>,
    /// Affected set of the current epoch, descending (children first).
    affected: Vec<u32>,
    calls: u64,
    nodes_recomputed: u64,
}

/// One family evaluation of the Eq. 2 decoder (duration channel only;
/// the abduction error channel never reads the gates). Mirrors the
/// arithmetic of the teacher-forced pass operation for operation so the
/// session is bit-compatible with the one-shot counterfactual API.
#[allow(clippy::too_many_arguments)]
fn family_wait(
    model: &SleuthModel,
    enc: &EncodedTrace,
    fam: &[u32],
    d_of: &dyn Fn(usize) -> f32,
    e_of: &dyn Fn(usize) -> f32,
    d_star_i: f32,
    e_star_i: f32,
    mut knees: Option<&mut dyn FnMut(usize, f32, f32)>,
) -> f32 {
    let f = 2 + model.config.sem_dim;
    let in_dim = 2 + f;
    let mut fam_agg = vec![0f32; f];
    for &j in fam {
        let j = j as usize;
        fam_agg[0] += d_of(j);
        fam_agg[1] += e_of(j);
        for (c, s) in fam_agg[2..].iter_mut().zip(&enc.sem[j]) {
            *c += s;
        }
    }
    if model.config.aggregator == AggregatorKind::Gcn {
        for a in fam_agg.iter_mut() {
            *a /= fam.len() as f32;
        }
    }
    let mut input = Vec::with_capacity(fam.len() * in_dim);
    for &j in fam {
        let j = j as usize;
        input.push(d_star_i);
        input.push(e_star_i);
        let self_feats = [d_of(j), e_of(j)];
        for c in 0..f {
            let base = fam_agg[c];
            let self_term = if model.config.aggregator == AggregatorKind::Gin {
                let xjc = if c < 2 {
                    self_feats[c]
                } else {
                    enc.sem[j][c - 2]
                };
                model.config.epsilon * xjc
            } else {
                0.0
            };
            input.push(base + self_term);
        }
    }
    let h = model
        .mlp
        .infer(&model.params, &Tensor::new(vec![fam.len(), in_dim], input));
    let mut wait = 0f32;
    for (r, &j) in fam.iter().enumerate() {
        let u = unscale_f(h.at(r, 0));
        let v = u + unscale_f(h.at(r, 1) + model.config.knee_bias);
        let dj = unscale_f(d_of(j as usize));
        wait += (dj - u).max(0.0) - (dj - v).max(0.0);
        if let Some(k) = knees.as_deref_mut() {
            k(j as usize, u, v);
        }
    }
    wait
}

impl<'m> CfSession<'m> {
    /// Run the observed pass once and return a query-ready session.
    pub fn new(model: &'m SleuthModel, enc: &'m EncodedTrace) -> Self {
        let n = enc.len();
        let mut child_off = vec![0u32; n + 1];
        for p in enc.parent.iter().flatten() {
            child_off[p + 1] += 1;
        }
        for i in 0..n {
            child_off[i + 1] += child_off[i];
        }
        let mut next = child_off.clone();
        let mut child_idx = vec![0u32; child_off[n] as usize];
        for (i, p) in enc.parent.iter().enumerate() {
            if let Some(p) = *p {
                child_idx[next[p] as usize] = i as u32;
                next[p] += 1;
            }
        }

        let mut resid_d_log = vec![0f32; n];
        let mut u_obs = vec![0f32; n];
        let mut v_obs = vec![f32::INFINITY; n];
        for i in (0..n).rev() {
            let fam = &child_idx[child_off[i] as usize..child_off[i + 1] as usize];
            if fam.is_empty() {
                continue;
            }
            let wait_obs = family_wait(
                model,
                enc,
                fam,
                &|j| enc.d_scaled[j],
                &|j| enc.e[j],
                enc.d_star_scaled[i],
                enc.e_star[i],
                Some(&mut |j, u, v| {
                    u_obs[j] = u;
                    v_obs[j] = v;
                }),
            );
            let d_tf = wait_obs + unscale_f(enc.d_star_scaled[i]);
            resid_d_log[i] = enc.d_scaled[i] - scale_log_f(d_tf);
        }

        CfSession {
            model,
            enc,
            child_off,
            child_idx,
            resid_d_log,
            u_obs,
            v_obs,
            epoch: 0,
            stamp: vec![0; n],
            ov_stamp: vec![0; n],
            d_star_ov: vec![0.0; n],
            e_star_ov: vec![0.0; n],
            d_cf: vec![0.0; n],
            e_cf: vec![0.0; n],
            red: vec![0.0; n],
            affected: Vec::new(),
            calls: 0,
            nodes_recomputed: 0,
        }
    }

    /// Number of spans in the session's trace.
    pub fn len(&self) -> usize {
        self.enc.len()
    }

    /// Whether the trace is empty (it never is — encoded traces have a root).
    pub fn is_empty(&self) -> bool {
        self.enc.len() == 0
    }

    /// Number of queries that actually evaluated the model (queries whose
    /// overrides were all no-ops are free and not counted).
    pub fn predict_calls(&self) -> u64 {
        self.calls
    }

    /// Total spans recomputed across all counted queries. The ratio to
    /// `predict_calls * len()` is the fraction of work the delta path
    /// saved over full re-prediction.
    pub fn nodes_recomputed(&self) -> u64 {
        self.nodes_recomputed
    }

    fn children(&self, i: usize) -> &[u32] {
        &self.child_idx[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// Stage the override set for a new epoch: store per-node override
    /// values, discard no-ops, and stamp the ancestor closure of the
    /// effective ones (descending = children first). Returns `false`
    /// when nothing effective remains.
    fn mark(&mut self, overrides: &[(usize, f32, f32)]) -> bool {
        self.epoch += 1;
        self.affected.clear();
        for &(i, d, e) in overrides {
            // Later entries for the same span win, as in the one-shot API.
            self.ov_stamp[i] = self.epoch;
            self.d_star_ov[i] = d;
            self.e_star_ov[i] = e;
        }
        let mut any = false;
        for &(i, _, _) in overrides {
            if self.ov_stamp[i] != self.epoch {
                continue; // already judged a no-op
            }
            if self.d_star_ov[i] == self.enc.d_star_scaled[i]
                && self.e_star_ov[i] == self.enc.e_star[i]
            {
                // Identity override: the counterfactual factually equals
                // the observation on this span.
                self.ov_stamp[i] = 0;
                continue;
            }
            any = true;
            let mut cur = i;
            loop {
                if self.stamp[cur] == self.epoch {
                    break;
                }
                self.stamp[cur] = self.epoch;
                self.affected.push(cur as u32);
                match self.enc.parent[cur] {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        if any {
            self.affected.sort_unstable_by(|a, b| b.cmp(a));
        }
        any
    }

    fn star_of(&self, i: usize) -> (f32, f32) {
        if self.ov_stamp[i] == self.epoch {
            (self.d_star_ov[i], self.e_star_ov[i])
        } else {
            (self.enc.d_star_scaled[i], self.enc.e_star[i])
        }
    }

    /// Recompute the affected set bottom-up (abduction–action–prediction
    /// restricted to the frontier's ancestor closure).
    fn compute(&mut self) {
        self.calls += 1;
        self.nodes_recomputed += self.affected.len() as u64;
        let enc = self.enc;
        for k in 0..self.affected.len() {
            let i = self.affected[k] as usize;
            let (d_star_i, e_star_i) = self.star_of(i);
            let fam = &self.child_idx[self.child_off[i] as usize..self.child_off[i + 1] as usize];
            if fam.is_empty() {
                // A leaf's duration *is* its exclusive duration.
                self.d_cf[i] = d_star_i;
                self.e_cf[i] = e_star_i;
                continue;
            }
            let (stamp, epoch) = (&self.stamp, self.epoch);
            let (d_cf, e_cf) = (&self.d_cf, &self.e_cf);
            let d_of = |j: usize| if stamp[j] == epoch { d_cf[j] } else { enc.d_scaled[j] };
            let e_of = |j: usize| if stamp[j] == epoch { e_cf[j] } else { enc.e[j] };
            let wait_cf = family_wait(self.model, enc, fam, &d_of, &e_of, d_star_i, e_star_i, None);
            let d_prime_cf = (wait_cf + unscale_f(d_star_i)).max(1.0);
            let new_d = scale_log_f(d_prime_cf) + self.resid_d_log[i];
            // Error channel under abduction: restorations only remove
            // causes, so a healthy span stays healthy and an errored one
            // stays errored exactly while an exclusive or an
            // observed-errored child's counterfactual error persists.
            let new_e = if enc.e[i] < 0.5 {
                0.0
            } else {
                let mut worst = e_star_i;
                for &j in fam {
                    let j = j as usize;
                    if enc.e[j] >= 0.5 {
                        worst = worst.max(e_of(j));
                    }
                }
                worst
            };
            self.d_cf[i] = new_d;
            self.e_cf[i] = new_e;
        }
    }

    /// Counterfactual root outcome under `overrides` (`(span, d*, e*)`
    /// replacements of exclusive features, as in
    /// [`SleuthModel::predict_counterfactual`]).
    pub fn predict_root(&mut self, overrides: &[(usize, f32, f32)]) -> CfRoot {
        if !self.mark(overrides) {
            return CfRoot {
                d_scaled: self.enc.d_scaled[0],
                error_prob: self.enc.e[0],
            };
        }
        self.compute();
        CfRoot {
            d_scaled: self.d_cf[0],
            error_prob: self.e_cf[0],
        }
    }

    /// Full per-span counterfactual prediction under `overrides` —
    /// identical to [`SleuthModel::predict_counterfactual`] (which
    /// delegates here).
    pub fn predict_full(&mut self, overrides: &[(usize, f32, f32)]) -> TracePrediction {
        let changed = self.mark(overrides);
        if changed {
            self.compute();
        }
        let mut d_scaled = self.enc.d_scaled.clone();
        let mut e_prob = self.enc.e.clone();
        if changed {
            for &i in &self.affected {
                let i = i as usize;
                d_scaled[i] = self.d_cf[i];
                e_prob[i] = self.e_cf[i];
            }
        }
        TracePrediction { d_scaled, e_prob }
    }

    /// Upper bound (µs) on how much end-to-end latency the override set
    /// could recover, from the fixed-knee monotone structure (module
    /// docs). Costs O(affected set), never evaluates the MLP.
    pub fn savings_bound_us(&mut self, overrides: &[(usize, f32, f32)]) -> f32 {
        if !self.mark(overrides) {
            return 0.0;
        }
        for k in 0..self.affected.len() {
            let i = self.affected[k] as usize;
            let delta = if self.ov_stamp[i] == self.epoch {
                (unscale_f(self.enc.d_star_scaled[i]) - unscale_f(self.d_star_ov[i])).max(0.0)
            } else {
                0.0
            };
            let fam = self.children(i);
            if fam.is_empty() {
                self.red[i] = delta;
                continue;
            }
            let mut red_in = delta;
            for &j in fam {
                let j = j as usize;
                if self.stamp[j] == self.epoch && self.red[j] > 0.0 {
                    let dj = unscale_f(self.enc.d_scaled[j]);
                    let (u, v) = (self.u_obs[j], self.v_obs[j]);
                    let clip = |d: f32| (d - u).max(0.0) - (d - v).max(0.0);
                    red_in += clip(dj) - clip(dj - self.red[j]);
                }
            }
            // The node's own value is `d_prime × 10^(σ·resid)` modulo
            // clamps; the multiplier rescales the child-side drop.
            let m = 10f32.powf((SIG * self.resid_d_log[i]).clamp(-8.0, 8.0));
            self.red[i] = red_in * m;
        }
        if self.stamp[0] == self.epoch {
            self.red[0]
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Featurizer;
    use sleuth_trace::{Span, SpanKind, Trace};

    fn chain_trace() -> Trace {
        // root -> mid -> {leaf_a (slow), leaf_b}
        let spans = vec![
            Span::builder(1, 1, "frontend", "GET /").time(0, 60_000).build(),
            Span::builder(1, 2, "cart", "GET /cart")
                .parent(1)
                .kind(SpanKind::Client)
                .time(2_000, 56_000)
                .build(),
            Span::builder(1, 3, "redis", "GET k")
                .parent(2)
                .kind(SpanKind::Client)
                .time(3_000, 50_000)
                .build(),
            Span::builder(1, 4, "auth", "POST /verify")
                .parent(2)
                .kind(SpanKind::Client)
                .time(3_000, 6_000)
                .build(),
        ];
        Trace::assemble(spans).unwrap()
    }

    fn model_and_enc() -> (SleuthModel, EncodedTrace) {
        let model = SleuthModel::new(&Default::default(), 7);
        let mut f = Featurizer::new(model.config().sem_dim);
        let enc = f.encode(&chain_trace());
        (model, enc)
    }

    #[test]
    fn session_matches_one_shot_counterfactual_bitwise() {
        let (model, enc) = model_and_enc();
        let mut sess = CfSession::new(&model, &enc);
        let cases: Vec<Vec<(usize, f32, f32)>> = vec![
            vec![],
            vec![(2, enc.d_star_scaled[2] - 1.0, 0.0)],
            vec![(3, -1.0, 0.0), (1, enc.d_star_scaled[1] * 0.5, 0.0)],
            vec![(2, enc.d_star_scaled[2], enc.e_star[2])], // identity
        ];
        for ov in &cases {
            let full = model.predict_counterfactual(&enc, ov);
            let again = sess.predict_full(ov);
            assert_eq!(full, again, "override set {ov:?}");
        }
    }

    #[test]
    fn noop_overrides_reproduce_observation_without_model_calls() {
        let (model, enc) = model_and_enc();
        let mut sess = CfSession::new(&model, &enc);
        let identity = [(2, enc.d_star_scaled[2], enc.e_star[2])];
        let root = sess.predict_root(&identity);
        assert_eq!(root.d_scaled, enc.d_scaled[0]);
        assert_eq!(root.error_prob, enc.e[0]);
        let full = sess.predict_full(&[]);
        assert_eq!(full.d_scaled, enc.d_scaled);
        assert_eq!(full.e_prob, enc.e);
        assert_eq!(sess.predict_calls(), 0, "identity queries are free");
    }

    #[test]
    fn delta_path_touches_only_the_ancestor_closure() {
        let (model, enc) = model_and_enc();
        let mut sess = CfSession::new(&model, &enc);
        // Leaf 3 ("auth"): closure is {3, 1, 0} — sibling subtree 2 untouched.
        let _ = sess.predict_root(&[(3, enc.d_star_scaled[3] - 2.0, 0.0)]);
        assert_eq!(sess.predict_calls(), 1);
        assert_eq!(sess.nodes_recomputed(), 3);
    }

    #[test]
    fn savings_bound_dominates_actual_savings() {
        let (model, enc) = model_and_enc();
        let mut sess = CfSession::new(&model, &enc);
        let observed_us = unscale_f(enc.d_scaled[0]);
        // Restore the slow redis leaf to a fast exclusive duration.
        let ov = [(2, scale_log_f(1_000.0), 0.0)];
        let bound = sess.savings_bound_us(&ov);
        let cf_us = sess.predict_root(&ov).duration_us();
        let actual = (observed_us - cf_us).max(0.0);
        assert!(
            bound >= actual * 0.99,
            "monotone bound {bound} must dominate actual savings {actual}"
        );
        // And an untouched-trace query has nothing to recover.
        assert_eq!(sess.savings_bound_us(&[]), 0.0);
    }
}
