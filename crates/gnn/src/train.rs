//! Training loop (Eq. 5) with mini-batched graph packing.

use std::time::{Duration, Instant};

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth_tensor::optim::{Adam, Optimizer};

use crate::encode::{EncodedTrace, GraphBatch};
use crate::model::SleuthModel;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the data.
    pub epochs: usize,
    /// Traces per packed graph batch.
    pub batch_traces: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_traces: 32,
            lr: 5e-3,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Optimiser steps taken.
    pub steps: usize,
}

impl TrainReport {
    /// Loss after the final epoch.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

impl SleuthModel {
    /// Train (or fine-tune — same procedure on fewer samples, §6.5) the
    /// model on encoded traces.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `batch_traces` is zero.
    pub fn train(&mut self, data: &[EncodedTrace], cfg: &TrainConfig) -> TrainReport {
        assert!(!data.is_empty(), "training data must be non-empty");
        assert!(cfg.batch_traces > 0, "batch size must be positive");
        let start = Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut adam = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        let mut steps = 0usize;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_traces) {
                let refs: Vec<&EncodedTrace> = chunk.iter().map(|&i| &data[i]).collect();
                let batch = GraphBatch::pack(&refs);
                let (tape, loss, bound) = self.loss_on_batch(&batch);
                total += tape.value(loss).item() as f64;
                batches += 1;
                let grads = tape.backward(loss);
                adam.step(self.params_mut(), &bound, &grads);
                steps += 1;
            }
            epoch_losses.push((total / batches.max(1) as f64) as f32);
        }
        TrainReport {
            epoch_losses,
            wall: start.elapsed(),
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Featurizer;
    use crate::model::{AggregatorKind, ModelConfig};
    use sleuth_synth::presets;
    use sleuth_synth::workload::CorpusBuilder;

    fn encoded_corpus(n: usize) -> Vec<EncodedTrace> {
        let app = presets::synthetic(16, 1);
        let corpus = CorpusBuilder::new(&app).seed(9).mixed_traces(n, 25);
        let mut f = Featurizer::new(8);
        corpus.traces.iter().map(|t| f.encode(&t.trace)).collect()
    }

    #[test]
    fn loss_decreases_over_training() {
        let data = encoded_corpus(60);
        let mut model = SleuthModel::new(&ModelConfig::default(), 11);
        let report = model.train(
            &data,
            &TrainConfig {
                epochs: 12,
                batch_traces: 16,
                lr: 5e-3,
                seed: 1,
            },
        );
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.8,
            "loss did not decrease: {first} -> {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn trained_model_predicts_healthy_durations() {
        let app = presets::synthetic(16, 1);
        let corpus = CorpusBuilder::new(&app).seed(10).normal_traces(80);
        let mut f = Featurizer::new(8);
        let data: Vec<EncodedTrace> =
            corpus.traces.iter().map(|t| f.encode(&t.trace)).collect();
        let mut model = SleuthModel::new(&ModelConfig::default(), 12);
        model.train(
            &data,
            &TrainConfig {
                epochs: 40,
                batch_traces: 20,
                lr: 1e-2,
                seed: 2,
            },
        );
        // Predicted root duration should be within ~3x of observed for
        // most healthy traces after training.
        let mut ok = 0;
        for (enc, st) in data.iter().zip(&corpus.traces) {
            let pred = model.predict(enc).root_duration_us();
            let actual = st.trace.total_duration_us() as f32;
            if pred > actual / 3.0 && pred < actual * 3.0 {
                ok += 1;
            }
        }
        assert!(
            ok * 2 > data.len(),
            "only {ok}/{} predictions within 3x",
            data.len()
        );
    }

    #[test]
    fn gcn_also_trains() {
        let data = encoded_corpus(40);
        let cfg = ModelConfig {
            aggregator: AggregatorKind::Gcn,
            ..ModelConfig::default()
        };
        let mut model = SleuthModel::new(&cfg, 13);
        let report = model.train(
            &data,
            &TrainConfig {
                epochs: 6,
                batch_traces: 16,
                lr: 5e-3,
                seed: 3,
            },
        );
        assert!(report.final_loss().is_finite());
        assert_eq!(report.epoch_losses.len(), 6);
    }

    #[test]
    fn training_is_deterministic() {
        let data = encoded_corpus(30);
        let cfg = TrainConfig {
            epochs: 3,
            batch_traces: 8,
            lr: 5e-3,
            seed: 4,
        };
        let mut m1 = SleuthModel::new(&ModelConfig::default(), 14);
        let mut m2 = SleuthModel::new(&ModelConfig::default(), 14);
        let r1 = m1.train(&data, &cfg);
        let r2 = m2.train(&data, &cfg);
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
        assert_eq!(m1.to_checkpoint().params, m2.to_checkpoint().params);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_data_rejected() {
        let mut model = SleuthModel::new(&ModelConfig::default(), 15);
        let _ = model.train(&[], &TrainConfig::default());
    }
}
