//! The Sleuth trace GNN (§3.4).
//!
//! A causal Bayesian network is read directly off each trace's RPC
//! dependency tree; one message-passing layer with a **domain-informed
//! decoder** models how duration and error status propagate from child
//! spans to their parents:
//!
//! * **Eq. 2** — a parent's duration is the sum over children of a
//!   *clipped ReLU* of the child's (unscaled) duration: a child only
//!   contributes once it exceeds a learned lower knee `u'` (parallel
//!   execution hides it below that), and stops contributing past a
//!   learned upper knee `v'` (timeouts cap the wait). Asynchronous
//!   children are expressible as `u' = v'`.
//! * **Eq. 3** — a parent's error probability is the max over children
//!   of learned gates on the child's error status and duration, and the
//!   parent's own exclusive error.
//! * **Eq. 4** — the knees and gates `h_j` come from a GIN-style
//!   aggregation over the child's *siblings* concatenated with the
//!   parent's exclusive features; a vanilla GCN mean-aggregation variant
//!   ("Sleuth-GCN") is provided as the paper's ablation baseline.
//! * **Eq. 5** — training minimises MSE on scaled durations plus BCE on
//!   error status across all spans, teacher-forced on observed child
//!   values; no labels are needed (unsupervised reconstruction).
//!
//! Inference for counterfactual queries runs the same decoder
//! **generatively**: child states are replaced by their own predictions
//! bottom-up, so substituting a span's exclusive features with their
//! "normal" values propagates through the whole trace (§3.5).
//!
//! One deliberate deviation from the paper's notation: Eq. 3 as printed
//! uses `sigmoid(h₂·e_j)` with `e_j ∈ {0, 1}`, which cannot fall below
//! 0.5 for a healthy child (`sigmoid(0) = 0.5`). We map the error flag
//! to `±1` before gating so the learned gate can express both "ignore
//! healthy children" (`sigmoid(-h₂) → 0`) and "propagate failures"
//! (`sigmoid(h₂) → 1`), which is plainly the architecture's intent.
//!
//! # Example
//!
//! ```no_run
//! use sleuth_gnn::{Featurizer, ModelConfig, SleuthModel, TrainConfig};
//! use sleuth_synth::presets;
//! use sleuth_synth::workload::CorpusBuilder;
//!
//! let app = presets::synthetic(16, 1);
//! let corpus = CorpusBuilder::new(&app).seed(2).normal_traces(64);
//! let mut featurizer = Featurizer::new(8);
//! let encoded: Vec<_> = corpus.traces.iter().map(|t| featurizer.encode(&t.trace)).collect();
//! let mut model = SleuthModel::new(&ModelConfig::default(), 42);
//! let report = model.train(&encoded, &TrainConfig { epochs: 4, ..TrainConfig::default() });
//! assert!(report.epoch_losses.len() == 4);
//! ```

pub mod encode;
pub mod model;
pub mod session;
pub mod train;

pub use encode::{EncodedTrace, Featurizer, GraphBatch};
pub use model::{AggregatorKind, Checkpoint, ModelConfig, SleuthModel, TracePrediction};
pub use session::{CfRoot, CfSession};
pub use train::{TrainConfig, TrainReport};
