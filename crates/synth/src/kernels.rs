//! Local workload kernels (§5.1.4).
//!
//! The paper inserts pluggable microbenchmarks (stress-ng/iBench style)
//! between child RPC invocations to simulate request processing that
//! stresses distinct hardware and OS components. In this reproduction a
//! kernel is a heavy-tailed **log-normal service-time distribution**
//! tagged with the resource it stresses; chaos faults targeting a
//! resource multiply the service time of kernels stressing that resource
//! (see [`crate::chaos`]).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The hardware/OS component a kernel stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// CPU-bound computation.
    Cpu,
    /// Memory-bandwidth / cache-thrashing work.
    Memory,
    /// Disk or filesystem I/O.
    Disk,
    /// Lock contention / OS scheduler pressure.
    Scheduler,
}

impl KernelKind {
    /// All kinds in a stable order.
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Cpu,
        KernelKind::Memory,
        KernelKind::Disk,
        KernelKind::Scheduler,
    ];
}

/// A local-execution kernel: log-normal service time on one resource.
///
/// `mu`/`sigma` are the parameters of `ln(duration_us)`, so the median
/// service time is `e^mu` µs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Stressed resource.
    pub kind: KernelKind,
    /// Location of `ln(duration_us)`.
    pub mu: f64,
    /// Scale of `ln(duration_us)` — tail heaviness.
    pub sigma: f64,
}

impl Kernel {
    /// A kernel whose median service time is `median_us` with the given
    /// log-scale `sigma`.
    pub fn with_median(kind: KernelKind, median_us: f64, sigma: f64) -> Self {
        assert!(median_us > 0.0, "median must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Kernel {
            kind,
            mu: median_us.ln(),
            sigma,
        }
    }

    /// Median service time in µs.
    pub fn median_us(&self) -> f64 {
        self.mu.exp()
    }

    /// Sample a service time (µs), optionally slowed by a fault
    /// multiplier (`slowdown` ≥ 1.0 under stress, 1.0 when healthy).
    pub fn sample_us<R: Rng + ?Sized>(&self, slowdown: f64, rng: &mut R) -> u64 {
        let z = standard_normal(rng);
        let d = (self.mu + self.sigma * z).exp() * slowdown;
        d.round().clamp(1.0, 1e10) as u64
    }

    /// A zero-cost kernel (for nodes without local work).
    pub fn negligible() -> Self {
        Kernel::with_median(KernelKind::Cpu, 1.0, 0.0)
    }
}

/// One draw from N(0, 1) via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One draw from LogNormal(mu, sigma), in µs.
pub fn lognormal_us<R: Rng + ?Sized>(mu: f64, sigma: f64, rng: &mut R) -> u64 {
    let z = standard_normal(rng);
    (mu + sigma * z).exp().round().clamp(1.0, 1e10) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn median_roundtrip() {
        let k = Kernel::with_median(KernelKind::Cpu, 500.0, 1.0);
        assert!((k.median_us() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn sample_median_approximates_configured_median() {
        let k = Kernel::with_median(KernelKind::Disk, 1000.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut samples: Vec<u64> = (0..4000).map(|_| k.sample_us(1.0, &mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!((median / 1000.0 - 1.0).abs() < 0.15, "median {median}");
    }

    #[test]
    fn slowdown_multiplies() {
        let k = Kernel::with_median(KernelKind::Cpu, 100.0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = k.sample_us(1.0, &mut rng);
        let slow = k.sample_us(10.0, &mut rng);
        assert_eq!(base, 100);
        assert_eq!(slow, 1000);
    }

    #[test]
    fn heavy_tail_is_heavy() {
        // With sigma = 1.2, the p99/median ratio should be large (> 10x).
        let k = Kernel::with_median(KernelKind::Memory, 100.0, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut samples: Vec<u64> = (0..20_000).map(|_| k.sample_us(1.0, &mut rng)).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        let p99 = samples[samples.len() * 99 / 100] as f64;
        assert!(p99 / median > 10.0, "tail ratio {}", p99 / median);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn negligible_kernel_is_one_microsecond() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(Kernel::negligible().sample_us(1.0, &mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_median_rejected() {
        let _ = Kernel::with_median(KernelKind::Cpu, 0.0, 1.0);
    }
}
