//! Workload generation: training corpora and labelled anomaly queries.
//!
//! Reproduces the paper's data-collection methodology (§6.1.4, §6.2):
//! healthy traffic for (unsupervised) training, and evaluation queries
//! built by sampling a chaos fault plan, driving traffic through the
//! faulted system, and keeping SLO-violating traces together with the
//! injection-log ground truth.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sleuth_trace::Trace;

use crate::chaos::{ChaosEngine, FaultPlan};
use crate::config::App;
use crate::simulator::{SimConfig, SimulatedTrace, Simulator};

/// A set of simulated traces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Corpus {
    /// Simulated traces with their ground truth (empty for healthy
    /// traffic).
    pub traces: Vec<SimulatedTrace>,
}

impl Corpus {
    /// Just the assembled traces.
    pub fn plain_traces(&self) -> Vec<Trace> {
        self.traces.iter().map(|t| t.trace.clone()).collect()
    }

    /// Per-flow p99 end-to-end latency (µs), usable as an SLO.
    pub fn p99_by_flow(&self, num_flows: usize) -> Vec<u64> {
        let mut per_flow: Vec<Vec<u64>> = vec![Vec::new(); num_flows];
        for t in &self.traces {
            per_flow[t.flow].push(t.trace.total_duration_us());
        }
        per_flow
            .into_iter()
            .map(|mut v| {
                if v.is_empty() {
                    u64::MAX
                } else {
                    v.sort_unstable();
                    v[(v.len() * 99 / 100).min(v.len() - 1)]
                }
            })
            .collect()
    }
}

/// One evaluation query: a fault episode and its anomalous traces.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyQuery {
    /// The injected fault plan.
    pub plan: FaultPlan,
    /// SLO-violating traces observed during the episode (each carries
    /// its own ground truth — the instances that perturbed it).
    pub traces: Vec<SimulatedTrace>,
}

/// Generates corpora from an [`App`].
#[derive(Debug, Clone)]
pub struct CorpusBuilder<'a> {
    app: &'a App,
    sim_cfg: SimConfig,
    chaos: ChaosEngine,
    seed: u64,
    next_trace_id: u64,
}

impl<'a> CorpusBuilder<'a> {
    /// Create a builder with default simulator and chaos settings.
    pub fn new(app: &'a App) -> Self {
        CorpusBuilder {
            app,
            sim_cfg: SimConfig::default(),
            chaos: ChaosEngine::default(),
            seed: 0,
            next_trace_id: 1,
        }
    }

    /// Set the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override simulator tuning.
    pub fn sim_config(mut self, cfg: SimConfig) -> Self {
        self.sim_cfg = cfg;
        self
    }

    /// Override chaos tuning.
    pub fn chaos(mut self, chaos: ChaosEngine) -> Self {
        self.chaos = chaos;
        self
    }

    /// Generate `n` traces of healthy traffic (flows weighted).
    pub fn normal_traces(&self, n: usize) -> Corpus {
        let sim = Simulator::with_config(self.app, self.sim_cfg.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x6e6f726d);
        let plan = FaultPlan::healthy();
        let traces = (0..n)
            .map(|i| {
                let flow = sim.pick_flow(&mut rng);
                sim.simulate(flow, &plan, self.next_trace_id + i as u64, &mut rng)
            })
            .collect();
        Corpus { traces }
    }

    /// Generate a training corpus with occasional background faults —
    /// the unsupervised setting of the paper, where production traffic
    /// already contains (unlabelled) anomalies.
    pub fn mixed_traces(&self, n: usize, fault_episode_every: usize) -> Corpus {
        let sim = Simulator::with_config(self.app, self.sim_cfg.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x6d697865);
        let mut traces = Vec::with_capacity(n);
        let mut plan = FaultPlan::healthy();
        for i in 0..n {
            if fault_episode_every > 0 && i % fault_episode_every == 0 {
                // Mostly healthy windows; occasional faults.
                plan = self.chaos.sample_plan(self.app, &mut rng);
            }
            let flow = sim.pick_flow(&mut rng);
            traces.push(sim.simulate(flow, &plan, 1 + i as u64, &mut rng));
        }
        Corpus { traces }
    }

    /// Build `n_queries` anomaly queries. Each query samples a non-empty
    /// fault plan, drives up to `traffic_per_query` requests through the
    /// faulted system, and keeps traces that violate the SLO (duration
    /// above the healthy p99 of their flow, or an error at the root) and
    /// were actually perturbed by the injection.
    pub fn anomaly_queries(&self, n_queries: usize, traffic_per_query: usize) -> Vec<AnomalyQuery> {
        let sim = Simulator::with_config(self.app, self.sim_cfg.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x616e6f6d);

        // Healthy SLO baselines.
        let baseline = self.normal_traces(300.min(traffic_per_query * 4).max(50));
        let slo = baseline.p99_by_flow(self.app.flows.len());

        // Fault density is normalised to ~1 injected instance per
        // episode regardless of application size (the paper's "small
        // probabilities" per instance; real incidents are typically
        // single-fault).
        let instances: usize = self.app.services.iter().map(|s| s.pods.len()).sum();
        let query_chaos = ChaosEngine {
            per_instance_probability: self
                .chaos
                .per_instance_probability
                .min(1.0 / instances as f64),
            ..self.chaos.clone()
        };
        let mut queries = Vec::with_capacity(n_queries);
        let mut trace_id = 1_000_000u64;
        while queries.len() < n_queries {
            let plan = query_chaos.sample_nonempty_plan(self.app, &mut rng);
            let mut traces = Vec::new();
            for _ in 0..traffic_per_query {
                let flow = sim.pick_flow(&mut rng);
                let st = sim.simulate(flow, &plan, trace_id, &mut rng);
                trace_id += 1;
                let violates = st.trace.is_error() || st.trace.total_duration_us() > slo[st.flow];
                if violates && !st.ground_truth.is_empty() {
                    traces.push(st);
                }
            }
            if !traces.is_empty() {
                queries.push(AnomalyQuery { plan, traces });
            }
        }
        queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::synthetic;

    #[test]
    fn normal_corpus_is_clean_and_deterministic() {
        let app = synthetic(16, 1);
        let b = CorpusBuilder::new(&app).seed(3);
        let c1 = b.normal_traces(25);
        let c2 = CorpusBuilder::new(&app).seed(3).normal_traces(25);
        assert_eq!(c1, c2);
        assert_eq!(c1.traces.len(), 25);
        assert!(c1.traces.iter().all(|t| t.ground_truth.is_empty()));
    }

    #[test]
    fn p99_by_flow_reasonable() {
        let app = synthetic(16, 1);
        let c = CorpusBuilder::new(&app).seed(4).normal_traces(120);
        let p99 = c.p99_by_flow(app.flows.len());
        assert_eq!(p99.len(), app.flows.len());
        // Main flow must have samples and a finite p99.
        assert!(p99[0] > 0 && p99[0] < u64::MAX);
    }

    #[test]
    fn anomaly_queries_carry_ground_truth() {
        let app = synthetic(16, 1);
        let queries = CorpusBuilder::new(&app).seed(5).anomaly_queries(5, 20);
        assert_eq!(queries.len(), 5);
        for q in &queries {
            assert!(!q.plan.is_healthy());
            assert!(!q.traces.is_empty());
            for t in &q.traces {
                assert!(!t.ground_truth.is_empty());
            }
        }
    }

    #[test]
    fn mixed_corpus_contains_some_anomalies() {
        let app = synthetic(16, 1);
        let chaos = ChaosEngine {
            per_instance_probability: 0.1,
            ..ChaosEngine::default()
        };
        let c = CorpusBuilder::new(&app)
            .seed(6)
            .chaos(chaos)
            .mixed_traces(200, 20);
        let anomalous = c
            .traces
            .iter()
            .filter(|t| !t.ground_truth.is_empty())
            .count();
        assert!(anomalous > 0, "no anomalies in mixed corpus");
        assert!(anomalous < 150, "too many anomalies: {anomalous}");
    }

    #[test]
    fn plain_traces_projection() {
        let app = synthetic(16, 1);
        let c = CorpusBuilder::new(&app).seed(7).normal_traces(5);
        assert_eq!(c.plain_traces().len(), 5);
    }
}
