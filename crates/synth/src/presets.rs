//! Benchmark application presets (§6.1.1, Table 1).
//!
//! Hand-built topologies for the two open-source benchmarks the paper
//! evaluates — SockShop and DeathStarBench's SocialNetwork — plus the
//! Synthetic-N family produced by the §5 generator. The presets match
//! Table 1's scale: service counts, RPC counts, max spans per trace and
//! span-tree depth.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::{App, ExecutionPlan, Flow, FlowNode, Pod, Service, Tier};
use crate::generator::{generate_app, GeneratorConfig};
use crate::kernels::{Kernel, KernelKind};

/// A Synthetic-N application (N ∈ {16, 64, 256, 1024} in the paper),
/// generated deterministically from `seed`.
pub fn synthetic(n_rpcs: usize, seed: u64) -> App {
    generate_app(&GeneratorConfig::synthetic(n_rpcs), seed)
}

/// Incremental flow-tree builder used by the hand-built presets.
struct FlowBuilder {
    nodes: Vec<FlowNode>,
    /// Parents whose children should run in one parallel stage.
    parallel_parents: Vec<usize>,
    /// (parent, position) pairs invoked asynchronously.
    async_edges: Vec<(usize, usize)>,
}

impl FlowBuilder {
    fn new() -> Self {
        FlowBuilder {
            nodes: Vec::new(),
            parallel_parents: Vec::new(),
            async_edges: Vec::new(),
        }
    }

    /// Add a node; `parent` is `None` only for the root.
    fn node(&mut self, parent: Option<usize>, service: usize, op: &str, kernel: Kernel) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(FlowNode {
            service,
            op_name: op.to_string(),
            children: Vec::new(),
            exec: ExecutionPlan::default(),
            pre_kernel: kernel,
            post_kernel: Kernel::with_median(kernel.kind, kernel.median_us() * 0.3, kernel.sigma),
            timeout_us: 2_000_000,
            base_error_rate: 0.0005,
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(idx);
        }
        idx
    }

    /// Mark a parent's children as one parallel stage.
    fn parallel(&mut self, parent: usize) {
        self.parallel_parents.push(parent);
    }

    /// Mark the edge to `child` as asynchronous (fire-and-forget).
    fn asynchronous(&mut self, parent: usize, child: usize) {
        let pos = self.nodes[parent]
            .children
            .iter()
            .position(|&c| c == child)
            .expect("child must belong to parent");
        self.async_edges.push((parent, pos));
    }

    fn finish(mut self, name: &str, weight: f64) -> Flow {
        for i in 0..self.nodes.len() {
            let n_children = self.nodes[i].children.len();
            let async_positions: Vec<usize> = self
                .async_edges
                .iter()
                .filter(|&&(p, _)| p == i)
                .map(|&(_, pos)| pos)
                .collect();
            let sync_positions: Vec<usize> = (0..n_children)
                .filter(|p| !async_positions.contains(p))
                .collect();
            let stages = if self.parallel_parents.contains(&i) {
                if sync_positions.is_empty() {
                    Vec::new()
                } else {
                    vec![sync_positions]
                }
            } else {
                sync_positions.into_iter().map(|p| vec![p]).collect()
            };
            self.nodes[i].exec = ExecutionPlan {
                stages,
                async_children: async_positions,
            };
        }
        Flow {
            name: name.to_string(),
            weight,
            nodes: self.nodes,
        }
    }
}

fn make_services(
    specs: &[(&str, Tier, KernelKind)],
    num_nodes: usize,
    seed: u64,
) -> (Vec<Service>, Vec<String>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let nodes: Vec<String> = (0..num_nodes).map(|i| format!("node-{i}")).collect();
    let services = specs
        .iter()
        .map(|(name, tier, _)| Service {
            name: name.to_string(),
            tier: *tier,
            pods: (0..2)
                .map(|p| Pod {
                    name: format!("{name}-{p}"),
                    node: rng.gen_range(0..num_nodes),
                })
                .collect(),
        })
        .collect();
    (services, nodes)
}

/// Kernel presets per role.
fn svc_kernel() -> Kernel {
    Kernel::with_median(KernelKind::Cpu, 400.0, 0.6)
}
fn mid_kernel() -> Kernel {
    Kernel::with_median(KernelKind::Cpu, 250.0, 0.5)
}
fn db_kernel() -> Kernel {
    Kernel::with_median(KernelKind::Disk, 900.0, 0.8)
}
fn cache_kernel() -> Kernel {
    Kernel::with_median(KernelKind::Memory, 80.0, 0.4)
}
fn queue_kernel() -> Kernel {
    Kernel::with_median(KernelKind::Scheduler, 120.0, 0.5)
}

/// The SockShop demo application: 11 services, 58 RPC sites, with
/// `POST /orders` as the most complex flow (≈57 spans, span depth 9).
pub fn sockshop() -> App {
    // Service indices.
    const FRONT: usize = 0;
    const CATALOGUE: usize = 1;
    const CARTS: usize = 2;
    const CARTS_DB: usize = 3;
    const ORDERS: usize = 4;
    const ORDERS_DB: usize = 5;
    const SHIPPING: usize = 6;
    const RABBITMQ: usize = 7;
    const PAYMENT: usize = 8;
    const USER: usize = 9;
    const USER_DB: usize = 10;

    let (services, nodes) = make_services(
        &[
            ("front-end", Tier::Frontend, KernelKind::Cpu),
            ("catalogue", Tier::Backend, KernelKind::Cpu),
            ("carts", Tier::Middleware, KernelKind::Cpu),
            ("carts-db", Tier::Leaf, KernelKind::Disk),
            ("orders", Tier::Middleware, KernelKind::Cpu),
            ("orders-db", Tier::Leaf, KernelKind::Disk),
            ("shipping", Tier::Backend, KernelKind::Cpu),
            ("rabbitmq", Tier::Leaf, KernelKind::Scheduler),
            ("payment", Tier::Backend, KernelKind::Cpu),
            ("user", Tier::Middleware, KernelKind::Cpu),
            ("user-db", Tier::Leaf, KernelKind::Disk),
        ],
        6,
        101,
    );

    // POST /orders — the paper's most complex SockShop API (57 spans,
    // depth 9).
    let mut b = FlowBuilder::new();
    let root = b.node(None, FRONT, "POST /orders", svc_kernel());
    let sess = b.node(Some(root), USER, "VerifySession", mid_kernel());
    b.node(Some(sess), USER_DB, "mongo.find", db_kernel());
    let order = b.node(Some(root), ORDERS, "CreateOrder", svc_kernel());
    let cust = b.node(Some(order), USER, "GetCustomer", mid_kernel());
    b.node(Some(cust), USER_DB, "mongo.find", db_kernel());
    let card = b.node(Some(order), USER, "GetCard", mid_kernel());
    b.node(Some(card), USER_DB, "mongo.find", db_kernel());
    let addr = b.node(Some(order), USER, "GetAddress", mid_kernel());
    b.node(Some(addr), USER_DB, "mongo.find", db_kernel());
    let cart = b.node(Some(order), CARTS, "GetCart", mid_kernel());
    b.node(Some(cart), CARTS_DB, "mongo.query", db_kernel());
    let count = b.node(Some(order), CARTS, "GetItemCount", mid_kernel());
    b.node(Some(count), CARTS_DB, "mongo.count", db_kernel());
    let pay = b.node(Some(order), PAYMENT, "Authorise", svc_kernel());
    let payc = b.node(Some(pay), USER, "GetCustomer", mid_kernel());
    b.node(Some(payc), USER_DB, "mongo.find", db_kernel());
    let payr = b.node(Some(pay), PAYMENT, "RecordTransaction", mid_kernel());
    b.node(Some(payr), ORDERS_DB, "mongo.insert", db_kernel());
    let ship = b.node(Some(order), SHIPPING, "CreateShipment", svc_kernel());
    let publish = b.node(Some(ship), RABBITMQ, "amqp.publish", queue_kernel());
    b.asynchronous(ship, publish);
    let loyal = b.node(Some(order), USER, "GetLoyalty", mid_kernel());
    b.node(Some(loyal), USER_DB, "mongo.find", db_kernel());
    b.node(Some(order), ORDERS_DB, "mongo.insert", db_kernel());
    let del = b.node(Some(order), CARTS, "DeleteCart", mid_kernel());
    b.node(Some(del), CARTS_DB, "mongo.delete", db_kernel());
    b.node(Some(root), CATALOGUE, "ListRelated", svc_kernel());
    let recs = b.node(Some(root), CATALOGUE, "GetRecommendations", svc_kernel());
    b.node(Some(recs), CATALOGUE, "sql.select", db_kernel());
    // Parallelism: the user/cart lookups inside CreateOrder fan out.
    b.parallel(order);
    let post_orders = b.finish("POST /orders", 0.25);

    // GET /catalogue
    let mut b = FlowBuilder::new();
    let root = b.node(None, FRONT, "GET /catalogue", svc_kernel());
    let list = b.node(Some(root), CATALOGUE, "ListSocks", svc_kernel());
    b.node(Some(list), CATALOGUE, "sql.select", db_kernel());
    let tags = b.node(Some(root), CATALOGUE, "GetTags", svc_kernel());
    b.node(Some(tags), CATALOGUE, "sql.select", db_kernel());
    b.node(Some(root), USER, "VerifySession", mid_kernel());
    let get_catalogue = b.finish("GET /catalogue", 1.0);

    // GET /cart
    let mut b = FlowBuilder::new();
    let root = b.node(None, FRONT, "GET /cart", svc_kernel());
    let cart = b.node(Some(root), CARTS, "GetCart", mid_kernel());
    b.node(Some(cart), CARTS_DB, "mongo.query", db_kernel());
    let sess = b.node(Some(root), USER, "VerifySession", mid_kernel());
    b.node(Some(sess), USER_DB, "mongo.find", db_kernel());
    let get_cart = b.finish("GET /cart", 0.7);

    // POST /cart
    let mut b = FlowBuilder::new();
    let root = b.node(None, FRONT, "POST /cart", svc_kernel());
    let item = b.node(Some(root), CATALOGUE, "GetSock", svc_kernel());
    b.node(Some(item), CATALOGUE, "sql.select", db_kernel());
    let add = b.node(Some(root), CARTS, "AddItem", mid_kernel());
    b.node(Some(add), CARTS_DB, "mongo.update", db_kernel());
    b.node(Some(root), USER, "VerifySession", mid_kernel());
    let post_cart = b.finish("POST /cart", 0.6);

    // GET /login
    let mut b = FlowBuilder::new();
    let root = b.node(None, FRONT, "GET /login", svc_kernel());
    let login = b.node(Some(root), USER, "Login", mid_kernel());
    b.node(Some(login), USER_DB, "mongo.find", db_kernel());
    let merge = b.node(Some(root), CARTS, "MergeCarts", mid_kernel());
    b.node(Some(merge), CARTS_DB, "mongo.update", db_kernel());
    let get_login = b.finish("GET /login", 0.3);

    // GET /orders
    let mut b = FlowBuilder::new();
    let root = b.node(None, FRONT, "GET /orders", svc_kernel());
    let list = b.node(Some(root), ORDERS, "ListOrders", svc_kernel());
    b.node(Some(list), ORDERS_DB, "mongo.find", db_kernel());
    let ship = b.node(Some(list), SHIPPING, "GetShipmentStatus", mid_kernel());
    b.node(Some(ship), RABBITMQ, "amqp.query", queue_kernel());
    let sess = b.node(Some(root), USER, "VerifySession", mid_kernel());
    b.node(Some(sess), USER_DB, "mongo.find", db_kernel());
    let get_orders = b.finish("GET /orders", 0.4);

    let app = App {
        name: "sockshop".into(),
        nodes,
        services,
        flows: vec![
            post_orders,
            get_catalogue,
            get_cart,
            post_cart,
            get_login,
            get_orders,
        ],
    };
    app.validate().expect("sockshop preset must validate");
    app
}

/// The DeathStarBench SocialNetwork application: 26 services, with
/// `ComposePost` as the most complex flow (31 spans, span depth 9).
pub fn socialnetwork() -> App {
    const NGINX: usize = 0;
    const COMPOSE: usize = 1;
    const UNIQUE_ID: usize = 2;
    const TEXT: usize = 3;
    const URL_SHORTEN: usize = 4;
    const URL_MONGO: usize = 5;
    const USER_MENTION: usize = 6;
    const USER_MEMCACHED: usize = 7;
    const MEDIA: usize = 8;
    const MEDIA_MONGO: usize = 9;
    const USER: usize = 10;
    const USER_MONGO: usize = 11;
    const POST_STORAGE: usize = 12;
    const POST_MONGO: usize = 13;
    const POST_MEMCACHED: usize = 14;
    const USER_TIMELINE: usize = 15;
    const UT_REDIS: usize = 16;
    const UT_MONGO: usize = 17;
    const HOME_TIMELINE: usize = 18;
    const HT_REDIS: usize = 19;
    const SOCIAL_GRAPH: usize = 20;
    const SG_REDIS: usize = 21;
    const SG_MONGO: usize = 22;
    const WRITE_HT: usize = 23;
    const RABBITMQ: usize = 24;
    const COMPOSE_REDIS: usize = 25;

    let (services, nodes) = make_services(
        &[
            ("nginx-web-server", Tier::Frontend, KernelKind::Cpu),
            ("compose-post-service", Tier::Middleware, KernelKind::Cpu),
            ("unique-id-service", Tier::Backend, KernelKind::Cpu),
            ("text-service", Tier::Backend, KernelKind::Cpu),
            ("url-shorten-service", Tier::Backend, KernelKind::Cpu),
            ("url-shorten-mongodb", Tier::Leaf, KernelKind::Disk),
            ("user-mention-service", Tier::Backend, KernelKind::Cpu),
            ("user-memcached", Tier::Leaf, KernelKind::Memory),
            ("media-service", Tier::Backend, KernelKind::Cpu),
            ("media-mongodb", Tier::Leaf, KernelKind::Disk),
            ("user-service", Tier::Middleware, KernelKind::Cpu),
            ("user-mongodb", Tier::Leaf, KernelKind::Disk),
            ("post-storage-service", Tier::Backend, KernelKind::Cpu),
            ("post-storage-mongodb", Tier::Leaf, KernelKind::Disk),
            ("post-storage-memcached", Tier::Leaf, KernelKind::Memory),
            ("user-timeline-service", Tier::Backend, KernelKind::Cpu),
            ("user-timeline-redis", Tier::Leaf, KernelKind::Memory),
            ("user-timeline-mongodb", Tier::Leaf, KernelKind::Disk),
            ("home-timeline-service", Tier::Middleware, KernelKind::Cpu),
            ("home-timeline-redis", Tier::Leaf, KernelKind::Memory),
            ("social-graph-service", Tier::Middleware, KernelKind::Cpu),
            ("social-graph-redis", Tier::Leaf, KernelKind::Memory),
            ("social-graph-mongodb", Tier::Leaf, KernelKind::Disk),
            (
                "write-home-timeline-service",
                Tier::Backend,
                KernelKind::Cpu,
            ),
            (
                "write-home-timeline-rabbitmq",
                Tier::Leaf,
                KernelKind::Scheduler,
            ),
            ("compose-post-redis", Tier::Leaf, KernelKind::Memory),
        ],
        10,
        202,
    );

    // ComposePost — 16 RPC nodes → 31 spans, depth 9.
    let mut b = FlowBuilder::new();
    let root = b.node(None, NGINX, "POST /api/post/compose", svc_kernel());
    let compose = b.node(Some(root), COMPOSE, "ComposePost", svc_kernel());
    b.node(Some(compose), UNIQUE_ID, "UploadUniqueId", mid_kernel());
    let text = b.node(Some(compose), TEXT, "UploadText", mid_kernel());
    let urls = b.node(Some(text), URL_SHORTEN, "UploadUrls", mid_kernel());
    b.node(Some(urls), URL_MONGO, "mongo.insert", db_kernel());
    let mention = b.node(Some(text), USER_MENTION, "UploadUserMentions", mid_kernel());
    b.node(
        Some(mention),
        USER_MEMCACHED,
        "memcached.mget",
        cache_kernel(),
    );
    b.node(Some(compose), MEDIA, "UploadMedia", mid_kernel());
    let creator = b.node(Some(compose), USER, "UploadCreator", mid_kernel());
    b.node(
        Some(creator),
        USER_MEMCACHED,
        "memcached.get",
        cache_kernel(),
    );
    let store = b.node(Some(compose), POST_STORAGE, "StorePost", svc_kernel());
    b.node(Some(store), POST_MONGO, "mongo.insert", db_kernel());
    let ut = b.node(
        Some(compose),
        USER_TIMELINE,
        "WriteUserTimeline",
        mid_kernel(),
    );
    b.node(Some(ut), UT_REDIS, "redis.zadd", cache_kernel());
    let fanout = b.node(Some(compose), WRITE_HT, "FanoutHomeTimelines", svc_kernel());
    b.asynchronous(compose, fanout);
    b.parallel(compose);
    b.parallel(text);
    let compose_post = b.finish("ComposePost", 0.3);

    // ReadHomeTimeline
    let mut b = FlowBuilder::new();
    let root = b.node(None, NGINX, "GET /api/home-timeline/read", svc_kernel());
    let ht = b.node(Some(root), HOME_TIMELINE, "ReadHomeTimeline", svc_kernel());
    b.node(Some(ht), HT_REDIS, "redis.zrange", cache_kernel());
    let posts = b.node(Some(ht), POST_STORAGE, "ReadPosts", mid_kernel());
    b.node(
        Some(posts),
        POST_MEMCACHED,
        "memcached.mget",
        cache_kernel(),
    );
    b.node(Some(posts), POST_MONGO, "mongo.find", db_kernel());
    let read_home = b.finish("ReadHomeTimeline", 1.0);

    // ReadUserTimeline
    let mut b = FlowBuilder::new();
    let root = b.node(None, NGINX, "GET /api/user-timeline/read", svc_kernel());
    let ut = b.node(Some(root), USER_TIMELINE, "ReadUserTimeline", svc_kernel());
    b.node(Some(ut), UT_REDIS, "redis.zrevrange", cache_kernel());
    b.node(Some(ut), UT_MONGO, "mongo.find", db_kernel());
    let posts = b.node(Some(ut), POST_STORAGE, "ReadPosts", mid_kernel());
    b.node(
        Some(posts),
        POST_MEMCACHED,
        "memcached.mget",
        cache_kernel(),
    );
    b.node(Some(posts), POST_MONGO, "mongo.find", db_kernel());
    let read_user = b.finish("ReadUserTimeline", 0.8);

    // Login
    let mut b = FlowBuilder::new();
    let root = b.node(None, NGINX, "POST /api/user/login", svc_kernel());
    let login = b.node(Some(root), USER, "Login", mid_kernel());
    b.node(Some(login), USER_MEMCACHED, "memcached.get", cache_kernel());
    b.node(Some(login), USER_MONGO, "mongo.find", db_kernel());
    b.node(Some(root), COMPOSE_REDIS, "redis.set", cache_kernel());
    let login_flow = b.finish("Login", 0.2);

    // Follow
    let mut b = FlowBuilder::new();
    let root = b.node(None, NGINX, "POST /api/user/follow", svc_kernel());
    let follow = b.node(Some(root), SOCIAL_GRAPH, "Follow", svc_kernel());
    b.node(Some(follow), SG_REDIS, "redis.sadd", cache_kernel());
    b.node(Some(follow), SG_MONGO, "mongo.update", db_kernel());
    let uid = b.node(Some(follow), USER, "GetUserId", mid_kernel());
    b.node(Some(uid), USER_MEMCACHED, "memcached.get", cache_kernel());
    let follow_flow = b.finish("Follow", 0.2);

    // FanoutHomeTimelines (worker-driven flow via the queue)
    let mut b = FlowBuilder::new();
    let root = b.node(None, WRITE_HT, "FanoutWorker", svc_kernel());
    b.node(Some(root), RABBITMQ, "amqp.consume", queue_kernel());
    let sg = b.node(Some(root), SOCIAL_GRAPH, "GetFollowers", mid_kernel());
    b.node(Some(sg), SG_REDIS, "redis.smembers", cache_kernel());
    b.node(Some(root), HT_REDIS, "redis.zadd", cache_kernel());
    let fanout_flow = b.finish("FanoutHomeTimelines", 0.25);

    // ReadPost media path
    let mut b = FlowBuilder::new();
    let root = b.node(None, NGINX, "GET /api/media/get", svc_kernel());
    let media = b.node(Some(root), MEDIA, "GetMedia", mid_kernel());
    b.node(Some(media), MEDIA_MONGO, "mongo.find", db_kernel());
    let media_flow = b.finish("GetMedia", 0.3);

    // ReadPost (single post with media and creator)
    let mut b = FlowBuilder::new();
    let root = b.node(None, NGINX, "GET /api/post/read", svc_kernel());
    let post = b.node(Some(root), POST_STORAGE, "ReadPost", mid_kernel());
    b.node(Some(post), POST_MEMCACHED, "memcached.get", cache_kernel());
    b.node(Some(post), POST_MONGO, "mongo.find", db_kernel());
    let media = b.node(Some(root), MEDIA, "GetMedia", mid_kernel());
    b.node(Some(media), MEDIA_MONGO, "mongo.find", db_kernel());
    let user = b.node(Some(root), USER, "GetCreator", mid_kernel());
    b.node(Some(user), USER_MEMCACHED, "memcached.get", cache_kernel());
    let read_post_flow = b.finish("ReadPost", 0.3);

    // Profile page composite
    let mut b = FlowBuilder::new();
    let root = b.node(None, NGINX, "GET /api/user/profile", svc_kernel());
    let user = b.node(Some(root), USER, "GetProfile", mid_kernel());
    b.node(Some(user), USER_MEMCACHED, "memcached.get", cache_kernel());
    b.node(Some(user), USER_MONGO, "mongo.find", db_kernel());
    let sg = b.node(Some(root), SOCIAL_GRAPH, "GetFollowerCount", mid_kernel());
    b.node(Some(sg), SG_REDIS, "redis.scard", cache_kernel());
    b.parallel(root);
    let profile_flow = b.finish("GetProfile", 0.4);

    let app = App {
        name: "socialnetwork".into(),
        nodes,
        services,
        flows: vec![
            compose_post,
            read_home,
            read_user,
            login_flow,
            follow_flow,
            fanout_flow,
            media_flow,
            read_post_flow,
            profile_flow,
        ],
    };
    app.validate().expect("socialnetwork preset must validate");
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sockshop_matches_table1_scale() {
        let app = sockshop();
        assert_eq!(app.num_services(), 11);
        // Paper: 58 RPCs, 57 max spans, depth 9.
        assert!(
            (50..=66).contains(&app.num_rpcs()),
            "rpcs {}",
            app.num_rpcs()
        );
        assert!(
            (50..=60).contains(&app.max_spans()),
            "max spans {}",
            app.max_spans()
        );
        assert_eq!(app.max_depth(), 9);
    }

    #[test]
    fn socialnetwork_matches_table1_scale() {
        let app = socialnetwork();
        assert_eq!(app.num_services(), 26);
        // Paper: 61 RPCs, 31 max spans, depth 9.
        assert!(
            (45..=70).contains(&app.num_rpcs()),
            "rpcs {}",
            app.num_rpcs()
        );
        assert!(
            (29..=33).contains(&app.max_spans()),
            "max spans {}",
            app.max_spans()
        );
        assert_eq!(app.max_depth(), 9);
    }

    #[test]
    fn synthetic_family_scales() {
        for (n, svcs) in [(16usize, 4usize), (64, 16), (256, 64), (1024, 256)] {
            let app = synthetic(n, 7);
            assert_eq!(app.num_rpcs(), n);
            assert_eq!(app.num_services(), svcs);
            app.validate().unwrap();
        }
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(sockshop(), sockshop());
        assert_eq!(socialnetwork(), socialnetwork());
        assert_eq!(synthetic(64, 3), synthetic(64, 3));
    }

    #[test]
    fn sockshop_post_orders_is_most_complex() {
        let app = sockshop();
        let spans: Vec<usize> = app.flows.iter().map(|f| f.span_count()).collect();
        assert_eq!(
            spans.iter().max(),
            Some(&app.flows[0].span_count()),
            "POST /orders must be the largest flow"
        );
    }

    #[test]
    fn presets_have_async_and_parallel_structure() {
        for app in [sockshop(), socialnetwork()] {
            let any_async = app
                .flows
                .iter()
                .flat_map(|f| &f.nodes)
                .any(|n| !n.exec.async_children.is_empty());
            let any_parallel = app
                .flows
                .iter()
                .flat_map(|f| &f.nodes)
                .any(|n| n.exec.stages.iter().any(|s| s.len() > 1));
            assert!(any_async, "{}: no async edges", app.name);
            assert!(any_parallel, "{}: no parallel stages", app.name);
        }
    }
}
