//! Chaos engineering: fault injection with ground-truth logging (§6.1.4).
//!
//! The paper injects CPU, network, memory, and disk noise with
//! Chaosblade at container, pod, and node level, deciding per instance
//! with independent small-probability Bernoulli draws, and uses the
//! injection log as evaluation ground truth. This module reproduces that
//! scheme against the simulator: a [`FaultPlan`] maps instances to
//! active faults, and the simulator consults it for kernel slow-downs,
//! extra network latency and forced errors.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::App;
use crate::kernels::KernelKind;

/// The resource a fault disturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// CPU saturation (stresses CPU kernels hardest).
    CpuStress,
    /// Memory bandwidth/cache pressure.
    MemoryStress,
    /// Disk / filesystem contention.
    DiskStress,
    /// Added network latency on calls *into* the target.
    NetworkDelay,
    /// Forced request failures at the target.
    ErrorInjection,
}

impl FaultKind {
    /// All kinds in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::CpuStress,
        FaultKind::MemoryStress,
        FaultKind::DiskStress,
        FaultKind::NetworkDelay,
        FaultKind::ErrorInjection,
    ];

    /// Slow-down multiplier this fault applies to a kernel of `kind`
    /// per unit severity. Resource-matched kernels suffer most; others
    /// see mild interference.
    pub fn kernel_affinity(self, kind: KernelKind) -> f64 {
        match (self, kind) {
            (FaultKind::CpuStress, KernelKind::Cpu) => 1.0,
            (FaultKind::CpuStress, KernelKind::Scheduler) => 0.5,
            (FaultKind::MemoryStress, KernelKind::Memory) => 1.0,
            (FaultKind::MemoryStress, KernelKind::Cpu) => 0.3,
            (FaultKind::DiskStress, KernelKind::Disk) => 1.0,
            (FaultKind::DiskStress, KernelKind::Scheduler) => 0.2,
            (FaultKind::NetworkDelay, _) | (FaultKind::ErrorInjection, _) => 0.0,
            _ => 0.1,
        }
    }
}

/// Scope of a fault, mirroring Chaosblade's container/pod/node levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// One container: a single service process in one pod.
    Container {
        /// Index into [`App::services`].
        service: usize,
        /// Index into that service's pods.
        pod: usize,
    },
    /// A whole pod (all containers of the service replica).
    Pod {
        /// Index into [`App::services`].
        service: usize,
        /// Index into that service's pods.
        pod: usize,
    },
    /// A cluster node: every pod scheduled on it.
    Node {
        /// Index into [`App::nodes`].
        node: usize,
    },
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// What is disturbed.
    pub kind: FaultKind,
    /// Where it is injected.
    pub target: FaultTarget,
    /// Intensity: kernel slow-down factor for stress faults, extra
    /// latency in µs / 1000 for network delay, error probability for
    /// error injection.
    pub severity: f64,
}

/// The set of active faults during a simulation window, with the
/// injection log that serves as evaluation ground truth.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Active faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (healthy system).
    pub fn healthy() -> Self {
        FaultPlan::default()
    }

    /// Whether no faults are active.
    pub fn is_healthy(&self) -> bool {
        self.faults.is_empty()
    }

    fn target_matches(app: &App, target: FaultTarget, service: usize, pod: usize) -> bool {
        match target {
            FaultTarget::Container { service: s, pod: p }
            | FaultTarget::Pod { service: s, pod: p } => s == service && p == pod,
            FaultTarget::Node { node } => app.services[service].pods[pod].node == node,
        }
    }

    /// Combined kernel slow-down multiplier for work of `kind` running
    /// in `(service, pod)`. 1.0 when unaffected.
    pub fn slowdown(&self, app: &App, service: usize, pod: usize, kind: KernelKind) -> f64 {
        let mut m = 1.0;
        for f in &self.faults {
            if Self::target_matches(app, f.target, service, pod) {
                let affinity = f.kind.kernel_affinity(kind);
                if affinity > 0.0 {
                    m += f.severity * affinity;
                }
            }
        }
        m
    }

    /// Extra network latency (µs) for a call into `(service, pod)`.
    pub fn network_delay_us(&self, app: &App, service: usize, pod: usize) -> u64 {
        let mut d = 0.0;
        for f in &self.faults {
            if f.kind == FaultKind::NetworkDelay
                && Self::target_matches(app, f.target, service, pod)
            {
                d += f.severity * 1_000.0;
            }
        }
        d as u64
    }

    /// Extra exclusive-error probability at `(service, pod)`.
    pub fn error_probability(&self, app: &App, service: usize, pod: usize) -> f64 {
        let mut p: f64 = 0.0;
        for f in &self.faults {
            if f.kind == FaultKind::ErrorInjection
                && Self::target_matches(app, f.target, service, pod)
            {
                p = p.max(f.severity);
            }
        }
        p.min(1.0)
    }

    /// Service names targeted by any fault (injection-log ground truth
    /// at service granularity).
    pub fn target_services(&self, app: &App) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for f in &self.faults {
            match f.target {
                FaultTarget::Container { service, .. } | FaultTarget::Pod { service, .. } => {
                    let name = app.services[service].name.clone();
                    if !out.contains(&name) {
                        out.push(name);
                    }
                }
                FaultTarget::Node { node } => {
                    for s in &app.services {
                        if s.pods.iter().any(|p| p.node == node) && !out.contains(&s.name) {
                            out.push(s.name.clone());
                        }
                    }
                }
            }
        }
        out
    }
}

/// Samples fault plans the way the paper's evaluation does: a Bernoulli
/// draw per instance with a small probability.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEngine {
    /// Per-instance injection probability.
    pub per_instance_probability: f64,
    /// Severity range for stress faults (slow-down factor).
    pub stress_severity: (f64, f64),
    /// Severity range for network delay (ms).
    pub delay_severity: (f64, f64),
    /// Severity range for error injection (probability).
    pub error_severity: (f64, f64),
    /// Probability a sampled fault targets a whole node instead of one
    /// pod/container.
    pub node_scope_probability: f64,
}

impl Default for ChaosEngine {
    fn default() -> Self {
        ChaosEngine {
            per_instance_probability: 0.02,
            stress_severity: (4.0, 20.0),
            delay_severity: (20.0, 200.0),
            error_severity: (0.6, 1.0),
            node_scope_probability: 0.1,
        }
    }
}

impl ChaosEngine {
    /// Sample a fault plan; may be healthy if no Bernoulli fires.
    pub fn sample_plan<R: Rng + ?Sized>(&self, app: &App, rng: &mut R) -> FaultPlan {
        let mut faults = Vec::new();
        for (si, svc) in app.services.iter().enumerate() {
            for (pi, _) in svc.pods.iter().enumerate() {
                if rng.gen_bool(self.per_instance_probability) {
                    faults.push(self.sample_fault_at(app, si, pi, rng));
                }
            }
        }
        FaultPlan { faults }
    }

    /// Sample a plan guaranteed to contain at least one fault (used to
    /// build anomaly queries).
    pub fn sample_nonempty_plan<R: Rng + ?Sized>(&self, app: &App, rng: &mut R) -> FaultPlan {
        let mut plan = self.sample_plan(app, rng);
        if plan.is_healthy() {
            let si = rng.gen_range(0..app.services.len());
            let pi = rng.gen_range(0..app.services[si].pods.len());
            plan.faults.push(self.sample_fault_at(app, si, pi, rng));
        }
        plan
    }

    fn sample_fault_at<R: Rng + ?Sized>(
        &self,
        app: &App,
        service: usize,
        pod: usize,
        rng: &mut R,
    ) -> Fault {
        let kind = FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())];
        let severity = match kind {
            FaultKind::NetworkDelay => rng.gen_range(self.delay_severity.0..=self.delay_severity.1),
            FaultKind::ErrorInjection => {
                rng.gen_range(self.error_severity.0..=self.error_severity.1)
            }
            _ => rng.gen_range(self.stress_severity.0..=self.stress_severity.1),
        };
        let target = if rng.gen_bool(self.node_scope_probability) {
            FaultTarget::Node {
                node: app.services[service].pods[pod].node,
            }
        } else if rng.gen_bool(0.5) {
            FaultTarget::Container { service, pod }
        } else {
            FaultTarget::Pod { service, pod }
        };
        Fault {
            kind,
            target,
            severity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_app, GeneratorConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn app() -> App {
        generate_app(&GeneratorConfig::synthetic(16), 1)
    }

    #[test]
    fn healthy_plan_is_neutral() {
        let app = app();
        let plan = FaultPlan::healthy();
        assert!(plan.is_healthy());
        assert_eq!(plan.slowdown(&app, 0, 0, KernelKind::Cpu), 1.0);
        assert_eq!(plan.network_delay_us(&app, 0, 0), 0);
        assert_eq!(plan.error_probability(&app, 0, 0), 0.0);
        assert!(plan.target_services(&app).is_empty());
    }

    #[test]
    fn cpu_stress_slows_cpu_kernels_most() {
        let app = app();
        let plan = FaultPlan {
            faults: vec![Fault {
                kind: FaultKind::CpuStress,
                target: FaultTarget::Pod { service: 1, pod: 0 },
                severity: 10.0,
            }],
        };
        let cpu = plan.slowdown(&app, 1, 0, KernelKind::Cpu);
        let disk = plan.slowdown(&app, 1, 0, KernelKind::Disk);
        assert_eq!(cpu, 11.0);
        assert!(disk < cpu);
        // other pod unaffected
        assert_eq!(plan.slowdown(&app, 1, 1, KernelKind::Cpu), 1.0);
    }

    #[test]
    fn node_fault_hits_all_pods_on_node() {
        let app = app();
        let node = app.services[0].pods[0].node;
        let plan = FaultPlan {
            faults: vec![Fault {
                kind: FaultKind::DiskStress,
                target: FaultTarget::Node { node },
                severity: 5.0,
            }],
        };
        for (si, svc) in app.services.iter().enumerate() {
            for (pi, pod) in svc.pods.iter().enumerate() {
                let slowed = plan.slowdown(&app, si, pi, KernelKind::Disk) > 1.0;
                assert_eq!(slowed, pod.node == node);
            }
        }
        let targets = plan.target_services(&app);
        assert!(!targets.is_empty());
    }

    #[test]
    fn network_and_error_faults() {
        let app = app();
        let plan = FaultPlan {
            faults: vec![
                Fault {
                    kind: FaultKind::NetworkDelay,
                    target: FaultTarget::Container { service: 2, pod: 1 },
                    severity: 50.0,
                },
                Fault {
                    kind: FaultKind::ErrorInjection,
                    target: FaultTarget::Container { service: 2, pod: 1 },
                    severity: 0.9,
                },
            ],
        };
        assert_eq!(plan.network_delay_us(&app, 2, 1), 50_000);
        assert_eq!(plan.network_delay_us(&app, 2, 0), 0);
        assert!((plan.error_probability(&app, 2, 1) - 0.9).abs() < 1e-12);
        // stress-free kernels unaffected
        assert_eq!(plan.slowdown(&app, 2, 1, KernelKind::Cpu), 1.0);
    }

    #[test]
    fn sample_nonempty_always_has_fault() {
        let app = app();
        let engine = ChaosEngine {
            per_instance_probability: 0.0,
            ..ChaosEngine::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let plan = engine.sample_nonempty_plan(&app, &mut rng);
            assert!(!plan.is_healthy());
        }
    }

    #[test]
    fn bernoulli_rate_roughly_respected() {
        let app = app();
        let engine = ChaosEngine {
            per_instance_probability: 0.25,
            ..ChaosEngine::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let total: usize = (0..200)
            .map(|_| engine.sample_plan(&app, &mut rng).faults.len())
            .sum();
        let instances: usize = app.services.iter().map(|s| s.pods.len()).sum();
        let expected = 200.0 * instances as f64 * 0.25;
        assert!(
            (total as f64 - expected).abs() < expected * 0.25,
            "total {total}, expected ~{expected}"
        );
    }

    #[test]
    fn severities_accumulate_across_faults() {
        let app = app();
        let plan = FaultPlan {
            faults: vec![
                Fault {
                    kind: FaultKind::CpuStress,
                    target: FaultTarget::Pod { service: 0, pod: 0 },
                    severity: 3.0,
                },
                Fault {
                    kind: FaultKind::CpuStress,
                    target: FaultTarget::Pod { service: 0, pod: 0 },
                    severity: 4.0,
                },
            ],
        };
        assert_eq!(plan.slowdown(&app, 0, 0, KernelKind::Cpu), 8.0);
    }
}
